"""Shared infrastructure for the reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper's
evaluation (see DESIGN.md §4 for the index).  Besides the
pytest-benchmark timing, each harness writes a human-readable
paper-vs-measured report into ``benchmarks/results/<experiment>.txt`` so
the numbers survive pytest's output capturing; EXPERIMENTS.md is
assembled from those files.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


class ExperimentReport:
    """Collects and persists one experiment's paper-vs-measured rows."""

    def __init__(self, experiment: str, title: str):
        self.experiment = experiment
        self.title = title
        self.lines: list[str] = [f"== {experiment}: {title} ==", ""]

    def line(self, text: str = "") -> None:
        self.lines.append(text)

    def row(self, label: str, paper, measured, unit: str = "") -> None:
        self.lines.append(
            f"  {label:<38s} paper: {paper!s:>10s}   measured: {measured!s:>10s} {unit}"
        )

    def save(self) -> Path:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{self.experiment}.txt"
        path.write_text("\n".join(self.lines) + "\n")
        return path


@pytest.fixture(autouse=True)
def audit_simulated_runs(monkeypatch):
    """Every benchmark's simulated runs pass the invariant checker.

    Mirrors the fixture in tests/conftest.py: each
    :meth:`repro.sim.system.HybridSystem.run` is replayed against the
    queues' submission records, so a benchmark whose schedule breaks
    dependency/FIFO/conservation invariants fails loudly instead of
    silently reporting corrupt throughput numbers.
    """
    from repro.sim.system import HybridSystem
    from repro.sim.validate import assert_valid

    original = HybridSystem.run

    def audited(self, stream, max_events=None):
        return assert_valid(original(self, stream, max_events=max_events))

    monkeypatch.setattr(HybridSystem, "run", audited)


@pytest.fixture()
def report(request):
    """Per-test experiment report; saved automatically on success."""
    marker = request.node.get_closest_marker("experiment")
    name = marker.args[0] if marker else request.node.name
    title = marker.args[1] if marker and len(marker.args) > 1 else ""
    rep = ExperimentReport(name, title)
    yield rep
    rep.save()


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "experiment(id, title): tags a reproduction benchmark"
    )
