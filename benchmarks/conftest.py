"""Shared infrastructure for the reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper's
evaluation (see DESIGN.md §4 for the index).  Besides the
pytest-benchmark timing, each harness writes a human-readable
paper-vs-measured report into ``benchmarks/results/<experiment>.txt`` so
the numbers survive pytest's output capturing; EXPERIMENTS.md is
assembled from those files.

By default a benchmark run is hermetic: reports go to a per-session
temporary directory (printed at the end of the run) and the checked-in
``benchmarks/results/`` files are left untouched.  Pass
``--write-results`` to refresh the committed reports in place.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


class ExperimentReport:
    """Collects and persists one experiment's paper-vs-measured rows."""

    def __init__(self, experiment: str, title: str):
        self.experiment = experiment
        self.title = title
        self.lines: list[str] = [f"== {experiment}: {title} ==", ""]

    def line(self, text: str = "") -> None:
        self.lines.append(text)

    def row(self, label: str, paper, measured, unit: str = "") -> None:
        self.lines.append(
            f"  {label:<38s} paper: {paper!s:>10s}   measured: {measured!s:>10s} {unit}"
        )

    def save(self, results_dir: Path = RESULTS_DIR) -> Path:
        results_dir.mkdir(parents=True, exist_ok=True)
        path = results_dir / f"{self.experiment}.txt"
        path.write_text("\n".join(self.lines) + "\n")
        return path


def pytest_addoption(parser):
    parser.addoption(
        "--write-results",
        action="store_true",
        default=False,
        help="write experiment reports into the committed "
        "benchmarks/results/ directory instead of a temporary one",
    )


@pytest.fixture(scope="session")
def results_dir(request, tmp_path_factory):
    if request.config.getoption("--write-results"):
        return RESULTS_DIR
    return tmp_path_factory.mktemp("results")


@pytest.fixture(autouse=True)
def audit_simulated_runs(monkeypatch):
    """Every benchmark's simulated runs pass the invariant checker.

    Mirrors the fixture in tests/conftest.py: each
    :meth:`repro.sim.system.HybridSystem.run` is replayed against the
    queues' submission records, so a benchmark whose schedule breaks
    dependency/FIFO/conservation invariants fails loudly instead of
    silently reporting corrupt throughput numbers.
    """
    from repro.sim.system import HybridSystem
    from repro.sim.validate import assert_valid

    original = HybridSystem.run

    def audited(self, stream, max_events=None, **kwargs):
        return assert_valid(original(self, stream, max_events=max_events, **kwargs))

    monkeypatch.setattr(HybridSystem, "run", audited)


@pytest.fixture()
def report(request, results_dir):
    """Per-test experiment report; saved automatically on success."""
    marker = request.node.get_closest_marker("experiment")
    name = marker.args[0] if marker else request.node.name
    title = marker.args[1] if marker and len(marker.args) > 1 else ""
    rep = ExperimentReport(name, title)
    yield rep
    rep.save(results_dir)


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "experiment(id, title): tags a reproduction benchmark"
    )
