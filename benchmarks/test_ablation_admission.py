"""ABL-ADMIT — admission control under overload (extension to Figure 10).

Motivated by the ABL-FEEDBACK finding: Figure 10 has no notion of
refusing work, so beyond capacity its step-6 fallback queues every
query and lateness cascades across all classes.  This ablation adds
bounded-lateness admission (reject when even the best estimated
response overshoots the deadline by more than ``lateness_factor x
T_C``) and measures the overloaded system (280 q/s offered against
~210 q/s capacity, accurate estimates).

Expected shape: vanilla Figure 10 completes ~capacity q/s with a
collapsed deadline-hit rate; admission control sheds the ~12 % excess
and serves the admitted queries almost entirely within deadline — the
textbook overload-control trade.
"""

import functools

import pytest

from repro.core.admission import AdmissionControlScheduler
from repro.paper import TABLE3_TEXT_PROB, paper_system_config, paper_workload
from repro.query.workload import ArrivalProcess
from repro.sim import HybridSystem

N_QUERIES = 2000
OFFERED = 280.0  # well above the ~210 q/s hybrid capacity


@functools.lru_cache(maxsize=None)
def run(lateness_factor: float | None):
    kwargs = {}
    if lateness_factor is not None:
        kwargs["scheduler_factory"] = functools.partial(
            AdmissionControlScheduler, lateness_factor=lateness_factor
        )
    config = paper_system_config(threads=8, include_32gb=True, **kwargs)
    workload = paper_workload(include_32gb=True, text_prob=TABLE3_TEXT_PROB, seed=42)
    stream = workload.generate(N_QUERIES, ArrivalProcess("uniform", rate=OFFERED))
    report = HybridSystem(config).run(stream)
    return (
        report.completed,
        report.rejected,
        report.queries_per_second,
        report.deadline_hit_rate,
    )


@pytest.mark.experiment("ABL-ADMIT", "admission control under overload")
def test_admission_control_restores_deadlines(benchmark, report):
    results = benchmark.pedantic(
        lambda: {
            "figure10 (no admission)": run(None),
            "admission, lateness 0.0": run(0.0),
            "admission, lateness 1.0": run(1.0),
        },
        rounds=1,
        iterations=1,
    )
    report.line(f"offered {OFFERED:.0f} q/s vs ~210 q/s capacity (Table-3 mix):")
    for name, (completed, rejected, qps, hits) in results.items():
        report.line(
            f"  {name:<26s} admitted {completed:>4d} rejected {rejected:>4d}   "
            f"{qps:6.1f} q/s   hits {100 * hits:5.1f} %"
        )
    vanilla = results["figure10 (no admission)"]
    strict = results["admission, lateness 0.0"]
    # vanilla Figure 10: no rejections, deadline hits collapse
    assert vanilla[1] == 0
    assert vanilla[3] < 0.4
    # strict admission: sheds ~10-15%, admitted queries meet deadlines
    assert 0.05 * N_QUERIES < strict[1] < 0.25 * N_QUERIES
    assert strict[3] > 0.9
    # and completed throughput does not drop (it improves: no wasted
    # work on hopeless queries)
    assert strict[2] >= vanilla[2]


@pytest.mark.experiment("ABL-ADMIT-bias", "admission cannot fix biased estimates")
def test_admission_does_not_fix_biased_models(benchmark, report):
    """Admission judges by the same estimates the scheduler uses: when
    the models are 40 % optimistic, queries look admittable and still
    blow their deadlines.  Shedding helps against overload, calibration
    (or feedback on the estimates themselves) against bias."""
    from dataclasses import replace

    def run_biased(with_admission: bool):
        kwargs = {}
        if with_admission:
            kwargs["scheduler_factory"] = functools.partial(
                AdmissionControlScheduler, lateness_factor=0.0
            )
        config = replace(
            paper_system_config(threads=8, include_32gb=True, **kwargs),
            noise_bias=1.4,
            noise_sigma=0.25,
        )
        workload = paper_workload(
            include_32gb=True, text_prob=TABLE3_TEXT_PROB, seed=42
        )
        stream = workload.generate(1200, ArrivalProcess("uniform", rate=170.0))
        rep = HybridSystem(config).run(stream)
        return rep.deadline_hit_rate, rep.rejected

    with_adm = benchmark.pedantic(run_biased, args=(True,), rounds=1, iterations=1)
    without = run_biased(False)
    report.row("hits, biased, no admission", "-", f"{100 * without[0]:.1f} %")
    report.row("hits, biased, admission", "-", f"{100 * with_adm[0]:.1f} %")
    # admission barely moves the needle under bias: both stay low
    assert abs(with_adm[0] - without[0]) < 0.25
    assert with_adm[0] < 0.6
