"""ABL-BUILD — ablation: where and how to build cubes.

Section III-A gives the GPU the job of *"building the cube from
relational tables stored in GPU memory"*; Kaczmarski's SOFSEM'11 study
(related work II-C) compares CPU and GPU cube creation.  This ablation
measures:

1. the three host construction algorithms (array-based / BUC /
   PipeSort) on real data — wall-clock, identical outputs;
2. the simulated device build (sharded bincount + tree reduction) —
   answer verified against the host build, device time from the
   bandwidth model across SM counts.
"""

import time

import numpy as np
import pytest

from repro.gpu.cubebuild import build_cube_on_device
from repro.gpu.device import SimulatedGPU
from repro.olap.buildalgs import array_based_cube, buc_cube, pipesort_cube
from repro.olap.cube import OLAPCube
from repro.relational import generate_dataset, tpcds_like_schema
from repro.units import GB


@pytest.fixture(scope="module")
def data():
    schema = tpcds_like_schema(scale=0.5)
    return generate_dataset(schema, num_rows=200_000, seed=5)


@pytest.mark.experiment("ABL-BUILD-host", "host cube-construction algorithms")
def test_host_algorithms(benchmark, report, data):
    resolutions = {"date": 1, "store": 1, "item": 1}

    def run_all():
        timings = {}
        outputs = {}
        for fn in (array_based_cube, buc_cube, pipesort_cube):
            start = time.perf_counter()
            outputs[fn.__name__] = fn(data.table, "quantity", resolutions)
            timings[fn.__name__] = time.perf_counter() - start
        return timings, outputs

    timings, outputs = benchmark.pedantic(run_all, rounds=1, iterations=1)
    report.line(f"full cube over {len(data.table)} rows, 8 cuboids:")
    for name, elapsed in sorted(timings.items(), key=lambda kv: kv[1]):
        cells = sum(len(c) for c in outputs[name].values())
        report.line(f"  {name:<18s} {elapsed * 1e3:8.1f} ms   ({cells} cells)")
    # identical outputs
    ref = outputs["array_based_cube"]
    for name, cube in outputs.items():
        for cuboid in ref:
            assert cube[cuboid].keys() == ref[cuboid].keys(), (name, cuboid)
    # the array-based algorithm (the paper's MOLAP substrate) should win
    # on dense low-resolution cubes — it does vectorised axis sums
    assert timings["array_based_cube"] == min(timings.values())


@pytest.mark.experiment("ABL-BUILD-device", "device-side cube construction")
def test_device_build(benchmark, report, data):
    device = SimulatedGPU(global_memory_bytes=GB)
    device.load_table(data.table)

    def build_sweep():
        out = {}
        for n_sm in (1, 4, 14):
            result = build_cube_on_device(device, "quantity", [1, 1, 1], n_sm=n_sm)
            out[n_sm] = result
        return out

    results = benchmark.pedantic(build_sweep, rounds=1, iterations=1)
    direct = OLAPCube.from_fact_table(data.table, "quantity", resolutions=[1, 1, 1])
    report.line("simulated device build of the resolution-1 cube:")
    for n_sm, result in results.items():
        report.line(
            f"  {n_sm:>2d} SMs: {result.simulated_time * 1e3:7.2f} ms "
            f"(reduction depth {result.reduction_depth})"
        )
        assert np.allclose(result.cube.component("sum"), direct.component("sum"))
    # build time shrinks with SM count
    assert results[14].simulated_time < results[1].simulated_time
