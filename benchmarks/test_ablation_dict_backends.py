"""ABL-DICT — ablation: dictionary search backends.

The paper's translation cost is linear in dictionary length (eq. 17 —
a scan) and the conclusion promises *"a more sophisticated translation
algorithm in our future implementation"*.  This ablation implements that
future work: it measures real lookup costs for the linear-scan, sorted-
array (binary search), hash and trie backends across dictionary sizes,
plus a per-column-vs-global-dictionary comparison (the paper argues per-
column dictionaries give tighter time estimates).
"""

import time

import numpy as np
import pytest

from repro.relational.generator import make_vocabulary
from repro.text.dictionary import BACKENDS, ColumnDictionary

SIZES = (1_000, 4_000, 16_000)
PROBES = 200


def measure_backend(backend: str, sizes=SIZES, seed: int = 11) -> dict[int, float]:
    rng = np.random.default_rng(seed)
    out = {}
    for size in sizes:
        vocab = make_vocabulary(size, rng)
        d = ColumnDictionary("bench", vocab, backend=backend)
        targets = [vocab[int(i)] for i in rng.integers(0, size, PROBES)]
        start = time.perf_counter()
        for t in targets:
            d.encode(t)
        out[size] = (time.perf_counter() - start) / PROBES
    return out


@pytest.mark.experiment("ABL-DICT", "dictionary backend ablation")
def test_backend_scaling(benchmark, report):
    results = benchmark.pedantic(
        lambda: {b: measure_backend(b) for b in sorted(BACKENDS)},
        rounds=1,
        iterations=1,
    )
    report.line("mean lookup time [us] by dictionary length:")
    header = "  " + " ".join(f"{s:>10d}" for s in SIZES)
    report.line(f"  {'backend':<8s}{header}")
    for backend, series in results.items():
        row = " ".join(f"{series[s] * 1e6:10.2f}" for s in SIZES)
        report.line(f"  {backend:<8s}  {row}")

    linear = results["linear"]
    # the scan's cost grows strongly with D_L ...
    assert linear[SIZES[-1]] / linear[SIZES[0]] > 4.0
    # ... while hash and trie stay flat-ish
    for backend in ("hash", "trie"):
        series = results[backend]
        assert series[SIZES[-1]] / series[SIZES[0]] < 4.0
    # at the largest size every smarter backend beats the scan soundly
    for backend in ("hash", "sorted", "trie"):
        assert results[backend][SIZES[-1]] < 0.25 * linear[SIZES[-1]]


@pytest.mark.experiment("ABL-DICT-percolumn", "per-column vs one global dictionary")
def test_per_column_vs_global(benchmark, report):
    """Section III-F's design argument: smaller per-column dictionaries
    give smaller and more predictable search times than one big
    dictionary over all text columns."""

    def measure():
        rng = np.random.default_rng(12)
        col_sizes = (500, 2_000, 8_000)
        vocabs = [make_vocabulary(s, rng, prefix=f"c{i}") for i, s in enumerate(col_sizes)]
        per_column = [
            ColumnDictionary(f"col{i}", v, backend="linear")
            for i, v in enumerate(vocabs)
        ]
        global_vocab = [t for v in vocabs for t in v]
        rng.shuffle(global_vocab)  # real global dictionaries interleave columns
        global_dict = ColumnDictionary("global", global_vocab, backend="linear")

        def probe(d, vocab):
            targets = [vocab[int(i)] for i in rng.integers(0, len(vocab), 100)]
            start = time.perf_counter()
            for t in targets:
                d.encode(t)
            return (time.perf_counter() - start) / 100

        per_col_times = [probe(d, v) for d, v in zip(per_column, vocabs)]
        global_times = [probe(global_dict, v) for v in vocabs]
        return per_col_times, global_times

    per_col, global_ = benchmark.pedantic(measure, rounds=1, iterations=1)
    report.line("mean lookup time [us]: per-column vs global dictionary")
    for i, (p, g) in enumerate(zip(per_col, global_)):
        report.line(f"  column {i}: per-column {p * 1e6:8.1f}   global {g * 1e6:8.1f}")
    # every column is at least as fast against its own dictionary, and
    # the small columns dramatically so (the estimation-precision claim)
    assert per_col[0] < 0.5 * global_[0]
    assert sum(per_col) < sum(global_)
