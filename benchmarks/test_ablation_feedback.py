"""ABL-FEEDBACK — the estimate-error feedback loop (Section III-G).

The paper's final scheduling element: measured runtimes correct each
queue's :math:`T_Q` so *"errors in the estimation do not significantly
affect the scheduling algorithm"*.  This ablation injects systematic
model bias (every estimate 40 % low or 40 % high) plus jitter and
compares feedback on vs off in two regimes:

1. **sustainable load** — the paper's claim: with feedback, biased
   models behave like calibrated ones (deadline hits stay high);
2. **overload** (offered > biased capacity) — a finding beyond the
   paper: truthful queue beliefs (feedback on) maximise *throughput*,
   while stale optimistic beliefs accidentally protect the cheap query
   classes' deadlines by never abandoning step-5 lane structure.  A
   deadline scheduler needs admission control, not just feedback, once
   the system is genuinely oversubscribed.
"""

import functools
from dataclasses import replace

import pytest

from repro.paper import TABLE3_TEXT_PROB, paper_system_config, paper_workload
from repro.query.workload import ArrivalProcess
from repro.sim import HybridSystem

N_QUERIES = 1500
MODERATE_LOAD = 120.0  # sustainable even with 40% under-estimation
OVERLOAD = 160.0  # above the biased system's ~150 q/s capacity


@functools.lru_cache(maxsize=None)
def run(load: float, feedback_gain: float, bias: float, sigma: float = 0.25):
    config = paper_system_config(threads=8, include_32gb=True)
    config = replace(
        config, feedback_gain=feedback_gain, noise_bias=bias, noise_sigma=sigma
    )
    workload = paper_workload(include_32gb=True, text_prob=TABLE3_TEXT_PROB, seed=42)
    stream = workload.generate(N_QUERIES, ArrivalProcess("uniform", rate=load))
    report = HybridSystem(config).run(stream)
    return (
        report.queries_per_second,
        report.deadline_hit_rate,
        report.mean_response_time,
        report.overall_bias_ratio,
    )


def _table(report, rows):
    for name, (qps, hits, resp, bias) in rows.items():
        report.line(
            f"  {name:<30s} {qps:6.1f} q/s   hits {100 * hits:5.1f} %   "
            f"mean response {resp * 1e3:6.1f} ms   "
            f"measured/estimated {bias:.2f}"
        )


@pytest.mark.experiment("ABL-FEEDBACK", "T_Q feedback under biased estimates")
def test_feedback_absorbs_bias_at_sustainable_load(benchmark, report):
    results = benchmark.pedantic(
        lambda: {
            "unbiased, feedback on": run(MODERATE_LOAD, 1.0, 1.0),
            "40% optimistic, feedback on": run(MODERATE_LOAD, 1.0, 1.4),
            "40% optimistic, feedback OFF": run(MODERATE_LOAD, 0.0, 1.4),
            "40% pessimistic, feedback on": run(MODERATE_LOAD, 1.0, 1.0 / 1.4),
        },
        rounds=1,
        iterations=1,
    )
    report.line(f"sustainable load ({MODERATE_LOAD:.0f} q/s), jitter sigma 0.25:")
    _table(report, results)
    report.line()
    report.line(
        "  finding: feedback fully absorbs bias in THROUGHPUT terms and in"
    )
    report.line(
        "  queue stability (mean response 4x better than feedback-off), but"
    )
    report.line(
        "  it only corrects T_Q — each new placement still uses the biased"
    )
    report.line(
        "  per-query estimate, so deadline hits degrade from ~93% to ~77%."
    )
    report.line(
        "  The paper's claim holds for the scheduler's stability, not for"
    )
    report.line("  per-query deadline accuracy under systematic bias.")

    unbiased = results["unbiased, feedback on"]
    biased_on = results["40% optimistic, feedback on"]
    biased_off = results["40% optimistic, feedback OFF"]
    # throughput: feedback absorbs the 40% bias almost completely
    assert biased_on[0] > 0.93 * unbiased[0]
    # feedback dominates feedback-off on every metric
    assert biased_on[0] > 1.2 * biased_off[0]
    assert biased_on[1] >= biased_off[1] - 0.02
    assert biased_on[2] < 0.5 * biased_off[2]
    # pessimistic models are naturally safe
    assert results["40% pessimistic, feedback on"][1] > 0.95
    # the report itself surfaces the injected mis-calibration
    # (SystemReport.overall_bias_ratio, Section III-G statistics)
    assert abs(unbiased[3] - 1.0) < 0.05
    assert abs(biased_on[3] - 1.4) < 0.1
    assert abs(results["40% pessimistic, feedback on"][3] - 1 / 1.4) < 0.1


@pytest.mark.experiment("ABL-FEEDBACK-overload", "feedback beyond capacity (finding)")
def test_feedback_at_overload(benchmark, report):
    results = benchmark.pedantic(
        lambda: {
            "40% optimistic, feedback on": run(OVERLOAD, 1.0, 1.4),
            "40% optimistic, feedback OFF": run(OVERLOAD, 0.0, 1.4),
        },
        rounds=1,
        iterations=1,
    )
    report.line(f"overload ({OVERLOAD:.0f} q/s offered, ~150 q/s biased capacity):")
    _table(report, results)
    report.line()
    report.line(
        "  finding: beyond capacity, truthful queue beliefs (feedback on)"
    )
    report.line(
        "  maximise throughput via step-6 balancing, while stale optimistic"
    )
    report.line(
        "  beliefs keep step-5 lane structure and protect cheap classes'"
    )
    report.line(
        "  deadlines at the cost of throughput — oversubscription needs"
    )
    report.line("  admission control, which Figure 10 does not include.")

    on = results["40% optimistic, feedback on"]
    off = results["40% optimistic, feedback OFF"]
    # truthful beliefs win on throughput when oversubscribed
    assert on[0] > off[0] * 1.1
