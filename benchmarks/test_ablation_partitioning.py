"""ABL-PART — ablation: GPU partitioning schemes.

The paper fixes six partitions (2x1 + 2x2 + 2x4 SM) and claims the
split was *"optimized for the Tesla C2070"*.  This ablation compares it
against a monolithic 14-SM device (one query at a time, eq. 15) and a
uniform 7x2 split under the Table-3 GPU-bound load.

Expected shape: with per-query dispatch overhead dominating, more
partitions mean more concurrency — the monolithic device serialises and
loses; the paper's mixed split and the uniform split land close, with
the mixed split better on deadline hits for heterogeneous queries.
"""

import functools

import pytest

from repro.gpu.partitioning import PartitionScheme, monolithic_scheme, paper_partition_scheme
from repro.paper import gpu_only_config, paper_workload
from repro.sim import HybridSystem

N_QUERIES = 1500

SCHEMES = {
    "paper 1/1/2/2/4/4": paper_partition_scheme(),
    "monolithic 14": monolithic_scheme(14),
    "uniform 7x2": PartitionScheme([2] * 7),
    "uniform 2x7": PartitionScheme([7, 7]),
}


@functools.lru_cache(maxsize=None)
def run_scheme(name: str) -> tuple[float, float]:
    base = gpu_only_config()
    from dataclasses import replace

    config = replace(base, scheme=SCHEMES[name])
    workload = paper_workload(include_32gb=True, text_prob=0.0, seed=42)
    report = HybridSystem(config).run(workload.generate(N_QUERIES))
    return report.queries_per_second, report.deadline_hit_rate


@pytest.mark.experiment("ABL-PART", "GPU partition scheme ablation (GPU-only load)")
def test_partition_scheme_ablation(benchmark, report):
    results = benchmark.pedantic(
        lambda: {name: run_scheme(name) for name in SCHEMES},
        rounds=1,
        iterations=1,
    )
    for name, (qps, hits) in sorted(results.items(), key=lambda kv: -kv[1][0]):
        report.line(f"  {name:<18s} {qps:7.1f} q/s   deadline hits {100 * hits:5.1f} %")

    paper_qps = results["paper 1/1/2/2/4/4"][0]
    mono_qps = results["monolithic 14"][0]
    best_name, (best, _) = max(results.items(), key=lambda kv: kv[1][0])
    report.line()
    report.line(
        f"  finding: {best_name} wins on raw throughput — with per-query "
        "dispatch overhead dominating, partition count matters more than "
        "partition size; the paper's mixed split trades a little throughput "
        "for size diversity (fast partitions for expensive queries)."
    )
    # concurrency beats serialisation when dispatch overhead dominates:
    # the partitioned device sustains a multiple of the monolithic rate
    assert paper_qps > 2.0 * mono_qps
    # 6 partitions also clearly beat 2 large ones
    assert paper_qps > results["uniform 2x7"][0]
    # the paper's split stays in the same league as the best uniform split
    assert paper_qps > 0.75 * best
