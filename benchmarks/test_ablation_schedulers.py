"""ABL-SCHED — ablation: the Figure-10 scheduler vs classic heuristics.

The paper's related work (Section II-D) positions its algorithm against
the fast co-scheduling heuristics MET (minimal execution time) and MCT
(minimal completion time).  This ablation runs the Table-3 hybrid
workload under every policy plus round-robin and the fastest-first
variant of step 5, comparing sustained throughput and deadline
behaviour.

Expected shape: MET collapses (it keeps stacking the statically fastest
partition, exactly the failure mode the paper quotes: *"This works well
on systems with small workloads"*); round-robin wastes the CPU on huge
queries; MCT and the paper's scheduler are close in raw throughput, with
the deadline-aware scheduler ahead on deadline hits — the property it
is designed to optimise.
"""

import functools

import pytest

from repro.core.baselines import (
    FastestFirstScheduler,
    MCTScheduler,
    METScheduler,
    RoundRobinScheduler,
)
from repro.core.scheduler import HybridScheduler
from repro.paper import TABLE3_TEXT_PROB, paper_system_config, paper_workload
from repro.sim import HybridSystem

N_QUERIES = 1500
ARRIVAL_RATE = 180.0  # just below the 8T hybrid capacity

POLICIES = {
    "figure10": HybridScheduler,
    "fastest-first": FastestFirstScheduler,
    "MCT": MCTScheduler,
    "MET": METScheduler,
    "round-robin": RoundRobinScheduler,
}


@functools.lru_cache(maxsize=None)
def run_policy(name: str):
    from repro.query.workload import ArrivalProcess

    config = paper_system_config(
        threads=8, include_32gb=True, scheduler_factory=POLICIES[name]
    )
    workload = paper_workload(include_32gb=True, text_prob=TABLE3_TEXT_PROB, seed=42)
    stream = workload.generate(N_QUERIES, ArrivalProcess("uniform", rate=ARRIVAL_RATE))
    report = HybridSystem(config).run(stream)
    return report.queries_per_second, report.deadline_hit_rate


@pytest.mark.experiment("ABL-SCHED", "scheduler policy ablation (Table-3 load)")
def test_scheduler_ablation(benchmark, report):
    results = benchmark.pedantic(
        lambda: {name: run_policy(name) for name in POLICIES},
        rounds=1,
        iterations=1,
    )
    report.line(f"offered load: {ARRIVAL_RATE:.0f} q/s (Table-3 mix, 8T CPU)")
    report.line()
    for name, (qps, hits) in sorted(results.items(), key=lambda kv: -kv[1][1]):
        report.line(f"  {name:<14s} {qps:7.1f} q/s   deadline hits {100 * hits:5.1f} %")

    fig10_qps, fig10_hits = results["figure10"]
    # the deadline-aware scheduler meets (nearly) all deadlines at this load
    assert fig10_hits > 0.9
    # MET ignores load: it stacks every GPU-bound query on the statically
    # fastest partition, which overloads and drags the completion tail —
    # throughput collapses and a large fraction of deadlines are missed
    met_qps, met_hits = results["MET"]
    assert met_hits < fig10_hits - 0.2
    assert met_qps < 0.5 * fig10_qps
    # round-robin wastes CPU cycles on huge queries: worse deadline rate
    assert results["round-robin"][1] < fig10_hits
    # figure-10 is at least as good as every baseline on deadline hits
    for name, (_, hits) in results.items():
        assert fig10_hits >= hits - 0.02, name


@pytest.mark.experiment("ABL-SCHED-slowest", "value of slowest-first GPU dispatch")
def test_slowest_first_vs_fastest_first(benchmark, report):
    results = benchmark.pedantic(
        lambda: (run_policy("figure10"), run_policy("fastest-first")),
        rounds=1,
        iterations=1,
    )
    (f10_qps, f10_hits), (ff_qps, ff_hits) = results
    report.row("figure10 (slowest-first)", "keeps fast partitions free",
               f"{f10_qps:.1f} q/s / {100 * f10_hits:.1f} %")
    report.row("fastest-first variant", "-", f"{ff_qps:.1f} q/s / {100 * ff_hits:.1f} %")
    # slowest-first must not be worse at this load; the paper's rationale
    # is headroom for expensive late arrivals
    assert f10_hits >= ff_hits - 0.02
