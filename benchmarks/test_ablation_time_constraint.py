"""ABL-TC — sensitivity of the hybrid system to the time constraint.

The paper fixes :math:`T_C` as a system parameter without reporting its
value or its effect.  This ablation sweeps it: a tight deadline forces
queries onto fast partitions early (less queueing headroom, lower
sustainable rate); a loose one lets the slowest-first policy pack the
cheap partitions deeper.  The sweep also locates the regime where the
CPU partition stops being usable for mid-size queries.
"""

import functools

import pytest

from repro.paper import TABLE3_TEXT_PROB, paper_system_config, paper_workload
from repro.sim.capacity import max_sustainable_rate

N_QUERIES = 1200


@functools.lru_cache(maxsize=None)
def capacity_at(t_c: float) -> float:
    config = paper_system_config(
        threads=8, include_32gb=True, time_constraint=t_c
    )
    workload = paper_workload(include_32gb=True, text_prob=TABLE3_TEXT_PROB, seed=42)
    result = max_sustainable_rate(
        config, workload, n_queries=N_QUERIES, hit_target=0.9, iterations=8
    )
    return result.report.queries_per_second


@pytest.mark.experiment("ABL-TC", "sustainable rate vs time constraint T_C")
def test_time_constraint_sweep(benchmark, report):
    sweep = benchmark.pedantic(
        lambda: {t_c: capacity_at(t_c) for t_c in (0.15, 0.25, 0.5, 1.0, 2.0)},
        rounds=1,
        iterations=1,
    )
    report.line("sustainable rate (>=90% deadline hits) by T_C:")
    for t_c, rate in sweep.items():
        report.line(f"  T_C = {t_c:4.2f} s: {rate:6.1f} q/s")

    report.line()
    report.line(
        "  finding: capacity is remarkably insensitive to T_C (within ~7%)"
    )
    report.line(
        "  because step 5 adapts placement to the deadline; the optimum sits"
    )
    report.line(
        "  near T_C = 0.5 s — looser deadlines let slowest-first overpack the"
    )
    report.line(
        "  slow queues and let the CPU accept mid-size work, slightly"
    )
    report.line("  reducing sustainable throughput.")
    # insensitivity: every setting within ~10% of the T_C=0.5 capacity
    for t_c, rate in sweep.items():
        assert rate == pytest.approx(sweep[0.5], rel=0.10), t_c
    # the interior optimum: 0.5 s beats both extremes of the sweep
    assert sweep[0.5] >= sweep[0.15]
    assert sweep[0.5] >= sweep[2.0]
