"""ABL-TRANS — ablation: parallelising the translation partition.

The paper's conclusion: *"The translation slows down the GPU processing
by 7% ... In our future work we minimize this effect by using advanced
translation mechanism."*  This ablation implements and quantifies that
future work along both axes:

1. **more translation workers** — parallel service units on the
   preprocessing partition (fluid model);
2. **a better dictionary structure** — eq. 17's linear-scan cost
   replaced by a hash-dictionary cost model (measured per-lookup cost
   independent of D_L).

Expected shape: one worker with the scan dictionary is translation-bound
(the paper's 64 q/s); either fix alone recovers the no-translation rate.
"""

import functools
from dataclasses import replace

import pytest

from repro.core.perfmodel import DictPerfModel
from repro.paper import gpu_only_config, paper_workload
from repro.sim import HybridSystem

N_QUERIES = 1500

#: a hash dictionary costs ~1 us per lookup regardless of D_L; expressed
#: against the 1.13M-entry dictionary as an equivalent per-entry cost
HASH_DICT_MODEL = DictPerfModel(cost_per_entry=1e-6 / 1_130_000)


@functools.lru_cache(maxsize=None)
def run_variant(workers: int, fast_dict: bool, translation: bool) -> float:
    config = gpu_only_config()
    config = replace(config, translation_workers=workers)
    if fast_dict:
        config = replace(config, dict_model=HASH_DICT_MODEL)
    workload = paper_workload(
        include_32gb=True, text_prob=1.0, text_as_codes=not translation, seed=42
    )
    report = HybridSystem(config).run(workload.generate(N_QUERIES))
    return report.queries_per_second


@pytest.mark.experiment("ABL-TRANS", "removing the 7% translation overhead")
def test_translation_overhead_fixes(benchmark, report):
    results = benchmark.pedantic(
        lambda: {
            "paper (1 worker, scan dict)": run_variant(1, False, True),
            "2 workers, scan dict": run_variant(2, False, True),
            "4 workers, scan dict": run_variant(4, False, True),
            "1 worker, hash dict": run_variant(1, True, True),
            "no translation (ceiling)": run_variant(1, False, False),
        },
        rounds=1,
        iterations=1,
    )
    ceiling = results["no translation (ceiling)"]
    for name, qps in results.items():
        gap = 100 * (1 - qps / ceiling)
        report.line(f"  {name:<28s} {qps:6.1f} q/s   gap to ceiling {gap:5.1f} %")

    paper_rate = results["paper (1 worker, scan dict)"]
    # the paper's configuration pays the documented single-digit percent
    assert 0.02 < 1 - paper_rate / ceiling < 0.15
    # either fix recovers the ceiling to within 2%
    assert results["2 workers, scan dict"] == pytest.approx(ceiling, rel=0.02)
    assert results["1 worker, hash dict"] == pytest.approx(ceiling, rel=0.02)
    # extra workers beyond 2 buy nothing (the GPU is then the bottleneck)
    assert results["4 workers, scan dict"] == pytest.approx(
        results["2 workers, scan dict"], rel=0.02
    )
