"""BENCH-ADAPT — riding out a 3x load spike inside the premium SLO.

The headline claim of the adapt plane (``repro.adapt``): under the
scripted spike scenario — 8 q/s baseline, a 3x burst to 27 q/s, then a
recovery tail — the adaptive arm (online recalibration + capacity
controller) keeps the premium class at or above its 0.9 deadline-hit
SLO, while the frozen-model baseline on the identical workload and
starting capacity breaches.  Both arms run on the deterministic
stepped clock, so the numbers below are exact replays, not samples.

The same claim is pinned as a regression test in
``tests/scenarios/test_spike.py`` and as a golden fixture in
``tests/regression/golden/adaptive.json``; this benchmark records the
magnitudes for EXPERIMENTS.md.
"""

import pytest

from repro.adapt.scenarios import spike_scenario

SLO_TARGET = 0.9


def run_arm(adaptive: bool):
    kit = spike_scenario(adaptive=adaptive)
    result = kit.run()
    reconfigs = refits = 0
    if kit.plane is not None:
        plane_report = kit.plane.report()
        reconfigs = len(plane_report.reconfigs)
        refits = sum(1 for e in plane_report.epochs if e.trigger == "refit")
    return result, reconfigs, refits


@pytest.mark.experiment("BENCH-ADAPT", "adaptive capacity control under a 3x spike")
def test_adaptive_arm_rides_out_the_spike(benchmark, report):
    results = benchmark.pedantic(
        lambda: {"frozen": run_arm(False), "adaptive": run_arm(True)},
        rounds=1,
        iterations=1,
    )
    frozen, _, _ = results["frozen"]
    adaptive, reconfigs, refits = results["adaptive"]

    report.line("spike scenario: 8 q/s baseline, 3x burst to 27 q/s, recovery")
    report.line(f"premium SLO target: {SLO_TARGET}")
    report.line()
    for label, result in (("frozen", frozen), ("adaptive", adaptive)):
        report.row(
            f"premium hit rate ({label})",
            f">= {SLO_TARGET}" if label == "adaptive" else "breach",
            f"{result.hit_rate('premium'):.3f}",
        )
    report.row("batch hit rate (frozen)", "-", f"{frozen.hit_rate('batch'):.3f}")
    report.row("batch hit rate (adaptive)", "-", f"{adaptive.hit_rate('batch'):.3f}")
    report.row("capacity actions (adaptive)", "-", str(reconfigs))
    report.row("refit epochs installed", "-", str(refits))
    report.row(
        "admission rejected+shed (adaptive)",
        "-",
        str(len(adaptive.rejected) + len(adaptive.shed)),
    )

    assert adaptive.hit_rate("premium") >= SLO_TARGET, (
        "adaptive arm breached the premium SLO"
    )
    assert frozen.hit_rate("premium") < SLO_TARGET, (
        "frozen baseline no longer breaches: the spike is not stressing "
        "the system and this benchmark proves nothing"
    )
    assert reconfigs > 0 and refits > 0
