"""BENCH-BATCH — vectorised batch admission vs the per-query hot path.

Times ``HybridScheduler.schedule_batch`` against a ``schedule`` loop on
a deliberately heavy world: eight 4-level dimensions plus the paper's
customer dimension, a 28-SM device under :class:`OverheadTiming`, and a
five-queue partition scheme, so the per-query Figure-10 pass (estimate,
step-2 sweep over every queue, book update) has real work per call.
The speedup is the point of the batch path, but only because the
decisions are *identical*: the harness first pins estimate- and
decision-level bit-identity over all 4 000 queries, then measures.

The committed result pins a >= 5x scheduler-decision throughput gain;
the ratio is host-independent enough to assert because both sides run
the same Python on the same machine back to back.
"""

import gc
import time

import pytest

from repro.core.partitions import PartitionQueue, QueueKind
from repro.core.perfmodel import PAPER_DICT_MODEL
from repro.gpu.device import SimulatedGPU, TableDescriptor
from repro.gpu.partitioning import PartitionScheme
from repro.gpu.timing import TESLA_C2070_TIMING, OverheadTiming
from repro.olap.hierarchy import DimensionHierarchy
from repro.olap.pyramid import CubePyramid
from repro.paper import CPU_MODELS, PAPER_DICT_LENGTH, customer_dimension
from repro.query.workload import QueryClass, WorkloadSpec
from repro.relational.schema import TableSchema
from repro.sim.system import SystemConfig, SystemEstimator
from repro.units import GB

NDIMS = 8
N_QUERIES = 4000
TRIALS = 7
MIN_SPEEDUP = 5.0


def build_world():
    dims = [
        DimensionHierarchy.from_fanouts(
            f"d{i}", ["L0", "L1", "L2", "L3"], [8, 5, 10, 4]
        )
        for i in range(1, NDIMS + 1)
    ]
    cust = customer_dimension()
    schema = TableSchema(
        dimensions=[*dims, cust],
        measures=("m1", "m2", "m3", "m4"),
        text_levels=[("cust", "name"), ("d8", "L3")],
    )
    device = SimulatedGPU(
        num_sms=28,
        global_memory_bytes=64 * GB,
        timing=OverheadTiming(base=TESLA_C2070_TIMING, overhead=0.072),
    )
    device.load_table(TableDescriptor(schema, schema.rows_for_bytes(4 * GB)))
    config = SystemConfig(
        cpu_model=CPU_MODELS[8],
        pyramid=CubePyramid.analytic(dims, [0, 1, 2], cell_nbytes=8, measure="m1"),
        device=device,
        scheme=PartitionScheme([1, 2, 4, 7, 14]),
        dict_model=PAPER_DICT_MODEL,
        dict_lengths={c.name: PAPER_DICT_LENGTH for c in schema.text_columns},
        time_constraint=0.5,
    )
    spec = WorkloadSpec(
        dimensions=[*dims, cust],
        classes=[
            QueryClass(
                "small",
                weight=0.6,
                resolution=1,
                dims_constrained=(2, NDIMS),
                coverage=(0.1, 0.9),
                text_prob=0.4,
            ),
            QueryClass(
                "mid",
                weight=0.4,
                resolution=2,
                dims_constrained=(NDIMS // 2, NDIMS),
                coverage=(0.5, 1.0),
                text_prob=0.4,
            ),
        ],
        measures=("m1",),
        text_levels=[("cust", "name"), ("d8", "L3")],
        vocabularies={
            c.name: tuple(f"tok{j}" for j in range(16))
            for c in schema.text_columns
        },
        range_dimensions=tuple(f"d{i}" for i in range(1, NDIMS + 1)),
        seed=7,
    )
    return config, [tq.query for tq in spec.generate(N_QUERIES)]


def make_scheduler(config):
    cpu_q = PartitionQueue("Q_CPU", QueueKind.CPU)
    trans_q = PartitionQueue(
        "Q_TRANS", QueueKind.TRANSLATION, capacity=config.translation_workers
    )
    gpu_qs = [
        PartitionQueue(f"Q_{p.name}", QueueKind.GPU, n_sm=p.n_sm)
        for p in config.scheme
    ]
    return config.scheduler_factory(
        cpu_q, gpu_qs, trans_q, SystemEstimator(config), config.time_constraint
    )


def decision_key(decision):
    translation = decision.translation
    return (
        decision.target.name,
        decision.processing.estimated_start,
        decision.processing.estimated_finish,
        decision.estimated_response,
        None
        if translation is None
        else (translation.estimated_start, translation.estimated_finish),
    )


def measure(config, queries):
    """Interleaved min-of-``TRIALS`` microseconds per decision."""

    def time_sequential():
        scheduler = make_scheduler(config)
        t0 = time.perf_counter()
        for query in queries:
            scheduler.schedule(query, 0.0)
        return (time.perf_counter() - t0) / len(queries) * 1e6

    def time_batched():
        scheduler = make_scheduler(config)
        t0 = time.perf_counter()
        scheduler.schedule_batch(queries, 0.0)
        return (time.perf_counter() - t0) / len(queries) * 1e6

    gc.disable()
    try:
        seq_trials, bat_trials = [], []
        for _ in range(TRIALS):
            seq_trials.append(time_sequential())
            bat_trials.append(time_batched())
    finally:
        gc.enable()
    return min(seq_trials), min(bat_trials)


@pytest.mark.experiment("BENCH-BATCH", "Vectorised batch admission speedup")
def test_batch_admission_speedup(benchmark, report):
    config, queries = build_world()

    # identity first: the throughput gain only counts because the
    # batched pass reproduces the sequential hot path bit for bit
    estimator = SystemEstimator(config)
    scalar = [estimator.estimate(q) for q in queries]
    batched = SystemEstimator(config).estimate_batch(queries)
    estimate_mismatches = sum(
        s.t_cpu != b.t_cpu or s.t_gpu != b.t_gpu or s.t_trans != b.t_trans
        for s, b in zip(scalar, batched)
    )
    seq_sched, bat_sched = make_scheduler(config), make_scheduler(config)
    seq = [seq_sched.schedule(q, 0.0) for q in queries]
    bat = bat_sched.schedule_batch(queries, 0.0)
    decision_mismatches = sum(
        decision_key(a) != decision_key(b) for a, b in zip(seq, bat)
    )

    seq_us, bat_us = benchmark.pedantic(
        measure, args=(config, queries), rounds=1, iterations=1
    )
    ratio = seq_us / bat_us

    report.line(f"  {N_QUERIES} queries, {len(config.scheme)} GPU queues,")
    report.line(f"  {TRIALS} interleaved trials, min of each")
    report.line()
    report.row("estimate mismatches", "0", str(estimate_mismatches))
    report.row("decision mismatches", "0", str(decision_mismatches))
    report.row("sequential schedule()", "-", f"{seq_us:.1f} us/query")
    report.row("schedule_batch()", "-", f"{bat_us:.1f} us/query")
    report.row("speedup", f">= {MIN_SPEEDUP:.0f}x", f"{ratio:.2f}x")
    benchmark.extra_info["speedup"] = ratio

    assert estimate_mismatches == 0
    assert decision_mismatches == 0
    assert ratio >= MIN_SPEEDUP, (
        f"batch admission only {ratio:.2f}x over sequential "
        f"({seq_us:.1f} vs {bat_us:.1f} us/query)"
    )
