"""FIG1 — Figure 1 (conceptual): cube size vs resolution; levels M and G.

The figure motivates the whole hybrid design: cube size grows
geometrically with resolution until it no longer fits in main memory
(level M); somewhere below that, the GPU answers raw-table queries as
fast as the CPU processes the cube (level G).  Reproduction: compute the
pyramid size law for the Section-IV configuration and locate both
levels with the published models.
"""

import pytest

from repro.core.perfmodel import XEON_X5667_8T
from repro.gpu.timing import TESLA_C2070_TIMING
from repro.paper import paper_pyramid
from repro.units import GB, fmt_bytes


@pytest.mark.experiment("FIG1", "cube resolution vs size; levels M and G")
def test_fig1_levels(benchmark, report):
    pyramid = benchmark.pedantic(paper_pyramid, rounds=1, iterations=1)

    report.line("pyramid size law (3 dims, cardinality x5 per level step):")
    for level in pyramid.levels:
        report.line(
            f"  resolution {max(level.resolutions)}: "
            f"{fmt_bytes(pyramid.level_nbytes(level))}"
        )

    # geometric growth: each refinement step multiplies the volume by
    # fanout^3 (fan-outs 5/10/4 -> ratios 125x / 1000x / 64x)
    sizes = [pyramid.level_nbytes(l) for l in pyramid.levels]
    for a, b in zip(sizes, sizes[1:]):
        assert b / a >= 50.0

    # level M for the paper's 94 GB host: the 32 GB cube still fits
    m94 = pyramid.level_m(94 * GB)
    report.row("level M (94 GB host)", "~32 GB cube", fmt_bytes(pyramid.level_nbytes(m94)))
    assert max(m94.resolutions) == 3

    # level M for an 8 GB host: only up to the ~500 MB cube
    m8 = pyramid.level_m(8 * GB)
    report.row("level M (8 GB host)", "~500 MB cube", fmt_bytes(pyramid.level_nbytes(m8)))
    assert max(m8.resolutions) == 2

    # level G: where CPU full-cube processing time crosses the GPU's
    # typical query time (eq. 15, 14-SM, ~20% of columns)
    gpu_time = TESLA_C2070_TIMING.query_time(0.2, 14)
    g = pyramid.level_g(lambda mb: XEON_X5667_8T.time(mb), gpu_time)
    report.row(
        "level G (8T CPU vs 14-SM GPU)",
        "between 500 KB and 500 MB",
        fmt_bytes(pyramid.level_nbytes(g)) if g else "none",
    )
    assert g is not None
    # the equilibrium falls strictly below the memory limit: the gap
    # between G and M is exactly the region the GPU accelerates
    assert pyramid.level_nbytes(g) < pyramid.level_nbytes(m94)
