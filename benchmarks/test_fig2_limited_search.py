"""FIG2 — Figure 2: the "area of limited search".

The figure illustrates why sub-cube size (eq. 3) is the CPU cost
driver: a query's per-dimension ranges bound a hyper-rectangle, and
only that region of the cube is streamed.  Reproduction: measure the
*bytes actually touched* while answering queries of growing coverage,
on both the dense representation (via the sub-cube spec) and the
chunked/compressed representation (only overlapping chunks are read),
and verify proportionality with eq. 3.
"""

import numpy as np
import pytest

from repro.olap.chunks import ChunkedCube
from repro.olap.cube import OLAPCube
from repro.olap.subcube import spec_for_query, subcube_size_bytes
from repro.query.model import Condition, Query
from repro.relational import generate_dataset, tpcds_like_schema


@pytest.fixture(scope="module")
def world():
    schema = tpcds_like_schema(scale=0.5)
    dataset = generate_dataset(schema, num_rows=50_000, seed=2)
    cube = OLAPCube.from_fact_table(dataset.table, "quantity", resolutions=[2, 2, 2])
    chunked = ChunkedCube.from_dense(cube.component("sum"), (12, 20, 10))
    return schema, dataset.table, cube, chunked


@pytest.mark.experiment("FIG2", "bytes scanned ~ sub-cube volume (eq. 3)")
def test_fig2_scanned_bytes_proportional(benchmark, report, world):
    schema, table, cube, chunked = world
    d0 = schema.dimensions[0]
    card = d0.cardinality(2)

    def sweep():
        rows = []
        for frac in (0.1, 0.25, 0.5, 0.75, 1.0):
            width = max(1, round(frac * card))
            q = Query(
                conditions=(Condition(d0.name, 2, lo=0, hi=width),),
                measures=("quantity",),
            )
            spec = spec_for_query(cube, q)
            expected = subcube_size_bytes(spec.widths, cube.cell_nbytes)
            rows.append((frac, spec.nbytes, expected))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report.line("coverage -> bytes streamed (dense cube):")
    for frac, measured, expected in rows:
        report.line(f"  {frac:4.0%}: {measured:>12,d} B (eq. 3: {expected:,d} B)")
        assert measured == expected
    # proportionality: 100% coverage streams ~10x the 10% coverage
    assert rows[-1][1] / rows[0][1] == pytest.approx(10.0, rel=0.15)


@pytest.mark.experiment("FIG2-chunks", "chunked storage only touches overlapping chunks")
def test_fig2_chunked_limited_search(benchmark, report, world):
    schema, table, cube, chunked = world
    shape = cube.shape

    def touched_chunks(ranges):
        count = 0
        for index, chunk in chunked._chunks.items():
            starts = tuple(i * c for i, c in zip(index, chunked.chunk_shape))
            extents = (
                chunk.data.shape if hasattr(chunk, "data") else chunk.shape
            )
            overlap = all(
                max(lo - s, 0) < min(hi - s, e)
                for (lo, hi), s, e in zip(ranges, starts, extents)
            )
            count += overlap
        return count

    def sweep():
        out = []
        for frac in (0.1, 0.5, 1.0):
            ranges = [(0, max(1, round(frac * s))) for s in shape]
            value = chunked.sum_range(ranges)
            dense = float(
                cube.component("sum")[tuple(slice(lo, hi) for lo, hi in ranges)].sum()
            )
            out.append((frac, touched_chunks(ranges), value, dense))
        return out

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report.line(f"chunk grid {chunked.grid_shape}, {chunked.num_chunks} chunks "
                f"({chunked.num_compressed} compressed):")
    for frac, touched, value, dense in rows:
        report.line(f"  {frac:4.0%} coverage: {touched:>4d} chunks touched")
        assert np.isclose(value, dense)
    # the limited search touches strictly fewer chunks at low coverage
    assert rows[0][1] < rows[-1][1]
    assert rows[-1][1] == chunked.num_chunks
