"""FIG3 — Figure 3: memory bandwidth of multithreaded cube processing.

Paper (dual Xeon X5667): ~1 GB/s for the legacy single-threaded code,
~5 GB/s for the improved single-threaded code, 15-20 GB/s for the
OpenMP version at 128 MB+ cubes.  Absolute numbers are machine-bound;
the reproduced *shape* is (a) bandwidth per thread count becomes flat
(streaming regime) as cube size grows, and (b) the published model's
bandwidth curve matches the published rates.

Two data series are produced: a real measured sweep on this machine
(repro.olap.bandwidth), and the paper-model curve evaluated from
eq. 7/10 — both recorded in the results file.
"""

import pytest

from repro.core.perfmodel import XEON_X5667_4T, XEON_X5667_8T, XEON_X5667_1T_LEGACY
from repro.olap.bandwidth import run_bandwidth_sweep

PAPER_SIZES_MB = (1, 8, 64, 128, 512, 2048, 8192, 32768)


@pytest.mark.experiment("FIG3-model", "bandwidth curves from the published models")
def test_fig3_model_curves(benchmark, report):
    def curves():
        out = {}
        for label, model in [
            ("1T legacy", XEON_X5667_1T_LEGACY),
            ("4T OpenMP", XEON_X5667_4T),
            ("8T OpenMP", XEON_X5667_8T),
        ]:
            out[label] = [(mb, model.bandwidth_gbps(mb)) for mb in PAPER_SIZES_MB]
        return out

    data = benchmark.pedantic(curves, rounds=1, iterations=1)
    report.line("bandwidth [GB/s] by sub-cube size [MB]:")
    for label, series in data.items():
        row = "  ".join(f"{mb}MB:{bw:5.1f}" for mb, bw in series)
        report.line(f"  {label:<10s} {row}")
    from repro.report import ascii_plot

    report.line()
    report.line(
        ascii_plot(data, logx=True, xlabel="SC_size [MB]", ylabel="GB/s")
    )

    # paper claims: legacy ~1 GB/s flat
    for _, bw in data["1T legacy"]:
        assert bw == pytest.approx(1.0, rel=1e-6)
    # 15-20 GB/s for the parallel version at 128 MB and beyond
    big_8t = [bw for mb, bw in data["8T OpenMP"] if mb >= 128]
    assert all(14.0 < bw < 27.0 for bw in big_8t)
    big_4t = [bw for mb, bw in data["4T OpenMP"] if mb >= 128]
    assert all(12.0 < bw < 22.0 for bw in big_4t)
    # 8T >= 4T >> 1T in the streaming regime
    assert data["8T OpenMP"][-1][1] > data["4T OpenMP"][-1][1] > 1.0


@pytest.mark.experiment("FIG3-measured", "bandwidth sweep measured on this machine")
def test_fig3_measured_sweep(benchmark, report):
    sweep = benchmark.pedantic(
        run_bandwidth_sweep,
        kwargs=dict(sizes_mb=(1, 2, 4, 8, 16, 32, 64, 128), thread_counts=(1, 2, 4), repeats=3),
        rounds=1,
        iterations=1,
    )
    report.line("measured on this machine (absolute numbers differ from the paper):")
    for t in sweep.thread_counts:
        row = "  ".join(
            f"{p.size_mb:.0f}MB:{p.gbps:5.1f}" for p in sweep.for_threads(t)
        )
        report.line(f"  {t}T  {row}")
    # shape: times grow monotonically-ish with size for each thread count
    for t in sweep.thread_counts:
        times = sweep.times(t)
        assert times[-1] > times[0]
    # all bandwidths positive and finite
    assert all(p.gbps > 0 for p in sweep.points)
