"""FIG4 — Figure 4: processing time vs sub-cube size, 4 OpenMP threads.

The paper sweeps sub-cube sizes 1 MB - 32 GB, splits at 512 MB, and
fits f_A (power law) below and f_B (linear) above, obtaining eq. 7:

    f_A|4T = 1e-4 * SC^0.9341        (SC < 512 MB)
    f_B|4T = 5e-5 * SC + 0.0096      (SC > 512 MB)

Reproduction: generate the sweep from a reference implementation of the
timing law (+ deterministic measurement noise standing in for the real
machine), run the calibration pipeline, and verify the fit recovers the
published coefficients and predicts well across the range.
"""

import numpy as np
import pytest

from repro.core.calibration import fit_piecewise_cpu
from repro.core.perfmodel import XEON_X5667_4T

SIZES_MB = np.array(
    [1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768],
    dtype=float,
)


def sweep_and_fit(noise_sigma: float = 0.02, seed: int = 4):
    rng = np.random.default_rng(seed)
    times = np.array([XEON_X5667_4T.time(mb) for mb in SIZES_MB])
    noisy = times * rng.lognormal(0.0, noise_sigma, size=len(times))
    return fit_piecewise_cpu(SIZES_MB, noisy, threads=4, min_r2=0.98)


@pytest.mark.experiment("FIG4", "CPU model fit, 4 threads (eq. 7)")
def test_fig4_fit_recovers_eq7(benchmark, report):
    model = benchmark.pedantic(sweep_and_fit, rounds=1, iterations=1)
    fa = model.model.below
    fb = model.model.above
    report.row("f_A coefficient a", "1.0e-4", f"{fa.a:.2e}")
    report.row("f_A exponent p", "0.9341", f"{fa.p:.4f}")
    report.row("f_B slope", "5.0e-5", f"{fb.a:.2e}")
    report.row("f_B intercept", "0.0096", f"{fb.b:.4f}")
    report.line()
    report.line("  predicted vs published processing time:")
    for mb in (16, 256, 1024, 32768):
        report.row(
            f"  T_CPU|4T({mb} MB)",
            f"{XEON_X5667_4T.time(mb) * 1e3:.1f} ms",
            f"{model.time(mb) * 1e3:.1f} ms",
        )
    from repro.report import ascii_plot

    report.line()
    report.line(
        ascii_plot(
            {
                "published eq.7": [(mb, XEON_X5667_4T.time(mb)) for mb in SIZES_MB],
                "fitted": [(mb, model.time(mb)) for mb in SIZES_MB],
            },
            logx=True,
            logy=True,
            xlabel="SC_size [MB]",
            ylabel="T_CPU [s]",
        )
    )
    assert fa.p == pytest.approx(0.9341, abs=0.05)
    assert fb.a == pytest.approx(5e-5, rel=0.10)
    # predictions within 15% over the range; the point exactly at the
    # 512 MB breakpoint sits at the edge of range B, where the linear
    # fit's intercept uncertainty (set by the noisy 32 GB points) is
    # largest relative to the value
    for mb in SIZES_MB:
        if mb == 512:
            continue
        assert model.time(mb) == pytest.approx(XEON_X5667_4T.time(mb), rel=0.15)


@pytest.mark.experiment("FIG4-regimes", "power-law -> linear crossover")
def test_fig4_regime_shapes(benchmark, report):
    model = benchmark.pedantic(sweep_and_fit, rounds=1, iterations=1)
    # Range A: near-linear power law (bandwidth-bound even for small cubes)
    assert 0.85 < model.model.below.p < 1.05
    # Range B: positive intercept (fixed parallelisation cost)
    assert model.model.above.b > 0
    # the two fits meet reasonably at the 512 MB breakpoint
    gap = model.model.continuity_gap()
    at_break = model.time(512.0)
    report.row("relative continuity gap @512MB", "small", f"{gap / at_break:.2%}")
    assert gap / at_break < 0.25
