"""FIG5 — Figure 5: processing time vs sub-cube size, 8 OpenMP threads.

Same pipeline as FIG4 for eq. 10:

    f_A|8T = 6e-5 * SC^0.984         (SC < 512 MB)
    f_B|8T = 4e-5 * SC + 0.0146      (SC > 512 MB)
"""

import numpy as np
import pytest

from repro.core.calibration import fit_piecewise_cpu
from repro.core.perfmodel import XEON_X5667_4T, XEON_X5667_8T

SIZES_MB = np.array(
    [1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768],
    dtype=float,
)


def sweep_and_fit(noise_sigma: float = 0.02, seed: int = 8):
    rng = np.random.default_rng(seed)
    times = np.array([XEON_X5667_8T.time(mb) for mb in SIZES_MB])
    noisy = times * rng.lognormal(0.0, noise_sigma, size=len(times))
    return fit_piecewise_cpu(SIZES_MB, noisy, threads=8, min_r2=0.98)


@pytest.mark.experiment("FIG5", "CPU model fit, 8 threads (eq. 10)")
def test_fig5_fit_recovers_eq10(benchmark, report):
    model = benchmark.pedantic(sweep_and_fit, rounds=1, iterations=1)
    fa = model.model.below
    fb = model.model.above
    report.row("f_A coefficient a", "6.0e-5", f"{fa.a:.2e}")
    report.row("f_A exponent p", "0.984", f"{fa.p:.4f}")
    report.row("f_B slope", "4.0e-5", f"{fb.a:.2e}")
    report.row("f_B intercept", "0.0146", f"{fb.b:.4f}")
    assert fa.p == pytest.approx(0.984, abs=0.05)
    assert fb.a == pytest.approx(4e-5, rel=0.10)
    for mb in SIZES_MB:
        if mb == 512:
            continue
        assert model.time(mb) == pytest.approx(XEON_X5667_8T.time(mb), rel=0.15)


@pytest.mark.experiment("FIG5-vs-FIG4", "8T beats 4T in the streaming regime")
def test_fig5_dominates_fig4_at_scale(benchmark, report):
    model8 = benchmark.pedantic(sweep_and_fit, rounds=1, iterations=1)
    for mb in (1024, 8192, 32768):
        t4 = XEON_X5667_4T.time(mb)
        t8 = model8.time(mb)
        report.row(f"T({mb} MB): 8T vs 4T", f"{t4 * 1e3:.0f} ms (4T)", f"{t8 * 1e3:.0f} ms")
        assert t8 < t4
