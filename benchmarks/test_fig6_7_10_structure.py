"""FIG6 / FIG7 / FIG10 — structural figures verified against the code.

These figures are diagrams, not measurements; their reproduction is the
*code structure itself*.  Each test verifies the implemented structure
matches the figure and records the realised layout in the results file:

- Figure 6 — GPU memory organisation: one 1-D buffer, columns packed
  one after another, per-level dimension columns then data columns;
- Figure 7 — the partition block diagram: six GPU partitions, one CPU
  processing partition, one translation partition;
- Figure 10 — the scheduling algorithm: a traced run showing each step
  (deadline, estimates, P_BD, placement) behaving per the pseudocode.
"""

import numpy as np
import pytest

from repro.core.partitions import QueueKind
from repro.gpu.partitioning import paper_partition_scheme
from repro.relational import generate_dataset, tpcds_like_schema


@pytest.mark.experiment("FIG6", "1-D packed column layout of the GPU table")
def test_fig6_packed_layout(benchmark, report):
    schema = tpcds_like_schema(scale=0.3)
    table = generate_dataset(schema, num_rows=5_000, seed=6).table

    packed, offsets = benchmark.pedantic(
        lambda: (table.packed(), table.column_offsets()), rounds=1, iterations=1
    )
    # a single contiguous 1-D buffer of exactly the table payload
    assert packed.ndim == 1
    assert packed.nbytes == table.nbytes
    # columns laid out one after another, in schema order
    names = [c.name for c in schema.columns]
    report.line("column offsets in the 1-D buffer (Figure 6 layout):")
    prev_end = 0
    for name in names:
        start = offsets[name]
        assert start == prev_end  # no gaps, no reordering
        prev_end = start + table.column_nbytes(name)
        report.line(f"  {name:<18s} @ {start:>10,d}")
    assert prev_end == packed.nbytes
    # every column is recoverable from the flat buffer
    col = table.column("quantity")
    start = offsets["quantity"]
    recovered = packed[start : start + col.nbytes].view(col.dtype)
    assert np.array_equal(recovered, col)


@pytest.mark.experiment("FIG7", "partition block diagram")
def test_fig7_partition_diagram(benchmark, report):
    scheme = benchmark.pedantic(paper_partition_scheme, rounds=1, iterations=1)
    report.line("GPU partitions (Figure 7): " + ", ".join(str(p) for p in scheme))
    report.line("CPU partitions: processing (Q_CPU) + translation (Q_TRANS)")
    assert [p.n_sm for p in scheme] == [1, 1, 2, 2, 4, 4]
    assert scheme.total_sms == 14
    # the system instantiates exactly the figure's queue set
    from repro.paper import paper_system_config, paper_workload
    from repro.sim import HybridSystem

    config = paper_system_config(threads=8)
    system = HybridSystem(config)
    run_report = system.run(paper_workload(include_32gb=True, seed=1).generate(50))
    queues = set(run_report.utilisations)
    assert queues == {
        "Q_CPU", "Q_TRANS", "Q_G1", "Q_G2", "Q_G3", "Q_G4", "Q_G5", "Q_G6",
    }


@pytest.mark.experiment("FIG10", "scheduling algorithm trace")
def test_fig10_traced_run(benchmark, report):
    """Trace five scheduling decisions and verify each against the
    pseudocode's steps."""
    from repro.core.partitions import PartitionQueue
    from repro.core.scheduler import HybridScheduler, QueryEstimates
    from repro.query.model import Query

    class ScriptedEstimator:
        def __init__(self):
            self.script = [
                # (t_cpu, gpu times, t_trans): crafted to hit each branch
                (0.001, {1: 0.030, 2: 0.015, 4: 0.008}, 0.0),  # step 5 CPU
                (0.050, {1: 0.030, 2: 0.015, 4: 0.008}, 0.0),  # step 5 GPU slowest
                (None, {1: 0.030, 2: 0.015, 4: 0.008}, 0.01),  # no cube -> GPU + trans
                (9.000, {1: 8.0, 2: 7.0, 4: 6.0}, 0.0),        # step 6 fallback
                (0.001, {1: 0.030, 2: 0.015, 4: 0.008}, 0.02), # CPU; no translation
            ]
            self.i = 0

        def estimate(self, query):
            t_cpu, t_gpu, t_trans = self.script[self.i % len(self.script)]
            self.i += 1
            return QueryEstimates(t_cpu=t_cpu, t_gpu=t_gpu, t_trans=t_trans)

    def run_trace():
        cpu_q = PartitionQueue("Q_CPU", QueueKind.CPU)
        trans_q = PartitionQueue("Q_TRANS", QueueKind.TRANSLATION)
        gpu_qs = [
            PartitionQueue(f"Q_G{i + 1}", QueueKind.GPU, n_sm=n)
            for i, n in enumerate([1, 1, 2, 2, 4, 4])
        ]
        scheduler = HybridScheduler(cpu_q, gpu_qs, trans_q, ScriptedEstimator(), 0.5)
        decisions = [
            scheduler.schedule(Query(conditions=(), measures=("v",)), now=0.0)
            for _ in range(5)
        ]
        return decisions

    decisions = benchmark.pedantic(run_trace, rounds=1, iterations=1)
    expectations = [
        ("Q_CPU", False, True, "step 5: CPU in P_BD and T_CPU < T_GPU3"),
        ("Q_G1", False, True, "step 5: slowest GPU partition in P_BD"),
        ("Q_G1", True, True, "no cube: GPU mandatory, translation queued"),
        ("Q_G5", False, False, "step 6: min |T_D - T_R| (6 s on 4-SM class)"),
        ("Q_CPU", False, True, "CPU path: no translation needed (III-F)"),
    ]
    for d, (target, translated, meets, note) in zip(decisions, expectations):
        report.line(
            f"  Q#{d.query.query_id}: -> {d.target.name:<6s} "
            f"trans={'y' if d.translation else 'n'} "
            f"deadline={'met' if d.meets_deadline else 'MISS'}   ({note})"
        )
        assert d.target.name == target, note
        assert (d.translation is not None) == translated, note
        assert d.meets_deadline == meets, note
