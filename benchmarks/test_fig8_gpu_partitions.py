"""FIG8 — Figure 8: Tesla C2070 query time by partition size and columns.

Paper: query time grows linearly with the number of searched columns,
for 1-, 2- and 4-SM partitions over a 4 GB resident table, giving the
eq.-14 fits.  Reproduction: execute real (scaled) column-scan kernels on
the simulated device across the column sweep, time them through the
device's physical bandwidth model, fit per-SM lines with the
calibration pipeline, and compare the *structure* with eq. 14 (linear
in columns; time ~ inversely proportional to SM count).  The published
coefficients themselves are also verified directly.
"""

import numpy as np
import pytest

from repro.core.calibration import fit_gpu_timing
from repro.gpu.device import SimulatedGPU
from repro.gpu.timing import BandwidthTiming, TESLA_C2070_TIMING
from repro.query.model import Condition, Query, decompose
from repro.relational import generate_dataset, tpcds_like_schema
from repro.units import GB

SM_COUNTS = (1, 2, 4)


def column_sweep_times():
    """Measured (simulated-time) query times across a column sweep."""
    schema = tpcds_like_schema(scale=0.5)
    dataset = generate_dataset(schema, num_rows=50_000, seed=8)
    device = SimulatedGPU(
        global_memory_bytes=GB,
        timing=BandwidthTiming(table_nbytes=4 * GB, launch_overhead=2e-3),
    )
    device.load_table(dataset.table)

    dims = schema.dimensions
    sweeps: dict[int, tuple[list[float], list[float]]] = {}
    # queries touching 1..6 columns: add conditions/measures stepwise
    queries = []
    conds = []
    for k, (dim, res) in enumerate(
        [(dims[0], 1), (dims[1], 1), (dims[2], 1), (dims[0], 2)][:3]
    ):
        conds.append(Condition(dim.name, res, lo=0, hi=2))
        for n_meas in (1, 2):
            queries.append(
                Query(
                    conditions=tuple(conds),
                    measures=tuple(schema.measures[:n_meas]),
                )
            )
    for n_sm in SM_COUNTS:
        fracs, times = [], []
        for q in queries:
            d = decompose(q, schema.hierarchies)
            execution = device.execute(d, n_sm)
            fracs.append(execution.column_fraction)
            times.append(execution.simulated_time)
        sweeps[n_sm] = (fracs, times)
    return sweeps


@pytest.mark.experiment("FIG8", "GPU partition timing fits (eq. 14)")
def test_fig8_published_fits(benchmark, report):
    fracs = np.linspace(0.1, 1.0, 10)

    def published_sweep():
        return {
            n_sm: (list(fracs), [TESLA_C2070_TIMING.query_time(f, n_sm) for f in fracs])
            for n_sm in SM_COUNTS
        }

    data = benchmark.pedantic(published_sweep, rounds=1, iterations=1)
    fitted = fit_gpu_timing(data, min_r2=0.999)
    from repro.report import ascii_plot

    report.line(
        ascii_plot(
            {
                f"{n}SM": list(zip(data[n][0], data[n][1]))
                for n in SM_COUNTS
            },
            xlabel="C/C_tot",
            ylabel="T_GPU [s]",
        )
    )
    report.line()
    expected = {1: (0.0030, 0.0258), 2: (0.0015, 0.0130), 4: (0.0008, 0.0065)}
    for n_sm, (slope, intercept) in expected.items():
        got_slope, got_int = fitted.coefficients[n_sm]
        report.row(f"{n_sm}SM slope", f"{slope:.4f}", f"{got_slope:.4f}")
        report.row(f"{n_sm}SM intercept", f"{intercept:.4f}", f"{got_int:.4f}")
        assert got_slope == pytest.approx(slope, rel=1e-6)
        assert got_int == pytest.approx(intercept, rel=1e-6)


@pytest.mark.experiment("FIG8-device", "simulated device reproduces the shape")
def test_fig8_simulated_device_shape(benchmark, report):
    sweeps = benchmark.pedantic(column_sweep_times, rounds=1, iterations=1)
    fitted = fit_gpu_timing(sweeps, min_r2=0.95)
    report.line("linear fits from the simulated device (4 GB table):")
    for n_sm in SM_COUNTS:
        slope, intercept = fitted.coefficients[n_sm]
        report.row(f"{n_sm}SM", "linear in C/C_tot", f"{slope:.4f}*x + {intercept:.4f}")
    # time decreases with SM count at fixed column fraction
    t = {n: fitted.query_time(0.5, n) for n in SM_COUNTS}
    assert t[1] > t[2] > t[4]
    # near-inverse-SM scaling of the slope (bandwidth-bound scan)
    s1 = fitted.coefficients[1][0]
    s4 = fitted.coefficients[4][0]
    assert s1 / s4 == pytest.approx(4.0, rel=0.25)
