"""FIG9 — Figure 9: dictionary search time vs dictionary size.

Paper: search time grows linearly with dictionary length —
P_DICT(D_L) = 0.0138 us * D_L (eq. 17), i.e. the implementation scans.
Reproduction: real wall-clock lookups against the linear-scan backend
across dictionary sizes, fitted through the origin with the calibration
pipeline.  Absolute per-entry cost is machine-bound; linearity (R^2)
and the paper coefficient's self-consistency are asserted.
"""

import time

import numpy as np
import pytest

from repro.core.calibration import fit_dict_cost, fit_linear
from repro.core.perfmodel import PAPER_DICT_MODEL
from repro.relational.generator import make_vocabulary
from repro.text.dictionary import ColumnDictionary

SIZES = (1_000, 2_000, 4_000, 8_000, 16_000)


def measure_linear_scan(sizes=SIZES, probes_per_size: int = 30, seed: int = 9):
    """Mean wall-clock lookup time per dictionary size (linear backend).

    Probes are uniform over the vocabulary, so the expected scan visits
    half the dictionary — the same measurement protocol the paper's
    upper-bound estimate assumes (eq. 18 uses the full-length bound).
    """
    rng = np.random.default_rng(seed)
    results = []
    for size in sizes:
        vocab = make_vocabulary(size, rng)
        d = ColumnDictionary("bench", vocab, backend="linear")
        targets = [vocab[int(i)] for i in rng.integers(0, size, probes_per_size)]
        start = time.perf_counter()
        for t in targets:
            d.encode(t)
        elapsed = (time.perf_counter() - start) / probes_per_size
        results.append((size, elapsed))
    return results


@pytest.mark.experiment("FIG9", "dictionary search time vs dictionary length")
def test_fig9_linear_scaling(benchmark, report):
    points = benchmark.pedantic(measure_linear_scan, rounds=1, iterations=1)
    sizes = [s for s, _ in points]
    times = [t for _, t in points]
    fit = fit_linear(sizes, times, through_origin=True)
    model = fit_dict_cost(sizes, times)
    report.line("measured linear-scan lookup times on this machine:")
    for s, t in points:
        report.line(f"  D_L={s:>7d}: {t * 1e6:8.1f} us")
    report.row("per-entry cost", "0.0138 us (Xeon)", f"{model.cost_per_entry * 1e6:.4f} us")
    report.row("linearity R^2", "~1.0", f"{fit.r2:.4f}")
    from repro.report import ascii_plot

    report.line()
    report.line(
        ascii_plot(
            {"measured": points, "fit": [(s, model.time(s)) for s in sizes]},
            xlabel="D_L [entries]",
            ylabel="lookup [s]",
        )
    )
    # linear growth is the claim; the slope is machine-specific
    assert fit.r2 > 0.90
    # the cost clearly grows with D_L (a scan), far beyond O(1)/O(log n)
    assert times[-1] / times[0] > 0.5 * (sizes[-1] / sizes[0])


@pytest.mark.experiment("FIG9-backends", "hash/trie lookups do NOT scale with D_L")
def test_fig9_constant_backends_contrast(benchmark, report):
    """The future-work claim: a smarter structure removes the linear cost."""
    rng = np.random.default_rng(10)

    def measure(backend):
        out = []
        for size in (1_000, 16_000):
            vocab = make_vocabulary(size, rng)
            d = ColumnDictionary("bench", vocab, backend=backend)
            targets = [vocab[int(i)] for i in rng.integers(0, size, 500)]
            start = time.perf_counter()
            for t in targets:
                d.encode(t)
            out.append((time.perf_counter() - start) / 500)
        return out

    hash_times = benchmark.pedantic(measure, args=("hash",), rounds=1, iterations=1)
    ratio = hash_times[1] / hash_times[0]
    report.row("hash 16k/1k cost ratio", "~1 (O(1))", f"{ratio:.2f}")
    report.row("linear 16k/1k cost ratio", "~16 (O(n))", "see FIG9")
    assert ratio < 4.0  # nowhere near the 16x of a scan


@pytest.mark.experiment("FIG9-paper-model", "eq. 17 magnitudes")
def test_fig9_paper_model_magnitudes(benchmark, report):
    t = benchmark.pedantic(PAPER_DICT_MODEL.time, args=(1_000_000,), rounds=1, iterations=1)
    report.row("P_DICT(1e6 entries)", "13.8 ms", f"{t * 1e3:.1f} ms")
    assert t == pytest.approx(0.0138, rel=1e-9)
