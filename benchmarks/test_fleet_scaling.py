"""BENCH-FLEET — aggregate throughput of a sharded fleet vs one engine.

The baseline leg replays BENCH-SERVE exactly (one ``ServeEngine``, the
Table-3 workload at 60 q/s).  The fleet leg boots four worker-process
shards behind the consistent-hash router and offers the same workload
at 4x the rate, dispatched through :meth:`repro.fleet.Fleet.submit`
from a thread pool (each call is a synchronous frame round-trip, so the
pool provides the concurrency the open loop needs).  The paper has no
multi-process experiment — this pins the scaling claim of the fleet
plane: one engine at 60 q/s is far from saturating a host, so four
shards must clear >= 3x the single-engine completion rate, and the
merged books must reconcile.
"""

import math
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from test_serve_throughput import DURATION, RATE, ROWS, SEED, build_world, serve_once

from repro.errors import FleetError
from repro.fleet import Fleet, ShardSpec
from repro.query.workload import ArrivalProcess
from repro.sim import assert_fleet_valid

SHARDS = 4
SPEEDUP_FLOOR = 3.0


def fleet_once():
    _, workload = build_world()
    rate = RATE * SHARDS
    n_queries = math.ceil(DURATION * rate)
    stream = workload.generate(n_queries, ArrivalProcess("poisson", rate=rate))

    spec = ShardSpec(shard_id=0, rows=ROWS, seed=SEED)
    answers = []
    failed = 0
    with Fleet(num_shards=SHARDS, spec=spec) as fleet:
        start = time.monotonic()
        with ThreadPoolExecutor(max_workers=32) as pool:
            futures = []
            for timed in stream:
                lag = (start + timed.time) - time.monotonic()
                if lag > 0:
                    time.sleep(lag)
                futures.append(
                    pool.submit(fleet.submit, timed.query, timed.query_class)
                )
            for future in futures:
                try:
                    answers.append(future.result())
                except FleetError:
                    failed += 1
        elapsed = time.monotonic() - start
        report = fleet.fleet_report(drain=True)

    completed = sum(1 for a in answers if a.accepted)
    shed = sum(1 for a in answers if a.shed)
    return {
        "offered": n_queries,
        "completed": completed,
        "shed": shed,
        "failed": failed,
        "elapsed": elapsed,
        "qps": completed / elapsed,
        "report": report,
    }


@pytest.mark.experiment("BENCH-FLEET", "Sharded fleet aggregate throughput")
def test_fleet_scales_past_one_engine(benchmark, report):
    load, sys_report = serve_once()
    base_qps = sys_report.queries_per_second

    fleet = benchmark.pedantic(fleet_once, rounds=1, iterations=1)
    speedup = fleet["qps"] / base_qps

    report.row("single engine", "-", f"{base_qps:.1f} q/s")
    report.row(f"{SHARDS}-shard fleet", "-", f"{fleet['qps']:.1f} q/s")
    report.row("speedup", f">= {SPEEDUP_FLOOR:.0f}x", f"{speedup:.2f}x")
    report.row("fleet offered", "-", f"{fleet['offered']}")
    report.row("fleet completed", "-", f"{fleet['completed']}")
    report.row("fleet shed+failed", "-", f"{fleet['shed'] + fleet['failed']}")
    benchmark.extra_info["measured_qps"] = fleet["qps"]
    benchmark.extra_info["speedup"] = speedup

    # the merged cross-process books reconcile before any claims are made
    fleet_report = fleet["report"]
    assert_fleet_valid(fleet_report)
    assert fleet_report.crashed == ()
    assert len(fleet_report.shards) == SHARDS

    # baseline leg is healthy (same pins as BENCH-SERVE)
    assert load.accepted == sys_report.completed
    assert sys_report.completed > 0.8 * load.offered

    # scaling claim: four shards clear >= 3x one engine, with every
    # shard carrying a share of the routed load
    assert fleet["completed"] > 0.8 * fleet["offered"]
    assert speedup >= SPEEDUP_FLOOR
    for shard_id, routed in fleet_report.routed.items():
        assert routed > 0, f"shard {shard_id} never routed a query"
