"""TXT-GPU7 — the ~7 % translation overhead (Section IV).

Paper: GPU-only processing runs at ~69 q/s without text-to-integer
translation and ~64 q/s with it — *"the translation typically slows
down the system by approximately 7%"*.

Both arms use *identical query geometry*: the "without" arm ships the
same text predicates as pre-translated integer codes, so the only
difference is the work on the CPU preprocessing partition.
"""

import pytest

from repro.paper import gpu_only_config, paper_workload
from repro.sim import HybridSystem

N_QUERIES = 2000
PAPER_WITH = 64.0
PAPER_WITHOUT = 69.0


def run_gpu_only(with_translation: bool) -> float:
    config = gpu_only_config()
    workload = paper_workload(
        include_32gb=True,
        text_prob=1.0,
        text_as_codes=not with_translation,
        seed=42,
    )
    report = HybridSystem(config).run(workload.generate(N_QUERIES))
    return report.queries_per_second


@pytest.mark.experiment("TXT-GPU7", "GPU-only rate with vs without translation")
def test_translation_overhead(benchmark, report):
    rates = benchmark.pedantic(
        lambda: (run_gpu_only(True), run_gpu_only(False)), rounds=1, iterations=1
    )
    with_t, without_t = rates
    overhead = 1.0 - with_t / without_t
    report.row("GPU-only with translation", "64 q/s", f"{with_t:.1f} q/s")
    report.row("GPU-only without translation", "69 q/s", f"{without_t:.1f} q/s")
    report.row("translation overhead", "~7 %", f"{100 * overhead:.1f} %")
    benchmark.extra_info["overhead_pct"] = 100 * overhead
    assert with_t == pytest.approx(PAPER_WITH, rel=0.15)
    assert without_t == pytest.approx(PAPER_WITHOUT, rel=0.15)
    # the headline: translation costs single-digit percent, not nothing
    # and not a collapse
    assert 0.02 < overhead < 0.15


@pytest.mark.experiment("TXT-GPU7-capacity", "translation partition saturation")
def test_translation_partition_is_the_bottleneck(benchmark, report):
    """The 7% comes from the single translation partition saturating
    just below the GPU's no-translation rate (eq. 17 with D_L ~ 1.13M
    entries -> ~15.6 ms per parameter -> ~64 lookups/s)."""
    from repro.paper import PAPER_DICT_LENGTH
    from repro.core.perfmodel import PAPER_DICT_MODEL

    per_lookup = benchmark.pedantic(
        PAPER_DICT_MODEL.time, args=(PAPER_DICT_LENGTH,), rounds=1, iterations=1
    )
    capacity = 1.0 / per_lookup
    report.row("translation capacity", "~64 lookups/s", f"{capacity:.1f} lookups/s")
    assert capacity == pytest.approx(64.0, rel=0.05)
