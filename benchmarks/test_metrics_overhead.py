"""BENCH-METRICS — cost of the live metrics plane on the serving path.

Two identical wall-clock serve runs on the Table-3-shaped workload: one
bare, one carrying the full metrics plane (registry instrumentation on
every hook, snapshot writer, SLO monitor).  The instrumentation is a
handful of dict updates behind one uncontended lock per event, so the
paced end-to-end run must cost within 5% of the bare one — observability
that slows the system down distorts the very numbers it reports.

The instrumented run's registry is also reconciled against the report
(``validate_metrics``), so the overhead number is only accepted when the
metrics it paid for are actually correct.
"""

import math
import time

import pytest

from repro.core.perfmodel import XEON_X5667_8T
from repro.gpu import SimulatedGPU
from repro.gpu.partitioning import paper_partition_scheme
from repro.gpu.timing import TESLA_C2070_TIMING
from repro.metrics import MetricsRegistry, SloMonitor, SnapshotWriter
from repro.olap import CubePyramid
from repro.query.workload import ArrivalProcess, QueryClass, WorkloadSpec
from repro.relational import generate_dataset, tpcds_like_schema
from repro.serve import MaterialisedExecutor, OpenLoopGenerator, ServeEngine
from repro.sim.system import SystemConfig
from repro.sim.validate import assert_metrics_valid, assert_valid
from repro.text import TranslationService, build_dictionaries
from repro.units import GB

DURATION = 2.0
RATE = 60.0
ROWS = 10_000
SEED = 2012
MAX_OVERHEAD = 0.05


def build_world():
    schema = tpcds_like_schema(scale=0.5)
    dataset = generate_dataset(schema, num_rows=ROWS, seed=SEED)
    pyramid = CubePyramid.from_fact_table(dataset.table, "sales_price", [0, 1, 2])
    translator = TranslationService(
        build_dictionaries(dataset.vocabularies), schema.hierarchies
    )
    device = SimulatedGPU(global_memory_bytes=GB, timing=TESLA_C2070_TIMING)
    device.load_table(dataset.table)
    config = SystemConfig(
        cpu_model=XEON_X5667_8T.with_overhead(0.002),
        pyramid=pyramid,
        device=device,
        scheme=paper_partition_scheme(),
        translation_service=translator,
        time_constraint=0.5,
    )
    workload = WorkloadSpec(
        schema.dimensions,
        [
            QueryClass("small", 0.6, resolution=1, coverage=(0.1, 0.5)),
            QueryClass(
                "mid",
                0.25,
                resolution=2,
                dims_constrained=(1, 2),
                coverage=(0.5, 1.0),
                text_prob=0.5,
            ),
            QueryClass("fine", 0.15, resolution=3, coverage=(0.2, 0.8)),
        ],
        measures=("sales_price",),
        text_levels=list(schema.text_levels),
        vocabularies=dataset.vocabularies,
        seed=SEED,
    )
    return config, workload


def serve_once(instrumented: bool):
    """One paced serve run; returns (serve seconds, report, final snapshot)."""
    config, workload = build_world()
    n_queries = math.ceil(DURATION * RATE)
    stream = workload.generate(n_queries, ArrivalProcess("poisson", rate=RATE))
    registry = slo = snapshots = None
    if instrumented:
        registry = MetricsRegistry()
        slo = SloMonitor(target=0.9, window=60.0, registry=registry)
        snapshots = SnapshotWriter(registry, interval=DURATION / 20.0)
    engine = ServeEngine(
        config,
        executor=MaterialisedExecutor(config),
        metrics=registry,
        slo=slo,
        snapshots=snapshots,
    )
    start = time.perf_counter()
    with engine:
        OpenLoopGenerator(engine, shed=True).run(stream)
    elapsed = time.perf_counter() - start
    report = engine.report()
    snapshot = registry.collect(engine.elapsed) if instrumented else None
    return elapsed, report, snapshot


@pytest.mark.experiment("BENCH-METRICS", "Metrics-plane overhead on the serving path")
def test_metrics_overhead(benchmark, report):
    plain_time, plain_report, _ = serve_once(instrumented=False)
    metered_time, metered_report, snapshot = benchmark.pedantic(
        serve_once, args=(True,), rounds=1, iterations=1
    )

    # the paid-for metrics must be correct before the cost is credited
    assert_valid(plain_report, require_drained=True)
    assert_valid(metered_report, require_drained=True)
    assert_metrics_valid(metered_report, snapshot)

    overhead = metered_time / plain_time - 1.0
    report.row("bare serve", "-", f"{plain_time:.3f} s")
    report.row("instrumented serve", "-", f"{metered_time:.3f} s")
    report.row(
        "overhead", f"< {MAX_OVERHEAD:.0%}", f"{overhead:+.2%}"
    )
    report.row(
        "metric families exported", "-", str(len(snapshot.families))
    )
    benchmark.extra_info["overhead"] = overhead

    # both runs completed their load; the plane itself stays cheap
    assert metered_report.completed == plain_report.completed
    assert overhead < MAX_OVERHEAD
