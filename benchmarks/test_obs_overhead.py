"""BENCH-OBS — cost of the span-tracing plane on the serving path.

Three identical wall-clock serve runs on the Table-3-shaped workload:
bare, fully sampled (rate 1.0), and head-sampled at 10%.  A span is a
couple of clock reads and one append under a leaf-level lock, and an
unsampled query pays exactly one hash + one dict miss per hook, so the
paced end-to-end run must cost within 5% of bare at full sampling and
within 1% at 10% — tracing that distorts the latencies it measures is
worse than no tracing.

The traced runs' span trees are reconciled against their own reports
(``validate_spans``), so the overhead number is only credited when the
spans it paid for are structurally sound and agree with the books.
"""

import math
import time

import pytest

from repro.core.perfmodel import XEON_X5667_8T
from repro.gpu import SimulatedGPU
from repro.gpu.partitioning import paper_partition_scheme
from repro.gpu.timing import TESLA_C2070_TIMING
from repro.obs import SpanTracer
from repro.olap import CubePyramid
from repro.query.workload import ArrivalProcess, QueryClass, WorkloadSpec
from repro.relational import generate_dataset, tpcds_like_schema
from repro.serve import MaterialisedExecutor, OpenLoopGenerator, ServeEngine
from repro.sim.system import SystemConfig
from repro.sim.validate import assert_spans_valid, assert_valid
from repro.text import TranslationService, build_dictionaries
from repro.units import GB

DURATION = 2.0
RATE = 60.0
ROWS = 10_000
SEED = 2012
MAX_OVERHEAD_FULL = 0.05
MAX_OVERHEAD_SAMPLED = 0.01


def build_world():
    schema = tpcds_like_schema(scale=0.5)
    dataset = generate_dataset(schema, num_rows=ROWS, seed=SEED)
    pyramid = CubePyramid.from_fact_table(dataset.table, "sales_price", [0, 1, 2])
    translator = TranslationService(
        build_dictionaries(dataset.vocabularies), schema.hierarchies
    )
    device = SimulatedGPU(global_memory_bytes=GB, timing=TESLA_C2070_TIMING)
    device.load_table(dataset.table)
    config = SystemConfig(
        cpu_model=XEON_X5667_8T.with_overhead(0.002),
        pyramid=pyramid,
        device=device,
        scheme=paper_partition_scheme(),
        translation_service=translator,
        time_constraint=0.5,
    )
    workload = WorkloadSpec(
        schema.dimensions,
        [
            QueryClass("small", 0.6, resolution=1, coverage=(0.1, 0.5)),
            QueryClass(
                "mid",
                0.25,
                resolution=2,
                dims_constrained=(1, 2),
                coverage=(0.5, 1.0),
                text_prob=0.5,
            ),
            QueryClass("fine", 0.15, resolution=3, coverage=(0.2, 0.8)),
        ],
        measures=("sales_price",),
        text_levels=list(schema.text_levels),
        vocabularies=dataset.vocabularies,
        seed=SEED,
    )
    return config, workload


def serve_once(sample_rate: float | None):
    """One paced serve run; returns (serve seconds, report, tracer)."""
    config, workload = build_world()
    n_queries = math.ceil(DURATION * RATE)
    stream = workload.generate(n_queries, ArrivalProcess("poisson", rate=RATE))
    tracer = (
        None
        if sample_rate is None
        else SpanTracer(sample_rate, seed=SEED, process="serve")
    )
    engine = ServeEngine(
        config,
        executor=MaterialisedExecutor(config),
        spans=tracer,
    )
    start = time.perf_counter()
    with engine:
        OpenLoopGenerator(engine, shed=True).run(stream)
    elapsed = time.perf_counter() - start
    return elapsed, engine.report(), tracer


@pytest.mark.experiment("BENCH-OBS", "Span-tracing overhead on the serving path")
def test_obs_overhead(benchmark, report):
    bare_time, bare_report, _ = serve_once(None)
    full_time, full_report, full_tracer = benchmark.pedantic(
        serve_once, args=(1.0,), rounds=1, iterations=1
    )
    sampled_time, sampled_report, sampled_tracer = serve_once(0.1)

    # the paid-for spans must be correct before the cost is credited
    # (no sampling context: an open-loop generator sheds arrivals the
    # engine never sees, so the traced set is a subset by design)
    assert_valid(bare_report, require_drained=True)
    assert_valid(full_report, require_drained=True)
    assert_valid(sampled_report, require_drained=True)
    full_spans = assert_spans_valid(full_tracer.spans(), report=full_report)
    sampled_spans = assert_spans_valid(
        sampled_tracer.spans(), report=sampled_report
    )
    assert full_spans and full_tracer.dropped == 0
    assert 0 < sampled_tracer.sampled_count < full_tracer.sampled_count

    full_overhead = full_time / bare_time - 1.0
    sampled_overhead = sampled_time / bare_time - 1.0
    report.row("bare serve", "-", f"{bare_time:.3f} s")
    report.row("traced serve (sample 1.0)", "-", f"{full_time:.3f} s")
    report.row("traced serve (sample 0.1)", "-", f"{sampled_time:.3f} s")
    report.row(
        "overhead @ 1.0", f"< {MAX_OVERHEAD_FULL:.0%}", f"{full_overhead:+.2%}"
    )
    report.row(
        "overhead @ 0.1",
        f"< {MAX_OVERHEAD_SAMPLED:.0%}",
        f"{sampled_overhead:+.2%}",
    )
    report.row("spans @ 1.0", "-", str(len(full_spans)))
    report.row("spans @ 0.1", "-", str(len(sampled_spans)))
    benchmark.extra_info["overhead_full"] = full_overhead
    benchmark.extra_info["overhead_sampled"] = sampled_overhead

    # paced runs: all three served comparable load; tracing stays cheap
    assert full_overhead < MAX_OVERHEAD_FULL
    assert sampled_overhead < MAX_OVERHEAD_SAMPLED
