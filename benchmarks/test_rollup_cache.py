"""BENCH-ROLLUP — rollup cache payoff on a skewed serving workload.

A Table-3-style dashboard workload is heavily shape-skewed: 95% of
queries reuse three hot group-by shapes with fresh parameter ranges,
5% are cold probes on a dimension the catalog never covers.  Both runs execute the *same*
query list closed-loop through the live serving engine with real
materialised execution; the cached run additionally carries a
:class:`~repro.olap.rollup.RollupRouter` whose catalog was warmed with
the three hot cuboids.

Pinned claims (ISSUE 6 acceptance):

- >= 5x effective q/s with the cache versus without;
- every cache-hit answer is byte-identical to the uncached engine's
  answer for the same query (the ``quantity`` measure is
  integer-valued, so float64 aggregation is exact in any order);
- both runs pass the full audit, the cached one including the seventh
  ("rollup") family.
"""

import time

import pytest

from repro.core.perfmodel import XEON_X5667_8T
from repro.gpu import SimulatedGPU
from repro.gpu.partitioning import paper_partition_scheme
from repro.gpu.timing import TESLA_C2070_TIMING
from repro.metrics import MetricsRegistry
from repro.olap import (
    AdmissionPolicy,
    CubePyramid,
    CuboidSpec,
    RollupCatalog,
    RollupRouter,
)
from repro.query.model import Condition, Query
from repro.relational import generate_dataset, tpcds_like_schema
from repro.serve import MaterialisedExecutor, ServeEngine
from repro.sim.system import SystemConfig
from repro.sim.validate import validate_report, validate_rollup
from repro.text import TranslationService, build_dictionaries
from repro.units import GB

import numpy as np

ROWS = 20_000
SEED = 2012
N_QUERIES = 300
HOT_FRACTION = 0.95
HOT_SHAPES = [
    (("date",), (2,)),
    (("store",), (2,)),
    (("date", "store"), (2, 2)),
]
#: the cold 10%: probes on the dimension the catalog never covers
COLD_SHAPE = (("item",), (1,))


def build_world():
    schema = tpcds_like_schema(scale=0.5)
    dataset = generate_dataset(schema, num_rows=ROWS, seed=SEED)
    pyramid = CubePyramid.from_fact_table(dataset.table, "quantity", [0, 1, 2])
    translator = TranslationService(
        build_dictionaries(dataset.vocabularies), schema.hierarchies
    )
    device = SimulatedGPU(global_memory_bytes=GB, timing=TESLA_C2070_TIMING)
    device.load_table(dataset.table)
    config = SystemConfig(
        cpu_model=XEON_X5667_8T.with_overhead(0.002),
        pyramid=pyramid,
        device=device,
        scheme=paper_partition_scheme(),
        translation_service=translator,
        time_constraint=0.5,
    )
    return schema, dataset, config


def skewed_queries(schema, rng):
    dims = {d.name: d for d in schema.dimensions}
    queries = []
    for _ in range(N_QUERIES):
        if rng.random() < HOT_FRACTION:
            names, resolutions = HOT_SHAPES[rng.integers(len(HOT_SHAPES))]
        else:
            names, resolutions = COLD_SHAPE
        conditions = []
        for name, res in zip(names, resolutions):
            card = dims[name].cardinality(res)
            lo = int(rng.integers(0, card))
            hi = int(rng.integers(lo + 1, card + 1))
            conditions.append(Condition(name, res, lo=lo, hi=hi))
        queries.append(
            Query(conditions=tuple(conditions), measures=("quantity",))
        )
    return queries


def closed_loop(config, queries, router=None, registry=None):
    engine = ServeEngine(
        config,
        executor=MaterialisedExecutor(config),
        rollup=router,
        metrics=registry,
    )
    t0 = time.perf_counter()
    with engine:
        for query in queries:
            outcome = engine.submit(query)
            if outcome.accepted and not outcome.cache_hit:
                outcome.ticket.wait(timeout=60.0)
    elapsed = time.perf_counter() - t0
    return engine.report(), elapsed


def run_comparison():
    schema, dataset, config = build_world()
    queries = skewed_queries(schema, np.random.default_rng(SEED))

    catalog = RollupCatalog(dataset.table, "quantity")
    for names, resolutions in HOT_SHAPES:
        catalog.materialise_and_install(
            CuboidSpec(dims=names, resolutions=resolutions)
        )
    router = RollupRouter(
        catalog, policy=AdmissionPolicy(byte_budget=32_000_000)
    )
    registry = MetricsRegistry()

    uncached_report, uncached_s = closed_loop(config, queries)
    cached_report, cached_s = closed_loop(
        config, queries, router=router, registry=registry
    )
    return {
        "uncached": (uncached_report, uncached_s),
        "cached": (cached_report, cached_s),
        "router": router,
        "registry": registry,
    }


@pytest.mark.experiment(
    "BENCH-ROLLUP", "Rollup cache payoff on a skewed serving workload"
)
def test_rollup_cache_speedup(benchmark, report):
    out = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    uncached_report, uncached_s = out["uncached"]
    cached_report, cached_s = out["cached"]
    router = out["router"]

    uncached_qps = len(uncached_report.records) / uncached_s
    effective_qps = (
        cached_report.cache_hit_count + len(cached_report.records)
    ) / cached_s
    speedup = effective_qps / uncached_qps

    report.row("queries", "-", f"{N_QUERIES}")
    report.row("hot-shape fraction", "-", f"{HOT_FRACTION:.0%}")
    report.row("uncached", "-", f"{uncached_qps:.0f} q/s")
    report.row("cached (effective)", "-", f"{effective_qps:.0f} q/s")
    report.row("hit rate", "-", f"{router.hit_rate:.1%}")
    report.row("speedup", ">= 5x", f"{speedup:.1f}x")
    benchmark.extra_info["speedup"] = speedup
    benchmark.extra_info["hit_rate"] = router.hit_rate

    # both runs fully audited; the cached one adds the seventh family
    assert validate_report(uncached_report, require_drained=True).ok
    cached_result = validate_report(cached_report, require_drained=True)
    assert cached_result.ok and "rollup" in cached_result.checked
    assert validate_rollup(
        cached_report, snapshot=out["registry"].collect(cached_s)
    ).ok

    # byte-identical answers: every hit equals the uncached engine's
    # answer for the same query id (integer-valued measure => exact)
    uncached_by_id = {r.query_id: r.answer for r in uncached_report.records}
    assert cached_report.cache_hit_count > 0
    for hit in cached_report.cache_hits:
        assert hit.answer == uncached_by_id[hit.query_id]

    assert router.hit_rate >= 0.8  # the skew delivers
    assert speedup >= 5.0, f"rollup cache speedup only {speedup:.1f}x"
