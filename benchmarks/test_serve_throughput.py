"""BENCH-SERVE — wall-clock serving throughput (the Table-3 analogue).

Unlike TAB3 (simulated-time capacity search) this drives the live
``repro.serve`` engine: real cube aggregations on the CPU partition,
kernel-substitute scans on the GPU partitions, real dictionary lookups
on the translation partition, all in wall-clock time on this machine.
Absolute q/s therefore depends on the host; the pinned assertions are
structural (everything completes, the audit passes, all partition
kinds carry load), not a paper number.
"""

import math

import pytest

from repro.core.perfmodel import XEON_X5667_8T
from repro.gpu import SimulatedGPU
from repro.gpu.partitioning import paper_partition_scheme
from repro.gpu.timing import TESLA_C2070_TIMING
from repro.olap import CubePyramid
from repro.query.workload import ArrivalProcess, QueryClass, WorkloadSpec
from repro.relational import generate_dataset, tpcds_like_schema
from repro.serve import MaterialisedExecutor, OpenLoopGenerator, ServeEngine
from repro.sim.system import SystemConfig
from repro.sim.validate import assert_valid
from repro.text import TranslationService, build_dictionaries
from repro.units import GB

DURATION = 2.0
RATE = 60.0
ROWS = 10_000
SEED = 2012


def build_world():
    schema = tpcds_like_schema(scale=0.5)
    dataset = generate_dataset(schema, num_rows=ROWS, seed=SEED)
    pyramid = CubePyramid.from_fact_table(dataset.table, "sales_price", [0, 1, 2])
    translator = TranslationService(
        build_dictionaries(dataset.vocabularies), schema.hierarchies
    )
    device = SimulatedGPU(global_memory_bytes=GB, timing=TESLA_C2070_TIMING)
    device.load_table(dataset.table)
    config = SystemConfig(
        cpu_model=XEON_X5667_8T.with_overhead(0.002),
        pyramid=pyramid,
        device=device,
        scheme=paper_partition_scheme(),
        translation_service=translator,
        time_constraint=0.5,
    )
    workload = WorkloadSpec(
        schema.dimensions,
        [
            QueryClass("small", 0.6, resolution=1, coverage=(0.1, 0.5)),
            QueryClass(
                "mid",
                0.25,
                resolution=2,
                dims_constrained=(1, 2),
                coverage=(0.5, 1.0),
                text_prob=0.5,
            ),
            QueryClass("fine", 0.15, resolution=3, coverage=(0.2, 0.8)),
        ],
        measures=("sales_price",),
        text_levels=list(schema.text_levels),
        vocabularies=dataset.vocabularies,
        seed=SEED,
    )
    return config, workload


def serve_once():
    config, workload = build_world()
    n_queries = math.ceil(DURATION * RATE)
    stream = workload.generate(
        n_queries, ArrivalProcess("poisson", rate=RATE)
    )
    engine = ServeEngine(config, executor=MaterialisedExecutor(config))
    with engine:
        load = OpenLoopGenerator(engine, shed=True).run(stream)
    return load, engine.report()


@pytest.mark.experiment("BENCH-SERVE", "Wall-clock serving rate (Table-3 analogue)")
def test_serve_wallclock_throughput(benchmark, report):
    load, sys_report = benchmark.pedantic(serve_once, rounds=1, iterations=1)
    assert_valid(sys_report, require_drained=True)

    report.row("offered", "-", f"{load.offered_rate:.1f} q/s")
    report.row("served overall", "-", f"{sys_report.queries_per_second:.1f} q/s")
    report.row("CPU partition", "-", f"{sys_report.target_rate('Q_CPU'):.1f} q/s")
    report.row("GPU partitions", "-", f"{sys_report.target_rate('Q_G'):.1f} q/s")
    report.row(
        "deadline hit rate", ">= 0.9", f"{sys_report.deadline_hit_rate:.2f}"
    )
    benchmark.extra_info["measured_qps"] = sys_report.queries_per_second

    # structural pins: every accepted query finished, the laptop-sized
    # world keeps up with the offered rate, and both resource kinds served
    assert load.accepted == sys_report.completed
    assert sys_report.completed + load.rejected + load.shed == load.offered
    assert sys_report.completed > 0.8 * load.offered
    by_target = sys_report.by_target()
    assert by_target.get("Q_CPU", 0) > 0
    assert sum(n for t, n in by_target.items() if t.startswith("Q_G")) > 0
