"""TAB1 — Table 1: CPU-only processing rate, cubes {~500 MB, ~500 KB, ~4 KB}.

Paper: 12 / 87 / 110 queries per second for the sequential, 4-thread and
8-thread implementations.  Reproduced with the Section-IV system model
on the published performance functions (eq. 7/10 + legacy 1 GB/s) and
the reverse-engineered workload mix (EXPERIMENTS.md).
"""

import pytest

from repro.paper import cpu_only_config, paper_workload
from repro.sim import HybridSystem

PAPER_RATES = {1: 12.0, 4: 87.0, 8: 110.0}
N_QUERIES = 2000


def run_table1(threads: int) -> float:
    config = cpu_only_config(threads=threads, include_32gb=False)
    workload = paper_workload(include_500mb=True, include_32gb=False, seed=42)
    report = HybridSystem(config).run(workload.generate(N_QUERIES))
    return report.queries_per_second


@pytest.mark.experiment("TAB1", "CPU-only rate, cubes 500MB/500KB/4KB")
@pytest.mark.parametrize("threads", [1, 4, 8])
def test_table1_cpu_rate(benchmark, report, threads):
    rate = benchmark.pedantic(run_table1, args=(threads,), rounds=1, iterations=1)
    report.row(f"{threads} thread(s)", f"{PAPER_RATES[threads]:.0f} q/s", f"{rate:.1f} q/s")
    benchmark.extra_info["paper_qps"] = PAPER_RATES[threads]
    benchmark.extra_info["measured_qps"] = rate
    # shape: within 20% of the published rate
    assert rate == pytest.approx(PAPER_RATES[threads], rel=0.20)


@pytest.mark.experiment("TAB1-shape", "Table 1 ordering and speedups")
def test_table1_shape(benchmark, report):
    rates = benchmark.pedantic(
        lambda: {t: run_table1(t) for t in (1, 4, 8)}, rounds=1, iterations=1
    )
    report.row("sequential", "12 q/s", f"{rates[1]:.1f} q/s")
    report.row("OpenMP 4T", "87 q/s", f"{rates[4]:.1f} q/s")
    report.row("OpenMP 8T", "110 q/s", f"{rates[8]:.1f} q/s")
    report.row("4T/1T speedup", f"{87 / 12:.1f}x", f"{rates[4] / rates[1]:.1f}x")
    report.row("8T/1T speedup", f"{110 / 12:.1f}x", f"{rates[8] / rates[1]:.1f}x")
    # the paper's ordering must hold
    assert rates[1] < rates[4] < rates[8]
    # parallelisation wins by a large factor (paper: 7.3x / 9.2x)
    assert rates[4] / rates[1] > 5.0
    assert rates[8] / rates[1] > 7.0
