"""TAB2 — Table 2: CPU-only rate with the ~32 GB cube in the pyramid.

Paper: 9 / 11 queries per second for 4 / 8 OpenMP threads.  The
headline capability claim: *"the CPU partition is now able to process
OLAP cubes of size 32 GB at rate of 11 queries per second"*.
"""

import pytest

from repro.paper import cpu_only_config, paper_workload
from repro.sim import HybridSystem

PAPER_RATES = {4: 9.0, 8: 11.0}
N_QUERIES = 1500


def run_table2(threads: int) -> float:
    config = cpu_only_config(threads=threads, include_32gb=True)
    workload = paper_workload(include_32gb=True, seed=42)
    report = HybridSystem(config).run(workload.generate(N_QUERIES))
    return report.queries_per_second


@pytest.mark.experiment("TAB2", "CPU-only rate incl. ~32 GB cube")
@pytest.mark.parametrize("threads", [4, 8])
def test_table2_cpu_rate(benchmark, report, threads):
    rate = benchmark.pedantic(run_table2, args=(threads,), rounds=1, iterations=1)
    report.row(f"OpenMP {threads}T", f"{PAPER_RATES[threads]:.0f} q/s", f"{rate:.1f} q/s")
    benchmark.extra_info["paper_qps"] = PAPER_RATES[threads]
    benchmark.extra_info["measured_qps"] = rate
    assert rate == pytest.approx(PAPER_RATES[threads], rel=0.20)


@pytest.mark.experiment("TAB2-shape", "Table 2 ordering")
def test_table2_shape(benchmark, report):
    rates = benchmark.pedantic(
        lambda: {t: run_table2(t) for t in (4, 8)}, rounds=1, iterations=1
    )
    report.row("4T", "9 q/s", f"{rates[4]:.1f} q/s")
    report.row("8T", "11 q/s", f"{rates[8]:.1f} q/s")
    assert rates[4] < rates[8]
    # adding the 32 GB cube slows the CPU partition by roughly 10x
    # relative to Table 1 (87 -> 9, 110 -> 11)
    assert rates[8] < 20.0
