"""TAB3 — Table 3: the full hybrid system (CPU + GPU + translation).

Paper: 102 / 206 / 228 queries per second with the sequential / 4T / 8T
CPU implementation — *"Even though the translation slows down the GPU
processing by 7% the entire system is more than 2.3 times faster."*

The rate is measured as the maximum sustainable uniform arrival rate
meeting the 0.5 s time constraint for >= 90 % of queries (the step-5
regime of the Figure-10 scheduler; see repro.sim.capacity).
"""

import functools

import pytest

from repro.paper import TABLE3_TEXT_PROB, paper_system_config, paper_workload
from repro.sim.capacity import max_sustainable_rate

PAPER_RATES = {1: 102.0, 4: 206.0, 8: 228.0}
N_QUERIES = 1500


@functools.lru_cache(maxsize=None)
def run_table3(threads: int) -> float:
    config = paper_system_config(threads=threads, include_32gb=True)
    workload = paper_workload(
        include_32gb=True, text_prob=TABLE3_TEXT_PROB, seed=42
    )
    result = max_sustainable_rate(
        config, workload, n_queries=N_QUERIES, hit_target=0.9, iterations=9
    )
    return result.report.queries_per_second


@pytest.mark.experiment("TAB3", "Hybrid system rate (CPU + GPU + translation)")
@pytest.mark.parametrize("threads", [1, 4, 8])
def test_table3_hybrid_rate(benchmark, report, threads):
    rate = benchmark.pedantic(run_table3, args=(threads,), rounds=1, iterations=1)
    report.row(
        f"hybrid, CPU {threads}T", f"{PAPER_RATES[threads]:.0f} q/s", f"{rate:.1f} q/s"
    )
    benchmark.extra_info["paper_qps"] = PAPER_RATES[threads]
    benchmark.extra_info["measured_qps"] = rate
    # shape tolerance: the hybrid totals depend on queueing behaviour the
    # paper does not fully specify; 25% captures all three columns
    assert rate == pytest.approx(PAPER_RATES[threads], rel=0.25)


@pytest.mark.experiment("TAB3-shape", "Table 3 ordering and hybrid speedup")
def test_table3_shape(benchmark, report):
    rates = benchmark.pedantic(
        lambda: {t: run_table3(t) for t in (1, 4, 8)}, rounds=1, iterations=1
    )
    report.row("sequential CPU", "102 q/s", f"{rates[1]:.1f} q/s")
    report.row("OpenMP 4T", "206 q/s", f"{rates[4]:.1f} q/s")
    report.row("OpenMP 8T", "228 q/s", f"{rates[8]:.1f} q/s")
    report.row("8T/1T improvement", "2.24x", f"{rates[8] / rates[1]:.2f}x")
    # orderings and the >2x headline
    assert rates[1] < rates[4] < rates[8]
    assert rates[8] / rates[1] > 1.7  # paper: "more than 2.3 times faster"
    # hybrid beats both single-resource modes (CPU-only 110, GPU-only 64)
    assert rates[8] > 130.0
