#!/usr/bin/env python
"""Calibration workflow: from benchmarks to scheduler-ready models.

The paper's scheduler runs entirely on *measured* estimation functions
(Section III-G).  This example reproduces the full calibration pipeline
on this machine:

1. sweep cube-processing times (the Figures 4/5 benchmark) and fit the
   eq.-4 piecewise CPU model;
2. sweep the simulated GPU across column fractions and SM counts (the
   Figure-8 benchmark) and fit the eq.-14 lines;
3. time dictionary lookups across sizes (the Figure-9 benchmark) and
   fit the eq.-17 cost;
4. plug all three into a SystemConfig and run a workload — the same
   code path the paper-preset benchmarks use, but on locally measured
   numbers.

Run:  python examples/calibration_workflow.py
"""

import time

import numpy as np

from repro import (
    CubePyramid,
    HybridSystem,
    QueryClass,
    SimulatedGPU,
    SystemConfig,
    TranslationService,
    WorkloadSpec,
    build_dictionaries,
    generate_dataset,
    paper_partition_scheme,
    tpcds_like_schema,
)
from repro.core.calibration import fit_dict_cost, fit_gpu_timing, fit_piecewise_cpu
from repro.gpu.timing import BandwidthTiming
from repro.olap.bandwidth import run_bandwidth_sweep
from repro.query.model import Condition, Query, decompose
from repro.units import GB


def calibrate_cpu():
    print("== 1. CPU model (Figures 4/5 pipeline) ==")
    sweep = run_bandwidth_sweep(
        sizes_mb=(1, 2, 4, 8, 16, 32, 64, 128), thread_counts=(1,), repeats=3
    )
    model = fit_piecewise_cpu(
        sweep.sizes_mb(1), sweep.times(1), breakpoint_mb=16.0, threads=1
    )
    print(f"  f_A: {model.model.below}")
    print(f"  f_B: {model.model.above}")
    print(f"  T_CPU(64 MB) = {model.time(64.0) * 1e3:.2f} ms (measured fit)")
    return model


def calibrate_gpu(table, schema):
    print("\n== 2. GPU model (Figure 8 pipeline) ==")
    device = SimulatedGPU(
        global_memory_bytes=GB,
        timing=BandwidthTiming(table_nbytes=table.nbytes, launch_overhead=1e-3),
    )
    device.load_table(table)
    dims = schema.dimensions
    measurements = {}
    for n_sm in (1, 2, 4):
        fracs, times = [], []
        conds = []
        for dim in dims:
            conds.append(Condition(dim.name, 1, lo=0, hi=2))
            for n_meas in (1, 2, 3):
                q = Query(
                    conditions=tuple(conds), measures=tuple(schema.measures[:n_meas])
                )
                d = decompose(q, schema.hierarchies)
                ex = device.execute(d, n_sm)
                fracs.append(ex.column_fraction)
                times.append(ex.simulated_time)
        measurements[n_sm] = (fracs, times)
    timing = fit_gpu_timing(measurements)
    for n_sm in (1, 2, 4):
        a, b = timing.coefficients[n_sm]
        print(f"  P_GPU|{n_sm}SM = {a:.5f} * (C/C_tot) + {b:.5f}")
    return device, timing


def calibrate_dictionaries(dataset):
    print("\n== 3. dictionary model (Figure 9 pipeline) ==")
    from repro.text.dictionary import ColumnDictionary
    from repro.relational.generator import make_vocabulary

    rng = np.random.default_rng(3)
    lengths, times = [], []
    for size in (1_000, 2_000, 4_000, 8_000):
        vocab = make_vocabulary(size, rng)
        d = ColumnDictionary("cal", vocab, backend="linear")
        targets = [vocab[int(i)] for i in rng.integers(0, size, 50)]
        start = time.perf_counter()
        for t in targets:
            d.encode(t)
        lengths.append(size)
        times.append((time.perf_counter() - start) / 50)
    model = fit_dict_cost(lengths, times)
    print(f"  P_DICT = {model.cost_per_entry * 1e6:.4f} us * D_L "
          "(paper: 0.0138 us on a 2010 Xeon)")
    return model


def main() -> None:
    schema = tpcds_like_schema(scale=0.5)
    dataset = generate_dataset(schema, num_rows=50_000, seed=13)
    table = dataset.table

    cpu_model = calibrate_cpu()
    device, gpu_timing = calibrate_gpu(table, schema)
    dict_model = calibrate_dictionaries(dataset)

    print("\n== 4. run the system on the locally calibrated models ==")
    pyramid = CubePyramid.from_fact_table(table, "sales_price", [0, 1, 2])
    translator = TranslationService(
        build_dictionaries(dataset.vocabularies), schema.hierarchies
    )
    config = SystemConfig(
        cpu_model=cpu_model,
        pyramid=pyramid,
        device=device,
        scheme=paper_partition_scheme(),
        dict_model=dict_model,
        translation_service=translator,
        time_constraint=0.25,
    )
    workload = WorkloadSpec(
        schema.dimensions,
        [
            QueryClass("small", 0.7, resolution=1, coverage=(0.1, 0.4)),
            QueryClass("fine", 0.3, resolution=3, coverage=(0.3, 0.9),
                       dims_constrained=(1, 2), text_prob=0.3),
        ],
        measures=("sales_price",),
        text_levels=list(schema.text_levels),
        vocabularies=dataset.vocabularies,
        seed=17,
    )
    report = HybridSystem(config).run(workload.generate(400))
    print(report.summary())


if __name__ == "__main__":
    main()
