#!/usr/bin/env python
"""Building the full cube three ways — and checking they agree.

Mirrors tutorial §2b ("Building cubes three ways"): construct a small
TPC-DS-like fact table, build the full cube with the array-based, BUC
and PipeSort algorithms, cross-check every cell against the brute-force
reference, then show the iceberg variant and the PipeSort planner.

Run:  python examples/cube_construction.py
"""

import time

import numpy as np

from repro import generate_dataset, tpcds_like_schema
from repro.olap.buildalgs import (
    array_based_cube,
    buc_cube,
    full_cube_reference,
    pipesort_cube,
    plan_pipelines,
)


def main() -> None:
    table = generate_dataset(tpcds_like_schema(scale=0.3), num_rows=2_000, seed=17).table
    resolutions = {"date": 1, "store": 1, "item": 1}  # quarter / state / class
    print(f"fact table: {table}")
    print(f"grouping at: {resolutions}\n")

    # -- 1. three algorithms, one answer ---------------------------------
    reference = full_cube_reference(table, "quantity", resolutions)
    print("== full cube: 3 algorithms vs the brute-force reference ==")
    for build in (array_based_cube, buc_cube, pipesort_cube):
        start = time.perf_counter()
        cube = build(table, "quantity", resolutions)
        elapsed = time.perf_counter() - start

        assert set(cube) == set(reference)              # same 2^3 cuboids
        for cuboid, cells in reference.items():         # same cells, same sums
            assert cells.keys() == cube[cuboid].keys()
            assert all(np.isclose(cube[cuboid][k], v) for k, v in cells.items())
        cells_total = sum(len(c) for c in cube.values())
        print(f"  {build.__name__:<18s} {cells_total:>5d} cells in {elapsed * 1e3:6.1f} ms"
              "   (matches reference cell-for-cell)")

    grand_total = cube[frozenset()][()]
    assert np.isclose(grand_total, table.column("quantity").sum())
    print(f"  grand total (apex cuboid): {grand_total:,.0f}\n")

    # -- 2. iceberg cubes: only the well-supported cells ------------------
    print("== iceberg: cells with >= k supporting rows ==")
    for k in (1, 5, 20):
        iceberg = buc_cube(table, "quantity", resolutions, min_support=k)
        cells_total = sum(len(c) for c in iceberg.values())
        print(f"  min_support={k:<3d} -> {cells_total:>5d} cells")
    print()

    # -- 3. the PipeSort planner: a minimal lattice cover ------------------
    print("== plan_pipelines: minimum prefix-chain cover of the lattice ==")
    for order in plan_pipelines(sorted(resolutions)):
        prefixes = " -> ".join(
            "{" + ",".join(order[:n]) + "}" for n in range(len(order) + 1)
        )
        print(f"  sort by {order}: computes {prefixes}")
    print("  (3 pipelines = C(3,1), covering all 8 cuboids)")


if __name__ == "__main__":
    main()
