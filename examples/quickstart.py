#!/usr/bin/env python
"""Quickstart: build a hybrid OLAP system end to end and run queries.

Walks through every subsystem on laptop-scale data:

1. generate a TPC-DS-flavoured fact table with string columns;
2. pre-calculate a multi-resolution cube pyramid (the CPU side);
3. load the table onto the simulated GPU and build the dictionaries;
4. answer the same query on every path and check they agree;
5. run a mixed workload through the Figure-10 scheduler and print the
   system report.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    CubePyramid,
    HybridSystem,
    QueryClass,
    SimulatedGPU,
    SystemConfig,
    TranslationService,
    WorkloadSpec,
    XEON_X5667_8T,
    build_dictionaries,
    generate_dataset,
    paper_partition_scheme,
    parse_query,
    tpcds_like_schema,
    TESLA_C2070_TIMING,
)
from repro.units import GB, fmt_bytes


def main() -> None:
    # 1. data -------------------------------------------------------------
    schema = tpcds_like_schema(scale=0.5)
    dataset = generate_dataset(schema, num_rows=50_000, seed=7)
    table = dataset.table
    print(f"fact table: {table}")

    # 2. the CPU side: pre-calculated cube pyramid ------------------------
    pyramid = CubePyramid.from_fact_table(table, "sales_price", [0, 1, 2])
    print(f"pyramid:    {pyramid}")
    print(f"            total footprint {fmt_bytes(pyramid.total_nbytes)}")

    # 3. the GPU side: resident table + per-column dictionaries -----------
    device = SimulatedGPU(global_memory_bytes=GB, timing=TESLA_C2070_TIMING)
    device.load_table(table)
    dictionaries = build_dictionaries(dataset.vocabularies, backend="hash")
    translator = TranslationService(dictionaries, schema.hierarchies)
    print(f"device:     {device}")
    for name, d in list(dictionaries.items())[:2]:
        print(f"dictionary: {d}")

    # 4. one query, three answers ----------------------------------------
    city = dataset.vocabularies["store__city"][10].replace("'", r"\'")
    text = (
        "SELECT sum(sales_price) "
        f"WHERE date.quarter IN [2, 10) AND store.city = '{city}'"
    )
    query = parse_query(text, schema.hierarchies)
    print(f"\nquery: {text}")

    translated = translator.translate(query)
    print(f"  translated {translated.parameters_translated} text parameter(s) "
          f"(eq.-18 bound: {translated.estimated_time * 1e6:.1f} us)")

    reference = table.execute(translated.query).value()
    gpu = device.execute_query(translated.query, n_sm=4)
    cube = CubePyramid.from_fact_table(table, "sales_price", [2]).answer(
        translated.query
    )
    print(f"  reference scan : {reference:,.2f}")
    print(f"  GPU (4 SMs)    : {gpu.value:,.2f}  "
          f"(simulated {gpu.simulated_time * 1e3:.2f} ms)")
    print(f"  CPU cube       : {cube:,.2f}")
    assert np.isclose(reference, gpu.value) and np.isclose(reference, cube)

    # 5. a workload through the Figure-10 scheduler -----------------------
    config = SystemConfig(
        cpu_model=XEON_X5667_8T.with_overhead(0.002),
        pyramid=pyramid,
        device=device,
        scheme=paper_partition_scheme(),
        translation_service=translator,
        time_constraint=0.5,
    )
    workload = WorkloadSpec(
        schema.dimensions,
        [
            QueryClass("small", 0.6, resolution=1, coverage=(0.1, 0.5)),
            QueryClass("mid", 0.25, resolution=2, dims_constrained=(1, 2),
                       coverage=(0.5, 1.0), text_prob=0.5),
            QueryClass("fine", 0.15, resolution=3, coverage=(0.2, 0.8)),
        ],
        measures=("sales_price",),
        text_levels=list(schema.text_levels),
        vocabularies=dataset.vocabularies,
        seed=21,
    )
    report = HybridSystem(config).run(workload.generate(500))
    print("\nsystem report (500 queries, closed loop):")
    print(report.summary())


if __name__ == "__main__":
    main()
