#!/usr/bin/env python
"""Retail analytics scenario: the workload the paper's intro motivates.

A business-intelligence session over a retail sales table: dashboard
roll-ups, drill-downs along the time hierarchy, string-filtered
questions ("how did brand X do in city Y?"), and a cube-construction
step comparing the three full-cube algorithms.

Run:  python examples/retail_analytics.py
"""

import time

import numpy as np

from repro import (
    CubePyramid,
    SimulatedGPU,
    TranslationService,
    build_dictionaries,
    generate_dataset,
    parse_query,
    tpcds_like_schema,
)
from repro.olap.buildalgs import array_based_cube, buc_cube, pipesort_cube
from repro.units import GB


def main() -> None:
    schema = tpcds_like_schema(scale=0.5)
    dataset = generate_dataset(schema, num_rows=100_000, seed=2026)
    table = dataset.table
    hierarchies = schema.hierarchies

    pyramid = CubePyramid.from_fact_table(table, "sales_price", [0, 1, 2])
    device = SimulatedGPU(global_memory_bytes=GB)
    device.load_table(table)
    translator = TranslationService(
        build_dictionaries(dataset.vocabularies), hierarchies
    )

    # -- 1. dashboard roll-ups (coarse, cube-answered) --------------------
    print("== dashboard: revenue by year-level slices ==")
    for year in range(min(4, schema.dimension("date").cardinality(0))):
        q = parse_query(
            f"SELECT sum(sales_price) WHERE date.year = {year}", hierarchies
        )
        level = pyramid.select_level(q)
        print(
            f"  year {year}: {pyramid.answer(q):>14,.2f}   "
            f"(cube at resolutions {level.resolutions}, "
            f"sub-cube {pyramid.subcube_size_mb(q) * 1024:.1f} KB)"
        )

    # -- 2. drill-down along the time hierarchy ---------------------------
    print("\n== drill-down: year 1 -> quarters -> months ==")
    for res, level_name, lo, hi in [(1, "quarter", 4, 8), (2, "month", 12, 24)]:
        q = parse_query(
            f"SELECT sum(sales_price) WHERE date.{level_name} IN [{lo}, {hi})",
            hierarchies,
        )
        print(f"  {level_name}s [{lo}, {hi}): {pyramid.answer(q):>14,.2f}")

    # -- 3. string-filtered questions (translation + GPU) -----------------
    print("\n== string-filtered: brand performance in a city ==")
    # pick a brand/city pair that co-occurs in the data (row 0's values)
    brand_code = int(table.column("item__brand")[0])
    city_code = int(table.column("store__city")[0])
    brand = dataset.raw_value("item__brand", brand_code).replace("'", r"\'")
    city = dataset.raw_value("store__city", city_code).replace("'", r"\'")
    q = parse_query(
        "SELECT sum(net_profit) "
        f"WHERE item.brand = '{brand}' AND store.city = '{city}'",
        hierarchies,
    )
    result = translator.translate(q)
    execution = device.execute_query(result.query, n_sm=4)
    print(f"  {brand!r} in {city!r}: net profit {execution.value:,.2f}")
    print(
        f"  translated {result.parameters_translated} literals; "
        f"GPU scan of {execution.column_fraction:.0%} of columns in "
        f"{execution.simulated_time * 1e3:.2f} ms (simulated)"
    )
    for column, token, code in result.lookups:
        print(f"    {column}: {token!r} -> code {code}")

    # -- 4. full-cube construction: three algorithms, one answer ----------
    print("\n== full cube at (year, region, category): 3 algorithms ==")
    resolutions = {"date": 0, "store": 0, "item": 0}
    results = {}
    for fn in (array_based_cube, buc_cube, pipesort_cube):
        start = time.perf_counter()
        cube = fn(table, "sales_price", resolutions)
        elapsed = time.perf_counter() - start
        cells = sum(len(c) for c in cube.values())
        results[fn.__name__] = cube
        print(f"  {fn.__name__:<18s} {cells:>6d} cells in {elapsed * 1e3:7.1f} ms")
    ref = results["array_based_cube"]
    for name, cube in results.items():
        for cuboid in ref:
            assert cube[cuboid].keys() == ref[cuboid].keys()
            for k in ref[cuboid]:
                assert np.isclose(cube[cuboid][k], ref[cuboid][k])
    print("  all three algorithms agree cell-for-cell")

    # -- 5. iceberg: the heavy hitters only --------------------------------
    heavy = buc_cube(table, "sales_price", resolutions, min_support=2_000)
    top = sorted(
        heavy[frozenset({"item"})].items(), key=lambda kv: -kv[1]
    )[:3]
    print("\n== iceberg (support >= 2000 rows): top categories ==")
    for (code,), revenue in top:
        print(f"  item category {code}: {revenue:,.2f}")

    # -- 6. grouped queries: the same answer on every path ------------------
    from repro.groupby import groupby_from_table

    gq = parse_query(
        "SELECT sum(sales_price) BY date.quarter WHERE store.region IN [0, 4)",
        hierarchies,
    )
    ref = groupby_from_table(table, gq)
    via_cube = pyramid.answer_grouped(gq)
    via_gpu, gpu_time = device.execute_groupby(gq, n_sm=4)
    print("\n== grouped: revenue BY quarter (regions 0-3) ==")
    for (quarter,), revenue in sorted(ref.cells.items())[:6]:
        assert np.isclose(revenue, via_cube.cells[(quarter,)])
        assert np.isclose(revenue, via_gpu.cells[(quarter,)])
        print(f"  quarter {quarter:>2d}: {revenue:>14,.2f}")
    print(f"  ({ref.num_groups} groups; cube, GPU and reference scan agree; "
          f"GPU {gpu_time * 1e3:.2f} ms simulated)")


if __name__ == "__main__":
    main()
