#!/usr/bin/env python
"""Rollup cache tier: watch the hit rate climb as cuboids materialise.

A skewed BI dashboard workload asks the same few query *shapes* over
and over with different parameter ranges.  This example:

1. builds the laptop-scale world (fact table, pyramid, simulated GPU);
2. serves three rounds of a skewed workload through a live
   :class:`~repro.serve.ServeEngine` with a :class:`RollupRouter` in
   front — the catalog starts empty, so round one is all misses;
3. calls :meth:`RollupRouter.maintain` between rounds, letting the
   :class:`AdmissionPolicy` materialise the hottest shapes greedily
   under a byte budget;
4. prints the per-round hit rate plus the live metrics counters, and
   finishes with the seventh validation family
   (:func:`~repro.sim.validate.validate_rollup`) auditing the run.

Run:  PYTHONPATH=src python examples/rollup_cache.py
"""

import numpy as np

from repro import (
    CubePyramid,
    SimulatedGPU,
    SystemConfig,
    TranslationService,
    XEON_X5667_8T,
    build_dictionaries,
    generate_dataset,
    paper_partition_scheme,
    tpcds_like_schema,
    TESLA_C2070_TIMING,
)
from repro.metrics import MetricsRegistry
from repro.olap import AdmissionPolicy, RollupCatalog, RollupRouter
from repro.query.model import Condition, Query
from repro.serve import MaterialisedExecutor, ServeEngine
from repro.sim.validate import validate_report, validate_rollup
from repro.units import GB, fmt_bytes

ROUNDS = 3
QUERIES_PER_ROUND = 120
#: the "dashboard tiles": 90% of traffic reuses these three shapes
HOT_SHAPES = [
    (("date",), (1,)),
    (("store",), (1,)),
    (("date", "store"), (1, 1)),
]


def make_queries(schema, rng):
    """One round of skewed traffic: 90% hot shapes, 10% cold res-3."""
    dims = {d.name: d for d in schema.dimensions}
    queries = []
    for _ in range(QUERIES_PER_ROUND):
        if rng.random() < 0.9:
            names, resolutions = HOT_SHAPES[rng.integers(len(HOT_SHAPES))]
        else:
            names, resolutions = (rng.choice(list(dims)),), (3,)
        conditions = []
        for name, res in zip(names, resolutions):
            card = dims[name].cardinality(res)
            lo = int(rng.integers(0, card))
            hi = int(rng.integers(lo + 1, card + 1))
            conditions.append(Condition(name, res, lo=lo, hi=hi))
        queries.append(
            Query(conditions=tuple(conditions), measures=("sales_price",))
        )
    return queries


def main() -> None:
    # 1. the world --------------------------------------------------------
    schema = tpcds_like_schema(scale=0.5)
    dataset = generate_dataset(schema, num_rows=20_000, seed=7)
    pyramid = CubePyramid.from_fact_table(
        dataset.table, "sales_price", [0, 1, 2]
    )
    device = SimulatedGPU(global_memory_bytes=GB, timing=TESLA_C2070_TIMING)
    device.load_table(dataset.table)
    translator = TranslationService(
        build_dictionaries(dataset.vocabularies), schema.hierarchies
    )
    config = SystemConfig(
        cpu_model=XEON_X5667_8T.with_overhead(0.002),
        pyramid=pyramid,
        device=device,
        scheme=paper_partition_scheme(),
        translation_service=translator,
    )

    # 2. the cache tier, empty at first -----------------------------------
    catalog = RollupCatalog(dataset.table, "sales_price")
    router = RollupRouter(
        catalog, policy=AdmissionPolicy(byte_budget=32_000_000)
    )
    registry = MetricsRegistry()
    engine = ServeEngine(
        config,
        executor=MaterialisedExecutor(config),
        metrics=registry,
        rollup=router,
    )

    rng = np.random.default_rng(2012)
    print(f"world: {dataset.table}, catalog budget "
          f"{fmt_bytes(router.policy.byte_budget)}\n")
    with engine:
        for round_no in range(1, ROUNDS + 1):
            before = router.hits
            for query in make_queries(schema, rng):
                outcome = engine.submit(query)
                if outcome.accepted and not outcome.cache_hit:
                    outcome.ticket.wait(timeout=30.0)
            round_hits = router.hits - before
            print(
                f"round {round_no}: {round_hits:3d}/{QUERIES_PER_ROUND} "
                f"answered from rollups "
                f"(cumulative hit rate {router.hit_rate:5.1%}, "
                f"{len(catalog)} cuboids, {fmt_bytes(catalog.total_nbytes)})"
            )
            # 3. between rounds: materialise what the policy recommends
            built = router.maintain()
            if built:
                print(f"         materialised {built} cuboid(s): "
                      + ", ".join(
                          "×".join(c.spec.dims) for c in catalog.cuboids()
                      ))

    # 4. the audit trail ---------------------------------------------------
    report = engine.report()
    snapshot = registry.collect(engine.elapsed)
    print(f"\ncache-served {report.cache_hit_count} of "
          f"{report.cache_hit_count + len(report.records)} answers "
          f"({report.effective_queries_per_second:.0f} effective q/s)")
    print("metrics:",
          f"hits={snapshot.family('repro_rollup_hits_total').total():.0f}",
          f"misses={snapshot.family('repro_rollup_misses_total').total():.0f}",
          f"materializations="
          f"{snapshot.family('repro_rollup_materializations_total').total():.0f}")
    result = validate_report(report, require_drained=True)
    rollup_result = validate_rollup(report, snapshot=snapshot)
    print(f"validate_report: ok={result.ok} "
          f"(families: {', '.join(result.checked)})")
    print(f"validate_rollup: ok={rollup_result.ok}")
    if not (result.ok and rollup_result.ok):
        raise SystemExit(1)
    if router.hit_rate == 0.0:
        raise SystemExit("expected a nonzero hit rate after maintenance")


if __name__ == "__main__":
    main()
