#!/usr/bin/env python
"""Scheduler comparison at paper scale (the Section-IV system model).

Runs the Table-3 hybrid workload through the Figure-10 scheduler and
the MET / MCT / round-robin baselines at increasing offered load, and
prints throughput + deadline behaviour per policy — the ablation behind
benchmarks/test_ablation_schedulers.py as an interactive script.

Run:  python examples/scheduler_comparison.py
"""

from repro.core.baselines import MCTScheduler, METScheduler, RoundRobinScheduler
from repro.core.scheduler import HybridScheduler
from repro.paper import TABLE3_TEXT_PROB, paper_system_config, paper_workload
from repro.query.workload import ArrivalProcess
from repro.sim import HybridSystem

POLICIES = {
    "figure10 (paper)": HybridScheduler,
    "MCT": MCTScheduler,
    "MET": METScheduler,
    "round-robin": RoundRobinScheduler,
}

LOADS = (60.0, 120.0, 180.0, 240.0)
N_QUERIES = 1200


def main() -> None:
    workload = paper_workload(include_32gb=True, text_prob=TABLE3_TEXT_PROB, seed=33)
    print(
        "Table-3 mix (small/mid/fine + customer-name predicates), 8T CPU, "
        "C2070 partitions 1/1/2/2/4/4, T_C = 0.5 s\n"
    )
    header = f"{'policy':<18s}" + "".join(f"{f'{int(l)} q/s':>22s}" for l in LOADS)
    print(header)
    print("-" * len(header))
    for name, factory in POLICIES.items():
        cells = []
        for load in LOADS:
            config = paper_system_config(
                threads=8, include_32gb=True, scheduler_factory=factory
            )
            stream = workload.generate(
                N_QUERIES, ArrivalProcess("uniform", rate=load)
            )
            report = HybridSystem(config).run(stream)
            cells.append(
                f"{report.queries_per_second:6.0f} q/s {100 * report.deadline_hit_rate:4.0f}%"
            )
        print(f"{name:<18s}" + "".join(f"{c:>22s}" for c in cells))

    print(
        "\nReading: each cell is achieved-throughput / deadline-hit-rate."
        "\n- figure10 and MCT track the offered load while it is sustainable;"
        "\n- MET piles GPU-bound queries onto one partition and collapses;"
        "\n- round-robin wastes CPU capacity on 32 GB-class queries."
    )

    # a Gantt of the paper's scheduler at moderate load: watch the
    # slowest-first rule fill Q_G1 before Q_G6 touches anything
    print("\n== figure10 at 150 q/s: partition timelines ==")
    config = paper_system_config(threads=8, include_32gb=True)
    stream = workload.generate(400, ArrivalProcess("uniform", rate=150.0))
    report = HybridSystem(config).run(stream)
    print(report.gantt(width=64))

    # feedback ablation: noisy service times with and without correction
    print("\n== estimate-error feedback (Section III-G, last paragraph) ==")
    for gain, label in [(1.0, "feedback ON (paper)"), (0.0, "feedback OFF")]:
        config = paper_system_config(
            threads=8, include_32gb=True, feedback_gain=gain, noise_sigma=0.4
        )
        stream = workload.generate(N_QUERIES, ArrivalProcess("uniform", rate=170.0))
        report = HybridSystem(config).run(stream)
        print(
            f"  {label:<22s} {report.queries_per_second:6.1f} q/s, "
            f"deadline hits {100 * report.deadline_hit_rate:5.1f} %"
        )


if __name__ == "__main__":
    main()
