#!/usr/bin/env python
"""Text analytics scenario: from free text to a translated GPU query.

The paper's dictionary machinery (Section III-F) and its Aho-Corasick
lineage (Section II-E) enable a natural front-end: scan free-form
question text for dictionary terms, infer the columns they belong to,
assemble the structured query, translate it, and run it on the GPU.
This example walks that whole pipeline and then contrasts the
dictionary backends' search costs on the same lookups.

Run:  python examples/text_analytics.py
"""

import time

import numpy as np

from repro import (
    SimulatedGPU,
    TranslationService,
    build_dictionaries,
    generate_dataset,
    tpcds_like_schema,
)
from repro.query.model import Condition, Query
from repro.units import GB


def main() -> None:
    schema = tpcds_like_schema(scale=0.5)
    dataset = generate_dataset(schema, num_rows=80_000, seed=41)
    table = dataset.table

    dictionaries = build_dictionaries(dataset.vocabularies, backend="hash")
    translator = TranslationService(dictionaries, schema.hierarchies)
    device = SimulatedGPU(global_memory_bytes=GB)
    device.load_table(table)

    # -- 1. free-text scanning with the Aho-Corasick automaton ------------
    city = dataset.raw_value("store__city", int(table.column("store__city")[42]))
    brand = dataset.raw_value("item__brand", int(table.column("item__brand")[42]))
    question = f"how much profit did {brand} make in {city} overall?"
    print(f"question: {question!r}\n")

    hits = translator.scan_text(question)
    print("dictionary terms found in the text:")
    seen: dict[str, tuple[str, int]] = {}
    for column, match in hits:
        print(f"  {match.keyword!r} -> column {column} "
              f"(chars {match.start}-{match.end})")
        code = dictionaries[column].encode(match.keyword)
        seen[column] = (match.keyword, code)

    # -- 2. assemble + translate the structured query ----------------------
    conditions = []
    for column, (keyword, _) in seen.items():
        dim, level = column.split("__")
        resolution = schema.dimension(dim).resolution_of(level)
        conditions.append(Condition(dim, resolution, text_values=(keyword,)))
    query = Query(conditions=tuple(conditions), measures=("net_profit",), agg="sum")
    translated = translator.translate(query)
    print(f"\nstructured query: {query}")
    print("translated codes: "
          f"{[(c, t, code) for c, t, code in translated.lookups]}")

    # -- 3. run on the GPU --------------------------------------------------
    execution = device.execute_query(translated.query, n_sm=4)
    reference = table.execute(translated.query).value()
    print(f"\nGPU answer  : {execution.value:,.2f} "
          f"({execution.simulated_time * 1e3:.2f} ms simulated, 4 SMs)")
    print(f"reference   : {reference:,.2f}")
    assert np.isclose(execution.value, reference)

    # -- 4. backend shoot-out on the same lookups --------------------------
    print("\ndictionary backend costs (10k lookups into item__item, "
          f"D_L={len(dataset.vocabularies['item__item'])}):")
    vocab = dataset.vocabularies["item__item"]
    rng = np.random.default_rng(4)
    targets = [vocab[int(i)] for i in rng.integers(0, len(vocab), 10_000)]
    for backend in ("linear", "sorted", "trie", "hash"):
        d = build_dictionaries({"item__item": vocab}, backend=backend)["item__item"]
        start = time.perf_counter()
        for t in targets:
            d.encode(t)
        elapsed = time.perf_counter() - start
        print(f"  {backend:<8s}: {elapsed * 1e3:8.1f} ms "
              f"({d.probes / len(targets):8.1f} probes/lookup)")


if __name__ == "__main__":
    main()
