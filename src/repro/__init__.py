"""repro — reproduction of *Task Scheduling for GPU Accelerated Hybrid
OLAP Systems with Multi-core Support and Text-to-Integer Translation*
(Malik, Riha, Shea & El-Ghazawi, 2012).

The package implements the full hybrid OLAP system the paper describes:

* :mod:`repro.olap` — multi-resolution MOLAP cubes (the CPU side);
* :mod:`repro.relational` — columnar fact tables (the GPU side's data);
* :mod:`repro.gpu` — a simulated Fermi-class device with SM partitions;
* :mod:`repro.text` — per-column dictionaries and query translation;
* :mod:`repro.query` — the query algebra, parser and workloads;
* :mod:`repro.core` — performance models, calibration and the Figure-10
  scheduling algorithm (the paper's contribution);
* :mod:`repro.sim` — the discrete-event system model used for the
  paper's evaluation (Tables 1-3).

Quickstart::

    from repro import (
        generate_dataset, CubePyramid, SimulatedGPU, paper_partition_scheme,
        HybridSystem, SystemConfig, XEON_X5667_8T, WorkloadSpec, QueryClass,
    )

See ``examples/quickstart.py`` for a complete runnable walkthrough.
"""

from repro.errors import ReproError
from repro.units import KB, MB, GB, Rate

from repro.olap import (
    DimensionHierarchy,
    Level,
    OLAPCube,
    AggregateOp,
    CubePyramid,
    PyramidLevel,
    PyramidGroup,
    subcube_size_mb,
)
from repro.relational import (
    TableSchema,
    FactTable,
    SyntheticDataset,
    generate_dataset,
    tpcds_like_schema,
)
from repro.text import (
    ColumnDictionary,
    build_dictionaries,
    TranslationService,
    AhoCorasick,
)
from repro.query import (
    Condition,
    Query,
    parse_query,
    WorkloadSpec,
    QueryStream,
    ArrivalProcess,
)
from repro.query.workload import QueryClass
from repro.gpu import (
    SimulatedGPU,
    TableDescriptor,
    PartitionScheme,
    paper_partition_scheme,
    monolithic_scheme,
    LinearColumnTiming,
    BandwidthTiming,
    TESLA_C2070_TIMING,
)
from repro.core import (
    CPUPerfModel,
    DictPerfModel,
    XEON_X5667_4T,
    XEON_X5667_8T,
    XEON_X5667_1T_LEGACY,
    PAPER_DICT_MODEL,
    HybridScheduler,
    PerformanceEstimator,
    FeedbackController,
)
from repro.sim import HybridSystem, SystemConfig, SystemReport
from repro.groupby import (
    GroupedResult,
    groupby_from_table,
    groupby_with_cube,
)
from repro.io import (
    save_table,
    load_table,
    save_dataset,
    load_dataset,
    save_pyramid,
    load_pyramid,
)

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "KB",
    "MB",
    "GB",
    "Rate",
    "DimensionHierarchy",
    "Level",
    "OLAPCube",
    "AggregateOp",
    "CubePyramid",
    "PyramidLevel",
    "PyramidGroup",
    "subcube_size_mb",
    "TableSchema",
    "FactTable",
    "SyntheticDataset",
    "generate_dataset",
    "tpcds_like_schema",
    "ColumnDictionary",
    "build_dictionaries",
    "TranslationService",
    "AhoCorasick",
    "Condition",
    "Query",
    "parse_query",
    "WorkloadSpec",
    "QueryClass",
    "QueryStream",
    "ArrivalProcess",
    "SimulatedGPU",
    "TableDescriptor",
    "PartitionScheme",
    "paper_partition_scheme",
    "monolithic_scheme",
    "LinearColumnTiming",
    "BandwidthTiming",
    "TESLA_C2070_TIMING",
    "CPUPerfModel",
    "DictPerfModel",
    "XEON_X5667_4T",
    "XEON_X5667_8T",
    "XEON_X5667_1T_LEGACY",
    "PAPER_DICT_MODEL",
    "HybridScheduler",
    "PerformanceEstimator",
    "FeedbackController",
    "HybridSystem",
    "SystemConfig",
    "SystemReport",
    "GroupedResult",
    "groupby_from_table",
    "groupby_with_cube",
    "save_table",
    "load_table",
    "save_dataset",
    "load_dataset",
    "save_pyramid",
    "load_pyramid",
    "__version__",
]
