"""Online adaptation: model recalibration + capacity control.

The paper's scheduler trusts calibrated-once performance models and a
fixed capacity layout.  This package makes both *live*: an online
recalibrator that re-fits the models from realised latencies (guarded
by sample-count, fit-quality and max-step clamps), and an SLO-driven
capacity controller that can tighten admission, resize the translation
pool and re-split the GPU partitions — each attached to a host through
the same None-guarded observer pattern as tracing and metrics.

The deterministic scenario harness that proves the adaptive claims
lives in :mod:`repro.adapt.scenario` / :mod:`repro.adapt.scenarios`.
"""

from repro.adapt.controller import (
    AdaptiveCapacityController,
    ControllerLimits,
    ReconfigRecord,
)
from repro.adapt.plane import AdaptivePlane, AdaptReport, default_scheme_ladder
from repro.adapt.recalibrate import ModelEpoch, OnlineRecalibrator, RecalGuards

__all__ = [
    "AdaptivePlane",
    "AdaptReport",
    "AdaptiveCapacityController",
    "ControllerLimits",
    "ModelEpoch",
    "OnlineRecalibrator",
    "RecalGuards",
    "ReconfigRecord",
    "default_scheme_ladder",
]
