"""Adaptive capacity control driven by SLO breach/recover events.

The paper's system has three capacity knobs that are fixed at startup:
the admission-control lateness factor, the translation worker count,
and the GPU partition scheme (2x1 / 2x2 / 2x4 SM classes).  The
:class:`AdaptiveCapacityController` turns them into runtime actuators:
on an SLO *breach* it escalates — tighten admission first (shed
provably-late work, the cheapest lever), then grow the translation
pool, then re-split the GPU to the next scheme in its ladder — and on a
*recover* it walks the same actions back in reverse order.

Every action is bounded by a :class:`ControllerLimits` envelope:

* **cooldown** — at most one action per ``cooldown`` seconds of event
  time, so the controller cannot thrash faster than its own effects
  propagate through the windowed SLO monitor;
* **hysteresis** — de-escalation requires the hit rate to clear the
  target by a margin, so a recovery that barely scrapes the target
  does not immediately undo the action that produced it;
* **hard ranges** — lateness factor and worker counts are clamped, the
  scheme ladder has a last rung, and ``max_reconfigs`` caps the total
  number of actions per run.

Escalations are tracked on a stack; de-escalation pops the most recent
action and restores its recorded ``value_before``, so the controller is
symmetric by construction and :func:`repro.sim.validate.validate_adapt`
can audit the whole history from the :class:`ReconfigRecord` list.

The controller is host-agnostic: it talks to a duck-typed *host* (see
:mod:`repro.adapt.plane`) whose accessors return ``None`` for knobs the
host does not expose — the simulated plane only supports admission
control, the serving engine supports all three.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.errors import SchedulingError
from repro.gpu.partitioning import PartitionScheme

__all__ = ["ControllerLimits", "ReconfigRecord", "AdaptiveCapacityController"]


@dataclass(frozen=True)
class ControllerLimits:
    """Hard envelope for controller actions."""

    min_lateness_factor: float = 0.1
    max_lateness_factor: float = 4.0
    tighten_factor: float = 0.5
    relax_factor: float = 2.0
    min_translation_workers: int = 1
    max_translation_workers: int = 8
    cooldown: float = 5.0
    hysteresis: float = 0.02
    max_reconfigs: int = 32

    def __post_init__(self) -> None:
        if not 0 < self.min_lateness_factor <= self.max_lateness_factor:
            raise SchedulingError(
                "need 0 < min_lateness_factor <= max_lateness_factor, got "
                f"{self.min_lateness_factor}/{self.max_lateness_factor}"
            )
        if not 0.0 < self.tighten_factor < 1.0:
            raise SchedulingError(
                f"tighten_factor must be in (0, 1), got {self.tighten_factor}"
            )
        if self.relax_factor <= 1.0:
            raise SchedulingError(
                f"relax_factor must be > 1, got {self.relax_factor}"
            )
        if not 1 <= self.min_translation_workers <= self.max_translation_workers:
            raise SchedulingError(
                "need 1 <= min_translation_workers <= max_translation_workers"
            )
        if self.cooldown < 0:
            raise SchedulingError(f"cooldown must be >= 0, got {self.cooldown}")
        if self.hysteresis < 0:
            raise SchedulingError(
                f"hysteresis must be >= 0, got {self.hysteresis}"
            )
        if self.max_reconfigs < 0:
            raise SchedulingError(
                f"max_reconfigs must be >= 0, got {self.max_reconfigs}"
            )


@dataclass(frozen=True)
class ReconfigRecord:
    """One applied controller action (the audit trail's unit)."""

    seq: int
    time: float
    action: str  # tighten_admission | grow_translation | resplit_up | reverses
    trigger: str  # "breach" | "recover"
    detail: str
    value_before: float
    value_after: float


#: escalation order (cheapest lever first) and the reverse action names
_ESCALATIONS = ("tighten_admission", "grow_translation", "resplit_up")
_REVERSE = {
    "tighten_admission": "relax_admission",
    "grow_translation": "shrink_translation",
    "resplit_up": "resplit_down",
}


class AdaptiveCapacityController:
    """Breach-driven escalation with stack-symmetric de-escalation.

    Parameters
    ----------
    limits:
        The :class:`ControllerLimits` envelope.
    target:
        The SLO target the hysteresis margin is measured against.
    schemes:
        Partition-scheme ladder, cheapest first; ``resplit_up`` moves
        one rung up, ``resplit_down`` restores the previous rung.  The
        host starts on rung 0 (its configured scheme).

    ``bind(host)`` attaches the actuator surface; the host is duck
    typed with ``lateness() / set_lateness(v)``,
    ``translation_workers() / set_translation_workers(n)`` and
    ``resplit(scheme)``, each reader returning ``None`` when the knob
    is absent.  ``on_reconfig(record)`` is a None-guarded hook the
    adapt plane uses for trace/metrics emission.
    """

    def __init__(
        self,
        limits: ControllerLimits | None = None,
        *,
        target: float = 0.9,
        schemes: Sequence[PartitionScheme] = (),
    ):
        self.limits = limits if limits is not None else ControllerLimits()
        self.target = target
        self.schemes = tuple(schemes)
        self._scheme_idx = 0
        self._host = None
        self._last_action_time = -math.inf
        self._applied: list[ReconfigRecord] = []  # escalation stack
        self.reconfigs: list[ReconfigRecord] = []
        self.on_reconfig = None

    def bind(self, host) -> None:
        self._host = host

    @property
    def applied_depth(self) -> int:
        """Escalations currently in force (not yet unwound)."""
        return len(self._applied)

    # -- event entry point -------------------------------------------------

    def on_slo_event(self, event) -> ReconfigRecord | None:
        """React to one :class:`~repro.metrics.slo.SloEvent`.

        At most one action fires per event, and only outside the
        cooldown window; returns the applied record, if any.
        """
        if self._host is None:
            return None
        if len(self.reconfigs) >= self.limits.max_reconfigs:
            return None
        if event.time - self._last_action_time < self.limits.cooldown:
            return None
        if event.kind == "breach":
            return self._escalate(event)
        if event.kind == "recover":
            if event.hit_rate < self.target + self.limits.hysteresis:
                return None  # inside the hysteresis band: hold position
            return self._deescalate(event)
        return None

    # -- escalation --------------------------------------------------------

    def _escalate(self, event) -> ReconfigRecord | None:
        for action in _ESCALATIONS:
            attempt = getattr(self, f"_try_{action}")
            applied = attempt(event)
            if applied is not None:
                self._applied.append(applied)
                return self._commit(applied)
        return None

    def _try_tighten_admission(self, event) -> ReconfigRecord | None:
        cur = self._host.lateness()
        if cur is None:
            return None
        lim = self.limits
        new = min(
            lim.max_lateness_factor,
            max(lim.min_lateness_factor, cur * lim.tighten_factor),
        )
        if new >= cur:
            return None  # already at (or below) the floor
        self._host.set_lateness(new)
        return ReconfigRecord(
            seq=len(self.reconfigs),
            time=event.time,
            action="tighten_admission",
            trigger="breach",
            detail=f"lateness_factor {cur:g} -> {new:g}",
            value_before=cur,
            value_after=new,
        )

    def _try_grow_translation(self, event) -> ReconfigRecord | None:
        cur = self._host.translation_workers()
        if cur is None:
            return None
        new = min(self.limits.max_translation_workers, cur * 2)
        if new <= cur:
            return None
        self._host.set_translation_workers(new)
        return ReconfigRecord(
            seq=len(self.reconfigs),
            time=event.time,
            action="grow_translation",
            trigger="breach",
            detail=f"translation_workers {cur} -> {new}",
            value_before=cur,
            value_after=new,
        )

    def _try_resplit_up(self, event) -> ReconfigRecord | None:
        nxt = self._scheme_idx + 1
        if nxt >= len(self.schemes) or not self._host.can_resplit():
            return None
        prev = self._scheme_idx
        self._host.resplit(self.schemes[nxt])
        self._scheme_idx = nxt
        return ReconfigRecord(
            seq=len(self.reconfigs),
            time=event.time,
            action="resplit_up",
            trigger="breach",
            detail=f"scheme {self.schemes[prev]} -> {self.schemes[nxt]}",
            value_before=prev,
            value_after=nxt,
        )

    # -- de-escalation -----------------------------------------------------

    def _deescalate(self, event) -> ReconfigRecord | None:
        while self._applied:
            last = self._applied[-1]
            reverse = getattr(self, f"_undo_{last.action}")
            record = reverse(last, event)
            self._applied.pop()
            if record is not None:
                return self._commit(record)
            # the knob disappeared (e.g. a scheme ladder with one rung);
            # fall through and unwind the next escalation instead
        return None

    def _undo_tighten_admission(self, last, event) -> ReconfigRecord | None:
        cur = self._host.lateness()
        if cur is None:
            return None
        lim = self.limits
        restored = min(
            lim.max_lateness_factor,
            max(lim.min_lateness_factor, last.value_before),
        )
        if restored <= cur:
            return None
        self._host.set_lateness(restored)
        return ReconfigRecord(
            seq=len(self.reconfigs),
            time=event.time,
            action="relax_admission",
            trigger="recover",
            detail=f"lateness_factor {cur:g} -> {restored:g}",
            value_before=cur,
            value_after=restored,
        )

    def _undo_grow_translation(self, last, event) -> ReconfigRecord | None:
        cur = self._host.translation_workers()
        if cur is None:
            return None
        restored = max(self.limits.min_translation_workers, int(last.value_before))
        if restored >= cur:
            return None
        self._host.set_translation_workers(restored)
        return ReconfigRecord(
            seq=len(self.reconfigs),
            time=event.time,
            action="shrink_translation",
            trigger="recover",
            detail=f"translation_workers {cur} -> {restored}",
            value_before=cur,
            value_after=restored,
        )

    def _undo_resplit_up(self, last, event) -> ReconfigRecord | None:
        prev = int(last.value_before)
        if prev == self._scheme_idx or not self._host.can_resplit():
            return None
        cur = self._scheme_idx
        self._host.resplit(self.schemes[prev])
        self._scheme_idx = prev
        return ReconfigRecord(
            seq=len(self.reconfigs),
            time=event.time,
            action="resplit_down",
            trigger="recover",
            detail=f"scheme {self.schemes[cur]} -> {self.schemes[prev]}",
            value_before=cur,
            value_after=prev,
        )

    # -- commit ------------------------------------------------------------

    def _commit(self, record: ReconfigRecord) -> ReconfigRecord:
        self.reconfigs.append(record)
        self._last_action_time = record.time
        if self.on_reconfig is not None:
            self.on_reconfig(record)
        return record
