"""The adapt plane: recalibrator + capacity controller behind one facade.

:class:`AdaptivePlane` is the single object a host attaches, exactly
like a trace collector or metrics registry: ``ServeEngine(...,
adapt=plane)`` or ``HybridSystem.run(..., adapt=plane)``.  It claims
the third (``adapt_observer``) scheduler/feedback observer slots, runs
its own windowed :class:`~repro.metrics.slo.SloMonitor`, and wires the
two adaptive mechanisms together:

* the :class:`~repro.adapt.recalibrate.OnlineRecalibrator` listens to
  estimate/decision/feedback events and hot-swaps refit model bundles
  into the estimator;
* the :class:`~repro.adapt.controller.AdaptiveCapacityController`
  listens to SLO breach/recover events and drives the host's capacity
  actuators.

Lock ordering
-------------
On the serving engine every plane entry point already runs under the
engine-wide ``EngineState.cond`` lock: scheduler hooks fire inside
``submit``, feedback hooks inside pool ``on_done`` callbacks, and
``on_outcome``/``tick`` at the engine's completion/sampling sites.
Actuator calls (``adapt_resplit``, ``adapt_resize_translation``,
lateness mutation) take the same re-entrant lock, so an action applied
from inside an SLO event callback nests cleanly and nothing in this
package needs a lock of its own.  The simulated plane is
single-threaded, where the same code is trivially safe.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import MappingProxyType
from typing import Mapping

from repro.adapt.controller import (
    AdaptiveCapacityController,
    ControllerLimits,
    ReconfigRecord,
)
from repro.adapt.recalibrate import ModelEpoch, OnlineRecalibrator, RecalGuards
from repro.errors import SchedulingError
from repro.gpu.partitioning import PartitionScheme, paper_partition_scheme, uniform_scheme
from repro.metrics.slo import SloEvent, SloMonitor

__all__ = ["AdaptivePlane", "AdaptReport", "default_scheme_ladder"]


def default_scheme_ladder() -> tuple[PartitionScheme, ...]:
    """The built-in re-split ladder: the paper's 2x1/2x2/2x4 mixed
    scheme, then a uniform seven-partition 2-SM split (more service
    stations for the same 14 SMs — higher throughput under a flood of
    small queries, at the cost of the large 4-SM express lanes)."""
    return (paper_partition_scheme(), uniform_scheme(7, 2))


@dataclass(frozen=True)
class AdaptReport:
    """Frozen audit surface of one adaptive run.

    Everything :func:`repro.sim.validate.validate_adapt` needs to
    reconcile the run: the guard/limit envelopes the plane ran under,
    the full epoch and reconfiguration histories, and the per-epoch
    decision accounting proving estimates were never served across a
    torn model swap.
    """

    target: float
    guards: RecalGuards
    limits: ControllerLimits
    epochs: tuple[ModelEpoch, ...]
    reconfigs: tuple[ReconfigRecord, ...]
    decisions_by_epoch: Mapping[int, int]
    total_decisions: int
    samples_ingested: int
    poisoned: int


class _SimHost:
    """Actuator surface for the simulated plane: admission only.

    The event-driven simulator replays a fixed queue topology and a
    fixed worker layout, so re-splits and pool resizes have nothing to
    actuate; the admission lateness factor is a plain scheduler
    attribute and works identically in both planes.
    """

    def __init__(self, scheduler):
        self._scheduler = scheduler

    def lateness(self):
        return getattr(self._scheduler, "lateness_factor", None)

    def set_lateness(self, value: float) -> None:
        self._scheduler.lateness_factor = value

    def translation_workers(self):
        return None

    def set_translation_workers(self, workers: int) -> None:
        raise SchedulingError("simulated plane cannot resize translation")

    def can_resplit(self) -> bool:
        return False

    def resplit(self, scheme) -> None:
        raise SchedulingError("simulated plane cannot re-split the GPU")


class _ServeHost:
    """Actuator surface for the live engine: all three knobs."""

    def __init__(self, engine):
        self._engine = engine

    def lateness(self):
        return getattr(self._engine.scheduler, "lateness_factor", None)

    def set_lateness(self, value: float) -> None:
        self._engine.scheduler.lateness_factor = value

    def translation_workers(self):
        return self._engine.trans_queue.capacity

    def set_translation_workers(self, workers: int) -> None:
        self._engine.adapt_resize_translation(workers)

    def can_resplit(self) -> bool:
        return True

    def resplit(self, scheme) -> None:
        self._engine.adapt_resplit(scheme)


class AdaptivePlane:
    """Online recalibration + adaptive capacity control for one run.

    Parameters
    ----------
    target:
        Deadline-hit-rate SLO the plane defends (the paper's
        :math:`P_{BD}`-style service-level objective).
    window:
        SLO observation window in event-time seconds.
    guards:
        Recalibration safety envelope (:class:`RecalGuards`).
    limits:
        Controller envelope (:class:`ControllerLimits`).
    schemes:
        Partition-scheme re-split ladder; defaults to
        :func:`default_scheme_ladder` on serve hosts.  The first rung
        must match the host's configured scheme.
    recalibrate / control:
        Independently disable either half (a disabled plane attached to
        a run must leave behaviour byte-identical to no plane at all —
        pinned by the property suite).
    min_window_count:
        Breach events are ignored while the SLO window holds fewer than
        this many completions, so a single missed deadline during cold
        start (hit rate 0/1) cannot trigger a capacity action.  Recovery
        events always pass — unwinding is safe at any sample size.

    A plane instance is single-use: it binds to one host via
    ``attach_serve``/``attach_sim`` and accumulates that run's history.
    """

    def __init__(
        self,
        *,
        target: float = 0.9,
        window: float = 60.0,
        guards: RecalGuards | None = None,
        limits: ControllerLimits | None = None,
        schemes: tuple[PartitionScheme, ...] | None = None,
        recalibrate: bool = True,
        control: bool = True,
        min_window_count: int = 1,
    ):
        if min_window_count < 1:
            raise SchedulingError(
                f"min_window_count must be >= 1, got {min_window_count}"
            )
        self.min_window_count = min_window_count
        self.target = target
        self.guards = guards if guards is not None else RecalGuards()
        self.limits = limits if limits is not None else ControllerLimits()
        self._schemes = schemes
        self._recal_enabled = recalibrate
        self._ctrl_enabled = control
        # registry=None: the engine may run its own SLO monitor on the
        # shared registry; the plane's window is a private instrument
        self.monitor = SloMonitor(
            target=target, window=window, registry=None, on_event=self._on_slo_event
        )
        self.recalibrator: OnlineRecalibrator | None = None
        self.controller: AdaptiveCapacityController | None = None
        self._collector = None
        self._metrics = None
        self._attached = False
        self._time = 0.0

    # -- attachment --------------------------------------------------------

    def _check_unattached(self) -> None:
        if self._attached:
            raise SchedulingError("AdaptivePlane is single-use; already attached")
        self._attached = True

    def attach_serve(self, engine) -> None:
        """Wire into a :class:`~repro.serve.engine.ServeEngine` (called
        by the engine constructor when ``adapt=`` is passed)."""
        self._check_unattached()
        self._collector = engine._collector
        if engine.metrics is not None:
            from repro.metrics.instrument import AdaptMetrics

            self._metrics = AdaptMetrics(engine.metrics)
        schemes = self._schemes
        if schemes is None:
            schemes = default_scheme_ladder()
            if engine.config.scheme != schemes[0]:
                # unknown starting scheme: no safe ladder to climb
                schemes = (engine.config.scheme,)
        self._wire(
            scheduler=engine.scheduler,
            feedback=engine.feedback,
            estimator=engine.estimator,
            host=_ServeHost(engine),
            schemes=schemes,
        )

    def attach_sim(
        self, *, scheduler, feedback, estimator, collector=None, metrics=None
    ) -> None:
        """Wire into a :meth:`~repro.sim.system.HybridSystem.run` pass
        (called by the system when ``adapt=`` is passed)."""
        self._check_unattached()
        self._collector = collector
        if metrics is not None:
            from repro.metrics.instrument import AdaptMetrics

            self._metrics = AdaptMetrics(metrics)
        self._wire(
            scheduler=scheduler,
            feedback=feedback,
            estimator=estimator,
            host=_SimHost(scheduler),
            schemes=self._schemes if self._schemes is not None else (),
        )

    def _wire(self, *, scheduler, feedback, estimator, host, schemes) -> None:
        if self._recal_enabled:
            self.recalibrator = OnlineRecalibrator(
                estimator, self.guards, now=self._time
            )
            self.recalibrator.on_epoch = self._on_epoch
            self.recalibrator.on_refit = self._on_refit
            scheduler.adapt_observer = self
            feedback.adapt_observer = self.on_feedback
            # re-announce epoch 0 now that trace/metrics sinks exist
            self._on_epoch(self.recalibrator.epochs[0])
        elif self._metrics is not None:
            self._metrics.on_epoch(0)
        if self._ctrl_enabled:
            self.controller = AdaptiveCapacityController(
                self.limits, target=self.target, schemes=schemes
            )
            self.controller.on_reconfig = self._on_reconfig
            self.controller.bind(host)

    # -- scheduler observer protocol (third slot) --------------------------

    def on_estimated(self, query, est, deadline, now) -> None:
        self._time = max(self._time, now)
        if self.recalibrator is not None:
            self.recalibrator.note_estimate(query)

    def on_decision(self, decision, response, now) -> None:
        self._time = max(self._time, now)
        if self.recalibrator is not None:
            self.recalibrator.note_decision(decision)

    def on_batch(self, n: int, now: float) -> None:
        self._time = max(self._time, now)

    # -- feedback observer (third slot) ------------------------------------

    def on_feedback(
        self, queue_name, query_id, measured, estimated, applied, stats
    ) -> None:
        if self.recalibrator is not None:
            self.recalibrator.ingest(
                queue_name, query_id, measured, estimated, self._time
            )

    # -- SLO observation (host completion/sampling sites) ------------------

    def on_outcome(self, met: bool, now: float) -> None:
        """One finished query's deadline outcome (host calls this for
        every completion, including cache hits and failures)."""
        self._time = max(self._time, now)
        self.monitor.observe(met, now)
        self._pump(now)

    def tick(self, now: float, in_flight: int = 0) -> None:
        """Heartbeat so starvation (no completions at all) still
        registers as a breach; fired from the engine sampling loop."""
        self._time = max(self._time, now)
        self.monitor.tick(now, in_flight)
        self._pump(now)

    # -- event plumbing ----------------------------------------------------

    def _pump(self, now: float) -> None:
        """Re-drive the controller while an SLO state *persists*.

        The monitor emits events only on crossings, but one action is
        rarely enough: a breach that outlives the cooldown deserves the
        next escalation step, and a comfortable recovery deserves the
        next unwind.  Synthetic events are cooldown-gated inside the
        controller, so pumping on every completion cannot thrash."""
        ctrl = self.controller
        if ctrl is None:
            return
        monitor = self.monitor
        if monitor.breached:
            if monitor.window_count < self.min_window_count:
                return  # cold-start noise, not a real breach signal
            ctrl.on_slo_event(
                SloEvent(
                    "breach",
                    now,
                    monitor.hit_rate,
                    monitor.burn_rate,
                    monitor.window_count,
                )
            )
        elif ctrl.applied_depth > 0:
            hit_rate = monitor.hit_rate
            if hit_rate >= self.target + self.limits.hysteresis:
                ctrl.on_slo_event(
                    SloEvent(
                        "recover",
                        now,
                        hit_rate,
                        monitor.burn_rate,
                        monitor.window_count,
                    )
                )

    def _on_slo_event(self, event) -> None:
        if self.controller is None:
            return
        if event.kind == "breach" and event.window_count < self.min_window_count:
            return
        self.controller.on_slo_event(event)

    def _on_epoch(self, epoch: ModelEpoch) -> None:
        if self._metrics is not None:
            self._metrics.on_epoch(epoch.version)
        if self._collector is not None:
            self._collector.emit(
                "model_epoch",
                epoch.time,
                version=epoch.version,
                trigger=epoch.trigger,
                families=list(epoch.families),
                clamped=list(epoch.clamped),
            )

    def _on_refit(self, family: str, outcome: str) -> None:
        if self._metrics is not None:
            self._metrics.on_refit_outcome(family, outcome)

    def _on_reconfig(self, record: ReconfigRecord) -> None:
        if self._metrics is not None:
            self._metrics.on_reconfig(record.action)
        if self._collector is not None:
            self._collector.emit(
                "reconfig",
                record.time,
                seq=record.seq,
                action=record.action,
                trigger=record.trigger,
                detail=record.detail,
            )

    # -- audit surface -----------------------------------------------------

    def report(self) -> AdaptReport:
        recal = self.recalibrator
        ctrl = self.controller
        return AdaptReport(
            target=self.target,
            guards=self.guards,
            limits=self.limits,
            epochs=tuple(recal.epochs) if recal is not None else (),
            reconfigs=tuple(ctrl.reconfigs) if ctrl is not None else (),
            decisions_by_epoch=MappingProxyType(
                dict(recal.decisions_by_epoch) if recal is not None else {}
            ),
            total_decisions=recal.total_decisions if recal is not None else 0,
            samples_ingested=recal.samples_ingested if recal is not None else 0,
            poisoned=recal.poisoned if recal is not None else 0,
        )
