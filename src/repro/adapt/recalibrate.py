"""Online recalibration of the performance-model bundle.

The paper calibrates its estimation functions *once*, offline
(Section III-D: benchmark sweeps, curve fits, frozen coefficients).  A
long-running serving system cannot afford that luxury: data grows, the
dictionary deepens, co-tenants steal memory bandwidth — and the frozen
models drift away from reality, which the scheduler only notices as a
rising estimate bias in :class:`~repro.core.feedback.FeedbackController`
statistics.

:class:`OnlineRecalibrator` closes that loop.  It consumes the same
estimated-vs-measured pairs the feedback controller sees, buckets them
into per-family sliding windows (piecewise CPU model, per-SM GPU lines,
dictionary cost), and periodically re-runs the *offline* fitters from
:mod:`repro.core.calibration` over the windows.  A candidate refit is
installed into the live :class:`~repro.sim.system.SystemEstimator` only
when it clears three guards:

* **minimum samples** — a window smaller than ``min_samples`` is noise;
* **minimum R²** — a sloppy fit is worse than a stale one;
* **maximum step** — every coefficient moves at most ``max_step`` of
  its own magnitude per epoch, so a burst of poisoned or unlucky
  samples can nudge, never capsize, the models.

Each successful install bumps a versioned :class:`ModelEpoch`; the
estimator swap is a single reference assignment, so any estimate call
observes exactly one epoch (see ``SystemEstimator.install``).  All
entry points run under the engine lock (scheduler hooks fire inside
``submit``, feedback hooks inside worker ``on_done``), so the windows
need no locking of their own.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from types import MappingProxyType
from typing import Mapping

import numpy as np

from repro.core.calibration import (
    fit_linear,
    fit_power_law,
    r_squared,
)
from repro.core.perfmodel import (
    CPUPerfModel,
    DictPerfModel,
    LinearModel,
    PiecewiseModel,
    PowerLawModel,
)
from repro.errors import CalibrationError
from repro.gpu.timing import LinearColumnTiming
from repro.sim.system import ModelBundle

__all__ = ["RecalGuards", "ModelEpoch", "OnlineRecalibrator"]

#: denominator floor for the relative max-step clamp, so coefficients
#: that are exactly 0.0 can still move (by at most ``max_step * _EPS``).
_EPS = 1e-12


@dataclass(frozen=True)
class RecalGuards:
    """Safety envelope for online refits.

    Attributes
    ----------
    min_samples:
        Fewest window samples a family needs before a refit is even
        attempted.
    min_r2:
        Fit quality floor; candidates below it are rejected.
    max_step:
        Per-coefficient relative clamp: a refit moves each coefficient
        by at most ``max_step * max(|old|, eps)`` per epoch.
    refit_interval:
        Accepted samples between refit attempts.
    window:
        Sliding-window length per family (per SM count for the GPU).
    """

    min_samples: int = 24
    min_r2: float = 0.9
    max_step: float = 0.5
    refit_interval: int = 32
    window: int = 256

    def __post_init__(self) -> None:
        if self.min_samples < 5:
            raise CalibrationError(
                f"min_samples must be >= 5 (piecewise fit minimum), "
                f"got {self.min_samples}"
            )
        if not 0.0 <= self.min_r2 <= 1.0:
            raise CalibrationError(f"min_r2 must be in [0, 1], got {self.min_r2}")
        if self.max_step <= 0:
            raise CalibrationError(f"max_step must be > 0, got {self.max_step}")
        if self.refit_interval < 1:
            raise CalibrationError(
                f"refit_interval must be >= 1, got {self.refit_interval}"
            )
        if self.window < self.min_samples:
            raise CalibrationError(
                f"window ({self.window}) must hold at least min_samples "
                f"({self.min_samples})"
            )


@dataclass(frozen=True)
class ModelEpoch:
    """One version of the installed model bundle.

    ``coefficients`` is the *complete* flattened coefficient map of the
    bundle live during this epoch (keys like ``"cpu.below.a"``,
    ``"gpu.2.a"``, ``"dict.cost_per_entry"``), so consecutive epochs can
    be diffed without re-deriving model structure.  ``families`` names
    the families actually refit in this epoch (empty for the initial
    epoch); ``samples``/``r2`` cover exactly those families;
    ``clamped`` lists the coefficient keys whose raw fit exceeded the
    max-step envelope and was clipped.
    """

    version: int
    time: float
    trigger: str  # "init" | "refit"
    families: tuple[str, ...]
    samples: Mapping[str, int]
    r2: Mapping[str, float]
    clamped: tuple[str, ...]
    coefficients: Mapping[str, float]


def flatten_coefficients(bundle: ModelBundle) -> dict[str, float]:
    """Flatten a bundle into the ``ModelEpoch.coefficients`` key space.

    Families whose model shape is outside the refit surface (a CPU
    model that is not piecewise power-law/linear, a GPU model that is
    not :class:`~repro.gpu.timing.LinearColumnTiming`) contribute no
    keys — they are opaque to the recalibrator and never refit.
    """
    out: dict[str, float] = {}
    model = bundle.cpu.model
    if (
        isinstance(model, PiecewiseModel)
        and isinstance(model.below, PowerLawModel)
        and isinstance(model.above, LinearModel)
    ):
        out["cpu.breakpoint"] = model.breakpoint
        out["cpu.below.a"] = model.below.a
        out["cpu.below.p"] = model.below.p
        out["cpu.above.a"] = model.above.a
        out["cpu.above.b"] = model.above.b
    gpu = bundle.gpu
    if isinstance(gpu, LinearColumnTiming):
        for n_sm, (a, b) in sorted(gpu.coefficients.items()):
            out[f"gpu.{n_sm}.a"] = a
            out[f"gpu.{n_sm}.b"] = b
    out["dict.cost_per_entry"] = bundle.dict_model.cost_per_entry
    return out


class OnlineRecalibrator:
    """Windowed re-fitting of the estimator's model bundle.

    Parameters
    ----------
    estimator:
        The live :class:`~repro.sim.system.SystemEstimator` (anything
        with ``models()``, ``install(bundle)`` and ``features(query)``).
    guards:
        The :class:`RecalGuards` safety envelope.
    now:
        Event time of the initial epoch (version 0, trigger ``"init"``).

    Hooks (None-guarded, wired by the adapt plane): ``on_epoch(epoch)``
    after each install, ``on_refit(family, outcome)`` after each refit
    attempt with outcome ``"installed"``, ``"rejected_fit"``,
    ``"low_r2"`` or ``"unsupported"``.
    """

    def __init__(
        self,
        estimator,
        guards: RecalGuards | None = None,
        *,
        now: float = 0.0,
    ):
        self._estimator = estimator
        self.guards = guards if guards is not None else RecalGuards()
        g = self.guards
        self._cpu_window: deque[tuple[float, float]] = deque(maxlen=g.window)
        self._gpu_windows: dict[int, deque[tuple[float, float]]] = {}
        self._dict_window: deque[tuple[float, float]] = deque(maxlen=g.window)
        #: query_id -> (sc_mb, column_fraction, dict_work); FIFO-capped
        self._pending: dict[int, tuple[float | None, float, float]] = {}
        self._pending_order: deque[int] = deque()
        self._pending_cap = 4 * g.window
        #: queue name -> n_sm, learned from decisions (survives resplits)
        self._queue_sm: dict[str, int] = {}
        self._accepted = 0
        self.samples_ingested = 0
        self.poisoned = 0
        self.epochs: list[ModelEpoch] = []
        self.decisions_by_epoch: dict[int, int] = {}
        self.total_decisions = 0
        self.on_epoch = None
        self.on_refit = None
        self._record_epoch(
            time=now, trigger="init", families=(), samples={}, r2={}, clamped=()
        )

    # -- epoch bookkeeping -------------------------------------------------

    @property
    def version(self) -> int:
        return self.epochs[-1].version

    def _record_epoch(self, *, time, trigger, families, samples, r2, clamped):
        epoch = ModelEpoch(
            version=len(self.epochs),
            time=time,
            trigger=trigger,
            families=tuple(families),
            samples=MappingProxyType(dict(samples)),
            r2=MappingProxyType(dict(r2)),
            clamped=tuple(clamped),
            coefficients=MappingProxyType(
                flatten_coefficients(self._estimator.models())
            ),
        )
        self.epochs.append(epoch)
        if self.on_epoch is not None:
            self.on_epoch(epoch)

    # -- observation entry points (fired under the engine lock) ------------

    def note_estimate(self, query) -> None:
        """Cache the query's model features for later sample routing."""
        feats = self._estimator.features(query)
        if feats is None:
            return
        sc_mb, frac, terms = feats
        work = float(sum(nlit * d_l for nlit, d_l in terms))
        qid = query.query_id
        if qid not in self._pending:
            self._pending_order.append(qid)
            if len(self._pending_order) > self._pending_cap:
                evicted = self._pending_order.popleft()
                self._pending.pop(evicted, None)
        self._pending[qid] = (sc_mb, frac, work)

    def note_decision(self, decision) -> None:
        """Count the decision against the current epoch; learn queue SMs."""
        target = decision.target
        if target.n_sm is not None:
            self._queue_sm[target.name] = target.n_sm
        v = self.version
        self.decisions_by_epoch[v] = self.decisions_by_epoch.get(v, 0) + 1
        self.total_decisions += 1

    def ingest(
        self,
        queue_name: str,
        query_id: int | None,
        measured: float,
        estimated: float,
        now: float,
    ) -> None:
        """Route one realised latency into its family window.

        Non-finite or non-positive measurements are rejected at the
        door (the estimate-poisoning defence): they are counted in
        :attr:`poisoned` and never reach a window.
        """
        if (
            not math.isfinite(measured)
            or measured <= 0.0
            or not math.isfinite(estimated)
        ):
            self.poisoned += 1
            return
        feats = self._pending.get(query_id) if query_id is not None else None
        if queue_name == "Q_TRANS":
            if feats is None or feats[2] <= 0.0:
                return
            self._dict_window.append((feats[2], measured))
        elif queue_name == "Q_CPU":
            if feats is None or feats[0] is None or feats[0] <= 0.0:
                return
            self._cpu_window.append((feats[0], measured))
        else:
            n_sm = self._queue_sm.get(queue_name)
            if n_sm is None or feats is None or feats[1] <= 0.0:
                return
            window = self._gpu_windows.get(n_sm)
            if window is None:
                window = deque(maxlen=self.guards.window)
                self._gpu_windows[n_sm] = window
            window.append((feats[1], measured))
        self.samples_ingested += 1
        self._accepted += 1
        if self._accepted % self.guards.refit_interval == 0:
            self.refit(now)

    # -- refitting ---------------------------------------------------------

    def _clamp(self, old: float, new: float) -> tuple[float, bool]:
        limit = self.guards.max_step * max(abs(old), _EPS)
        delta = new - old
        if delta > limit:
            return old + limit, True
        if delta < -limit:
            return old - limit, True
        return new, False

    def _emit(self, family: str, outcome: str) -> None:
        if self.on_refit is not None:
            self.on_refit(family, outcome)

    def refit(self, now: float) -> ModelEpoch | None:
        """Attempt one refit pass over every family with enough samples.

        Families that clear all guards are installed together as one new
        epoch (a partial bundle carries the untouched families forward);
        returns the new :class:`ModelEpoch`, or ``None`` when nothing
        was installed.
        """
        bundle = self._estimator.models()
        families: list[str] = []
        samples: dict[str, int] = {}
        r2s: dict[str, float] = {}
        clamped: list[str] = []
        new_cpu = new_gpu = new_dict = None

        if len(self._cpu_window) >= self.guards.min_samples:
            outcome, new_cpu, r2, hits = self._refit_cpu(bundle.cpu)
            self._emit("cpu", outcome)
            if new_cpu is not None:
                families.append("cpu")
                samples["cpu"] = len(self._cpu_window)
                r2s["cpu"] = r2
                clamped.extend(hits)

        outcome, new_gpu, gpu_r2, gpu_n, hits = self._refit_gpu(bundle.gpu)
        if outcome is not None:
            self._emit("gpu", outcome)
        if new_gpu is not None:
            families.append("gpu")
            samples["gpu"] = gpu_n
            r2s["gpu"] = gpu_r2
            clamped.extend(hits)

        if len(self._dict_window) >= self.guards.min_samples:
            outcome, new_dict, r2, hits = self._refit_dict(bundle.dict_model)
            self._emit("dict", outcome)
            if new_dict is not None:
                families.append("dict")
                samples["dict"] = len(self._dict_window)
                r2s["dict"] = r2
                clamped.extend(hits)

        if not families:
            return None
        self._estimator.install(
            ModelBundle(
                cpu=new_cpu if new_cpu is not None else bundle.cpu,
                dict_model=new_dict if new_dict is not None else bundle.dict_model,
                gpu=new_gpu if new_gpu is not None else bundle.gpu,
            )
        )
        self._record_epoch(
            time=now,
            trigger="refit",
            families=families,
            samples=samples,
            r2=r2s,
            clamped=clamped,
        )
        return self.epochs[-1]

    def _refit_cpu(self, cur: CPUPerfModel):
        model = cur.model
        if not (
            isinstance(model, PiecewiseModel)
            and isinstance(model.below, PowerLawModel)
            and isinstance(model.above, LinearModel)
        ):
            return "unsupported", None, 0.0, []
        xs = np.array([x for x, _ in self._cpu_window])
        ys = np.array([y for _, y in self._cpu_window])
        # the window holds end-to-end service times; the model covers the
        # streaming part only, so strip the fixed dispatch overhead
        ys = ys - cur.dispatch_overhead
        keep = ys > 0.0
        xs, ys = xs[keep], ys[keep]
        below = xs < model.breakpoint
        above = ~below
        if len(xs) < self.guards.min_samples:
            return "rejected_fit", None, 0.0, []
        # a workload may live entirely on one side of the breakpoint
        # (the paper's in-memory tables are all far below 512 MB); refit
        # only the populated segment and keep the other side frozen
        fit_below = int(below.sum()) >= 3
        fit_above = int(above.sum()) >= 2
        if not fit_below and not fit_above:
            return "rejected_fit", None, 0.0, []
        try:
            fa = fit_power_law(xs[below], ys[below]) if fit_below else None
            fb = fit_linear(xs[above], ys[above]) if fit_above else None
        except CalibrationError:
            return "rejected_fit", None, 0.0, []
        obs: list[np.ndarray] = []
        preds: list[np.ndarray] = []
        if fa is not None:
            obs.append(ys[below])
            preds.append(fa.model.time_many(xs[below]))
        if fb is not None:
            obs.append(ys[above])
            preds.append(fb.model.time_many(xs[above]))
        r2 = r_squared(np.concatenate(obs), np.concatenate(preds))
        if r2 < self.guards.min_r2:
            return "low_r2", None, r2, []
        hits = []
        ba, bp = model.below.a, model.below.p
        if fa is not None:
            ba, c = self._clamp(model.below.a, fa.model.a)
            if c:
                hits.append("cpu.below.a")
            bp, c = self._clamp(model.below.p, fa.model.p)
            if c:
                hits.append("cpu.below.p")
        aa, ab = model.above.a, model.above.b
        if fb is not None:
            aa, c = self._clamp(model.above.a, fb.model.a)
            if c:
                hits.append("cpu.above.a")
            ab, c = self._clamp(model.above.b, fb.model.b)
            if c:
                hits.append("cpu.above.b")
        new = CPUPerfModel(
            model=PiecewiseModel(
                breakpoint=model.breakpoint,
                below=PowerLawModel(a=ba, p=bp),
                above=LinearModel(a=aa, b=max(ab, 0.0)),
            ),
            threads=cur.threads,
            dispatch_overhead=cur.dispatch_overhead,
        )
        return "installed", new, r2, hits

    def _refit_gpu(self, cur):
        """Refit per-SM lines; first install needs every routed SM class.

        Returns ``(outcome, model, worst_r2, total_samples, clamped)``;
        outcome is ``None`` when there was nothing to attempt (too few
        samples everywhere), so no counter noise accrues between real
        attempts.
        """
        if cur is not None and not isinstance(cur, LinearColumnTiming):
            if any(
                len(w) >= self.guards.min_samples
                for w in self._gpu_windows.values()
            ):
                return "unsupported", None, 0.0, 0, []
            return None, None, 0.0, 0, []
        ready = {
            n_sm: w
            for n_sm, w in self._gpu_windows.items()
            if len(w) >= self.guards.min_samples
        }
        if not ready:
            return None, None, 0.0, 0, []
        if cur is None:
            # no baseline to clamp against: require full coverage of every
            # SM class the scheduler has routed to before the first install
            required = set(self._queue_sm.values())
            if not required or not required.issubset(ready):
                return "rejected_fit", None, 0.0, 0, []
        coeffs = dict(cur.coefficients) if cur is not None else {}
        worst_r2 = 1.0
        total = 0
        hits: list[str] = []
        fitted: dict[int, tuple[float, float]] = {}
        for n_sm, window in sorted(ready.items()):
            xs = np.array([x for x, _ in window])
            ys = np.array([y for _, y in window])
            try:
                fit = fit_linear(xs, ys)
            except CalibrationError:
                return "rejected_fit", None, 0.0, 0, []
            if fit.r2 < self.guards.min_r2:
                return "low_r2", None, fit.r2, 0, []
            a, b = max(fit.model.a, 0.0), max(fit.model.b, 0.0)
            old = coeffs.get(n_sm)
            if old is not None:
                a, c = self._clamp(old[0], a)
                if c:
                    hits.append(f"gpu.{n_sm}.a")
                b, c = self._clamp(old[1], b)
                if c:
                    hits.append(f"gpu.{n_sm}.b")
            fitted[n_sm] = (max(a, 0.0), max(b, 0.0))
            worst_r2 = min(worst_r2, fit.r2)
            total += len(window)
        coeffs.update(fitted)
        return "installed", LinearColumnTiming(coefficients=coeffs), worst_r2, total, hits

    def _refit_dict(self, cur: DictPerfModel):
        xs = np.array([x for x, _ in self._dict_window])
        ys = np.array([y for _, y in self._dict_window])
        try:
            fit = fit_linear(xs, ys, through_origin=True)
        except CalibrationError:
            return "rejected_fit", None, 0.0, []
        if fit.model.a < 0:
            return "rejected_fit", None, 0.0, []
        if fit.r2 < self.guards.min_r2:
            return "low_r2", None, fit.r2, []
        hits = []
        a, c = self._clamp(cur.cost_per_entry, fit.model.a)
        if c:
            hits.append("dict.cost_per_entry")
        return "installed", DictPerfModel(cost_per_entry=max(a, 0.0)), fit.r2, hits
