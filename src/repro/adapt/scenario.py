"""Deterministic scenario harness for the adaptive serving engine.

The live :class:`~repro.serve.engine.ServeEngine` runs real worker
threads against a wall clock, which makes its behaviour — and therefore
the adapt plane's behaviour — timing-dependent and unrepeatable.  This
module removes the wall clock without removing the threads:

* :class:`SteppedClock` is a :class:`~repro.serve.clock.Clock` whose
  ``sleep`` *parks* the calling worker until the scenario driver
  explicitly releases it.  Time is a number the driver moves; nothing
  in a scenario run ever waits on real time (the driver's internal
  polling naps are liveness plumbing, not modelled time).
* :class:`TruthExecutor` replaces the materialised executor: instead of
  aggregating cubes it parks the worker for the query's *true* service
  time, computed by a :class:`TruthWorld` from a ground-truth model
  bundle the estimator does not know — the estimation error the online
  recalibrator has to learn.  Chaos hooks (worker stalls, drifting
  truth) live here too.
* :class:`ScenarioDriver` alternates two phases: wait until the engine
  is *quiescent* (every busy worker parked in the clock, every queue
  either empty or fully served) and then advance time to the next event
  — the earlier of the next scripted arrival and the earliest parked
  wake-up — releasing exactly one sleeper at a time, ties broken by
  ``(wake_at, thread name)``.  The resulting interleaving is a pure
  function of the scenario script, so epoch histories, reconfiguration
  sequences and per-class SLO outcomes can be pinned by golden tests.

The driver never calls ``engine.drain`` (a real-time wait); it drives
the system to empty with the clock and then stops the engine.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.core.partitions import QueueKind
from repro.core.scheduler import QueryEstimates
from repro.errors import BackpressureError, SchedulingError, ServeError
from repro.query.workload import TimedQuery
from repro.sim.system import ModelBundle, SystemConfig, SystemEstimator

__all__ = [
    "SteppedClock",
    "TruthWorld",
    "TruthExecutor",
    "ScenarioEstimator",
    "ScenarioDriver",
    "ScenarioResult",
    "retime",
]


class SteppedClock:
    """A discrete-event clock shared by real threads.

    ``sleep`` registers the caller as a *sleeper* and parks it until
    the driver calls :meth:`release_next`, which advances time to the
    earliest wake-up and releases exactly that one thread (ties broken
    deterministically by thread name).  ``advance`` moves time without
    releasing anyone — used for arrivals that precede every wake-up;
    sleepers due at exactly the arrival time stay parked until
    released, giving arrivals-first ordering at equal times.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._t = 0.0
        #: thread name -> (wake_at, registration token).  The token
        #: distinguishes *this* parking from the thread's next one: a
        #: released worker can finish its task and park again under the
        #: same name before the releaser observes its departure.
        self._sleepers: dict[str, tuple[float, int]] = {}
        self._released: set[int] = set()
        self._next_token = 0

    def now(self) -> float:
        with self._cond:
            return self._t

    def sleep(self, seconds: float) -> None:
        if seconds <= 0.0:
            return
        name = threading.current_thread().name
        with self._cond:
            token = self._next_token
            self._next_token += 1
            self._sleepers[name] = (self._t + seconds, token)
            self._cond.notify_all()
            while token not in self._released:
                self._cond.wait()
            self._released.discard(token)
            del self._sleepers[name]
            self._cond.notify_all()

    def sleeping(self) -> dict[str, float]:
        """Parked threads -> wake-up times (snapshot)."""
        with self._cond:
            return {name: wake for name, (wake, _) in self._sleepers.items()}

    def advance(self, t: float) -> None:
        with self._cond:
            if t < self._t:
                raise ServeError(f"clock cannot go backwards ({t} < {self._t})")
            self._t = t

    def release_next(self, timeout: float = 30.0) -> tuple[str, float] | None:
        """Advance to the earliest wake-up and release that sleeper.

        Blocks (bounded by ``timeout`` *real* seconds, a deadlock
        guard) until the released registration has actually left
        ``sleep``, so a caller can never release the same parking
        twice."""
        deadline = time.monotonic() + timeout
        with self._cond:
            if not self._sleepers:
                return None
            name, (wake, token) = min(
                self._sleepers.items(), key=lambda kv: (kv[1][0], kv[0])
            )
            if wake > self._t:
                self._t = wake
            self._released.add(token)
            self._cond.notify_all()
            while self._sleepers.get(name, (0.0, -1))[1] == token:
                remaining = deadline - time.monotonic()
                if remaining <= 0:  # pragma: no cover - deadlock guard
                    raise ServeError(f"sleeper {name!r} failed to wake")
                self._cond.wait(timeout=remaining)
            return name, wake


class TruthWorld:
    """Ground truth the estimator does not know.

    Service times come from ``bundle`` — a :class:`ModelBundle`
    structurally identical to the estimator's but with *different*
    coefficients — scaled by per-family drift multipliers the scenario
    script can change mid-run (regime shifts, diurnal load) and a tiny
    deterministic per-query jitter that keeps every parked wake-up time
    distinct.  Jitter is keyed by submission order (assigned by the
    driver), never by the process-global ``query_id``, so scenario
    histories do not depend on how many queries earlier tests created.
    """

    def __init__(self, features_fn, bundle: ModelBundle, *, jitter: float = 1e-4):
        self._features = features_fn
        self.bundle = bundle
        self.jitter = jitter
        self.cpu_mult = 1.0
        self.gpu_mult = 1.0
        self.dict_mult = 1.0
        self._seq: dict[int, int] = {}  # query_id -> submission index

    def assign_seq(self, query_id: int, seq: int) -> None:
        self._seq[query_id] = seq

    def set_drift(
        self,
        cpu: float | None = None,
        gpu: float | None = None,
        dict_: float | None = None,
    ) -> None:
        if cpu is not None:
            self.cpu_mult = cpu
        if gpu is not None:
            self.gpu_mult = gpu
        if dict_ is not None:
            self.dict_mult = dict_

    def _jitter(self, query_id: int) -> float:
        seq = self._seq.get(query_id, query_id)
        return 1.0 + (seq % 997) * self.jitter

    def translation_time(self, query) -> float:
        feats = self._features(query)
        if feats is None:
            raise SchedulingError(f"query {query.query_id} outside scenario features")
        _, _, terms = feats
        t = sum(
            nlit * self.bundle.dict_model.time(d_l) for nlit, d_l in terms
        )
        return t * self.dict_mult * self._jitter(query.query_id)

    def service_time(self, query, target) -> float:
        feats = self._features(query)
        if feats is None:
            raise SchedulingError(f"query {query.query_id} outside scenario features")
        sc_mb, frac, _ = feats
        if target.kind is QueueKind.CPU:
            if sc_mb is None or sc_mb <= 0:
                raise SchedulingError(
                    f"query {query.query_id} routed to CPU without a sub-cube"
                )
            t = self.bundle.cpu.time(sc_mb) * self.cpu_mult
        else:
            t = self.bundle.gpu.query_time(frac, target.n_sm) * self.gpu_mult
        return t * self._jitter(query.query_id)


class TruthExecutor:
    """:class:`~repro.serve.executors.QueryExecutor` that parks workers
    for the query's true service time instead of doing OLAP work.

    Chaos hooks:

    * ``stall(query_id, seconds)`` — that query's processing stage
      takes ``seconds`` longer than the truth (an injected worker
      stall: GC pause, page fault storm, noisy neighbour);
    * the :class:`TruthWorld` drift multipliers model environment
      change underneath the frozen estimates.
    """

    def __init__(self, clock: SteppedClock, truth: TruthWorld):
        self.clock = clock
        self.truth = truth
        self._stalls: dict[int, float] = {}
        self.translated = 0
        self.executed = 0

    def stall(self, query_id: int, seconds: float) -> None:
        if seconds < 0:
            raise ServeError(f"stall must be >= 0, got {seconds}")
        self._stalls[query_id] = seconds

    def translate(self, query):
        self.clock.sleep(self.truth.translation_time(query))
        self.translated += 1
        return query

    def execute(self, target, query):
        t = self.truth.service_time(query, target)
        t += self._stalls.pop(query.query_id, 0.0)
        self.clock.sleep(t)
        self.executed += 1
        return None


class ScenarioEstimator:
    """A hot-swappable estimator over an explicit :class:`ModelBundle`.

    Implements the full surface the engine, the scheduler and the
    online recalibrator need — ``estimate``, ``features``, ``models``,
    ``install`` — while keeping estimation a pure function of the
    installed bundle.  Feature extraction is delegated to a real
    :class:`~repro.sim.system.SystemEstimator` over the same config, so
    scenario features are bit-identical to production ones.

    ``sm_counts`` must cover every SM class of every scheme the
    controller's re-split ladder can reach, so estimates stay available
    across reconfigurations.
    """

    def __init__(
        self,
        config: SystemConfig,
        bundle: ModelBundle,
        sm_counts: Sequence[int] = (1, 2, 4),
    ):
        self._inner = SystemEstimator(config)
        self._models = bundle
        self._sm_counts = tuple(sorted(set(sm_counts)))
        if bundle.gpu is None:
            raise SchedulingError("ScenarioEstimator needs an explicit GPU model")

    def features(self, query):
        return self._inner.features(query)

    def models(self) -> ModelBundle:
        return self._models

    def install(self, bundle: ModelBundle) -> None:
        self._models = bundle

    def estimate(self, query) -> QueryEstimates:
        models = self._models
        feats = self._inner.features(query)
        if feats is None:
            raise SchedulingError(
                f"query {query.query_id} outside the scenario feature surface"
            )
        sc_mb, frac, terms = feats
        t_cpu = models.cpu.time(sc_mb) if sc_mb is not None and sc_mb > 0 else None
        t_gpu = {n: models.gpu.query_time(frac, n) for n in self._sm_counts}
        t_trans = sum(
            nlit * models.dict_model.time(d_l) for nlit, d_l in terms
        )
        return QueryEstimates(t_cpu=t_cpu, t_gpu=t_gpu, t_trans=t_trans)


@dataclass
class ScenarioResult:
    """What one driven scenario produced."""

    submitted: int = 0
    accepted: int = 0
    rejected: list[int] = field(default_factory=list)  # admission-shed query ids
    shed: list[int] = field(default_factory=list)  # backpressure-shed query ids
    #: query_class -> [met_deadline per completed record, arrival order]
    outcomes: dict[str, list[bool]] = field(default_factory=dict)

    def hit_rate(self, query_class: str) -> float:
        outcomes = self.outcomes.get(query_class, [])
        return sum(outcomes) / len(outcomes) if outcomes else 1.0


class ScenarioDriver:
    """Drives a :class:`~repro.serve.engine.ServeEngine` on a
    :class:`SteppedClock` through a scripted arrival schedule.

    The engine must have been built with the same clock instance and a
    parking executor (:class:`TruthExecutor`); ``truth`` is optional
    and only needed so submission-order jitter indices can be assigned.
    ``deadlock_timeout`` bounds, in *real* seconds, how long the driver
    waits for the threads to reach quiescence before declaring the
    scenario wedged — it never adds modelled time.
    """

    def __init__(
        self,
        engine,
        clock: SteppedClock,
        *,
        truth: TruthWorld | None = None,
        poll: float = 0.0005,
        deadlock_timeout: float = 60.0,
    ):
        self.engine = engine
        self.clock = clock
        self.truth = truth
        self.poll = poll
        self.deadlock_timeout = deadlock_timeout
        self._seq = 0

    # -- quiescence --------------------------------------------------------

    def _pool_of(self, thread_name: str) -> str | None:
        if not thread_name.startswith("serve-"):
            return None
        # thread names are "serve-{pool}-{seq}"
        return thread_name[len("serve-") :].rsplit("-", 1)[0]

    def _quiescent(self) -> bool:
        parked: dict[str, int] = {}
        for name in self.clock.sleeping():
            pool = self._pool_of(name)
            if pool is not None:
                parked[pool] = parked.get(pool, 0) + 1
        with self.engine._state.cond:
            for name, pool in self.engine.pools.items():
                if pool.in_service != parked.get(name, 0):
                    return False  # a busy worker is between states
                if pool.queue_length > 0 and pool.in_service < pool.capacity:
                    return False  # a queued task will still be picked up
        return True

    def _wait_quiescent(self) -> None:
        deadline = time.monotonic() + self.deadlock_timeout
        while not self._quiescent():
            if time.monotonic() > deadline:  # pragma: no cover - deadlock guard
                raise ServeError(
                    "scenario never reached quiescence: "
                    f"sleeping={self.clock.sleeping()!r}"
                )
            time.sleep(self.poll)

    # -- stepping ----------------------------------------------------------

    def _step_until(self, t: float) -> None:
        """Process every parked wake-up strictly before ``t``, then
        advance the clock to ``t`` (arrivals beat equal-time wake-ups)."""
        while True:
            self._wait_quiescent()
            sleeping = self.clock.sleeping()
            if not sleeping or min(sleeping.values()) >= t:
                break
            self.clock.release_next(timeout=self.deadlock_timeout)
        self.clock.advance(t)

    def run_until_idle(self) -> None:
        """Release wake-ups until nothing is parked and nothing is in
        flight (the scenario's terminal quiescence)."""
        deadline = time.monotonic() + self.deadlock_timeout
        while True:
            self._wait_quiescent()
            if self.clock.release_next(timeout=self.deadlock_timeout) is None:
                if self.engine.in_flight == 0:
                    return
                if time.monotonic() > deadline:  # pragma: no cover
                    raise ServeError(
                        f"{self.engine.in_flight} queries in flight "
                        "with no parked workers"
                    )
                time.sleep(self.poll)

    # -- the scenario loop -------------------------------------------------

    def run(
        self,
        arrivals: Iterable[TimedQuery],
        *,
        on_time: Callable[[float], None] | None = None,
    ) -> ScenarioResult:
        """Drive the scripted arrivals to completion.

        ``on_time(t)`` fires before time advances to each arrival
        instant — the hook scenario scripts use for drift changes and
        chaos injection, keyed to modelled time.
        """
        result = ScenarioResult()
        for entry in arrivals:
            if on_time is not None:
                on_time(entry.time)
            self._step_until(entry.time)
            if self.truth is not None:
                self.truth.assign_seq(entry.query.query_id, self._seq)
            self._seq += 1
            result.submitted += 1
            try:
                outcome = self.engine.submit(
                    entry.query, entry.query_class, block=False
                )
            except BackpressureError:
                result.shed.append(entry.query.query_id)
                continue
            if outcome.accepted:
                result.accepted += 1
            else:
                result.rejected.append(entry.query.query_id)
        self.run_until_idle()
        self.engine.stop(finish_queued=True)
        for record in self.engine.records:
            result.outcomes.setdefault(record.query_class, []).append(
                record.met_deadline
            )
        return result


def retime(stream, times: Sequence[float]):
    """Re-stamp a :class:`~repro.query.workload.QueryStream`'s entries
    with an explicit arrival-time vector (scenario scripts control load
    shape separately from query shape)."""
    entries = list(stream)
    if len(entries) != len(times):
        raise ServeError(
            f"need one time per query, got {len(times)} for {len(entries)}"
        )
    return [e._replace(time=float(t)) for e, t in zip(entries, times)]
