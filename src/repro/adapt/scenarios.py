"""Scripted scenarios for the deterministic adapt harness.

Each builder returns a fully wired :class:`ScenarioKit` — config,
stepped clock, truth world, parking executor, hot-swappable estimator,
adapt plane, engine and driver — plus the scripted arrival schedule.
Tests (and the adaptive golden master / BENCH-ADAPT benchmark) run a
kit with ``kit.driver.run(kit.arrivals, on_time=kit.on_time)`` and
assert on the resulting records, epochs and reconfigurations; the
whole run is a pure function of the builder arguments.

The library of scripts mirrors the failure modes an adaptive OLAP
front door actually faces:

* :func:`spike_scenario` — the headline claim: a 3x open-loop load
  spike on a premium/batch tenant mix, which the controller must ride
  out without dropping the premium class below its 0.9 deadline SLO;
* :func:`regime_shift_scenario` — the data (and therefore true service
  times) grows mid-run; the recalibrator has to learn the new regime;
* :func:`diurnal_scenario` — a slow load wave that should trigger at
  most a tame number of reconfigurations (no thrash);
* :func:`adversary_scenario` — an estimate-poisoning adversary: truth
  decouples wildly from the models *and* poisoned feedback samples are
  injected; the guards must keep every installed epoch inside its
  clamps;
* :func:`multi_tenant_scenario` — three tenant classes with different
  rates sharing the engine; per-class SLO accounting comes from the
  scenario result.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Sequence

from repro.adapt.controller import ControllerLimits
from repro.adapt.plane import AdaptivePlane
from repro.adapt.recalibrate import RecalGuards
from repro.adapt.scenario import (
    ScenarioDriver,
    ScenarioEstimator,
    SteppedClock,
    TruthExecutor,
    TruthWorld,
    retime,
)
from repro.core.admission import AdmissionControlScheduler
from repro.gpu.timing import TESLA_C2070_TIMING, LinearColumnTiming
from repro.paper import paper_system_config, paper_workload
from repro.query.workload import TimedQuery
from repro.serve.engine import ServeEngine
from repro.sim.system import ModelBundle, SystemConfig

__all__ = [
    "ScenarioKit",
    "build_kit",
    "phase_times",
    "spike_scenario",
    "regime_shift_scenario",
    "diurnal_scenario",
    "adversary_scenario",
    "multi_tenant_scenario",
]


def phase_times(phases: Sequence[tuple[float, float]]) -> list[float]:
    """Uniform arrival times from ``(duration_s, rate_qps)`` phases.

    Deterministic by construction: each phase contributes
    ``floor(duration * rate)`` arrivals spaced ``1/rate`` apart.
    Zero-rate phases contribute silence.
    """
    times: list[float] = []
    t0 = 0.0
    for duration, rate in phases:
        if duration < 0 or rate < 0:
            raise ValueError("phase durations and rates must be >= 0")
        if rate > 0:
            n = int(duration * rate)
            times.extend(t0 + i / rate for i in range(n))
        t0 += duration
    return times


def scale_bundle(bundle: ModelBundle, s: float) -> ModelBundle:
    """Uniformly slow a model bundle down by ``s`` (scenario sizing).

    Scenarios size service capacity relative to the scripted arrival
    rates by scaling *both* the estimator's models and the truth world
    — estimates stay honest; only the capacity/load ratio changes.
    """
    from repro.core.perfmodel import (
        CPUPerfModel,
        LinearModel,
        PiecewiseModel,
        PowerLawModel,
    )

    cpu = bundle.cpu
    model = cpu.model
    if not isinstance(model, PiecewiseModel):  # pragma: no cover
        raise TypeError("scale_bundle needs a piecewise CPU model")
    scaled_cpu = CPUPerfModel(
        model=PiecewiseModel(
            breakpoint=model.breakpoint,
            below=PowerLawModel(a=model.below.a * s, p=model.below.p),
            above=LinearModel(a=model.above.a * s, b=model.above.b * s),
        ),
        threads=cpu.threads,
        dispatch_overhead=cpu.dispatch_overhead * s,
    )
    gpu = LinearColumnTiming(
        coefficients={
            n: (a * s, b * s) for n, (a, b) in bundle.gpu.coefficients.items()
        }
    )
    from repro.core.perfmodel import DictPerfModel

    return ModelBundle(
        cpu=scaled_cpu,
        dict_model=DictPerfModel(cost_per_entry=bundle.dict_model.cost_per_entry * s),
        gpu=gpu,
    )


def _tenants(
    entries: Sequence[TimedQuery], classes: Sequence[str]
) -> list[TimedQuery]:
    """Round-robin tenant labels over a retimed stream."""
    return [
        e._replace(query_class=classes[i % len(classes)])
        for i, e in enumerate(entries)
    ]


@dataclass
class ScenarioKit:
    """Everything one scripted scenario run needs, pre-wired."""

    config: SystemConfig
    clock: SteppedClock
    truth: TruthWorld
    executor: TruthExecutor
    estimator: ScenarioEstimator
    plane: AdaptivePlane | None
    engine: ServeEngine
    driver: ScenarioDriver
    arrivals: list[TimedQuery]
    on_time: Callable[[float], None] | None = None

    def run(self):
        """Drive the scripted arrivals; returns the ScenarioResult."""
        return self.driver.run(self.arrivals, on_time=self.on_time)


def build_kit(
    *,
    arrivals: list[TimedQuery],
    time_constraint: float = 0.25,
    lateness_factor: float = float("inf"),
    translation_workers: int = 1,
    adaptive: bool = True,
    target: float = 0.9,
    slo_window: float = 5.0,
    guards: RecalGuards | None = None,
    limits: ControllerLimits | None = None,
    truth_cpu: float = 1.0,
    truth_gpu: float = 1.0,
    truth_dict: float = 1.0,
    service_scale: float = 1.0,
    max_in_flight: int | None = 64,
    min_window_count: int = 6,
    collector=None,
    metrics=None,
    on_time: Callable[[float], None] | None = None,
) -> ScenarioKit:
    """Wire one scenario engine on a stepped clock.

    ``lateness_factor`` seeds the admission scheduler (``inf`` = admit
    everything until the controller tightens).  ``truth_*`` set the
    initial drift between the estimator's models and reality.  With
    ``adaptive=False`` no plane is attached at all — the frozen-model
    baseline arm.
    """
    config = paper_system_config(
        include_32gb=False,
        scheduler_factory=lambda *args: AdmissionControlScheduler(
            *args, lateness_factor=lateness_factor
        ),
        time_constraint=time_constraint,
    )
    if translation_workers != config.translation_workers:
        config = replace(config, translation_workers=translation_workers)
    timing = config.device.timing
    if not isinstance(timing, LinearColumnTiming):
        # the default device times by memory bandwidth; scenarios need
        # the refittable per-SM linear family, so fall back to the
        # published Tesla C2070 lines
        timing = TESLA_C2070_TIMING
    bundle = ModelBundle(
        cpu=config.cpu_model, dict_model=config.dict_model, gpu=timing
    )
    if service_scale != 1.0:
        bundle = scale_bundle(bundle, service_scale)
    estimator = ScenarioEstimator(config, bundle)
    clock = SteppedClock()
    truth = TruthWorld(estimator.features, bundle)
    truth.set_drift(cpu=truth_cpu, gpu=truth_gpu, dict_=truth_dict)
    executor = TruthExecutor(clock, truth)
    plane = None
    if adaptive:
        plane = AdaptivePlane(
            target=target,
            window=slo_window,
            guards=guards if guards is not None else _SCENARIO_GUARDS,
            limits=limits if limits is not None else _SCENARIO_LIMITS,
            min_window_count=min_window_count,
        )
    engine = ServeEngine(
        config,
        clock=clock,
        executor=executor,
        estimator=estimator,
        collector=collector,
        metrics=metrics,
        max_in_flight=max_in_flight,
        adapt=plane,
    ).start()
    driver = ScenarioDriver(engine, clock, truth=truth)
    return ScenarioKit(
        config=config,
        clock=clock,
        truth=truth,
        executor=executor,
        estimator=estimator,
        plane=plane,
        engine=engine,
        driver=driver,
        arrivals=arrivals,
        on_time=on_time,
    )


#: scenario-scale guard/limit presets: small windows so refits and
#: reconfigurations happen within a few hundred scripted queries
_SCENARIO_GUARDS = RecalGuards(
    min_samples=16, min_r2=0.5, max_step=0.5, refit_interval=24, window=128
)
_SCENARIO_LIMITS = ControllerLimits(
    min_lateness_factor=0.02,
    max_lateness_factor=2.0,
    tighten_factor=0.05,
    cooldown=0.25,
    hysteresis=0.02,
    max_reconfigs=64,
)


def _workload_entries(
    n: int, times: list[float], *, text_prob: float = 0.2, seed: int = 42
) -> list[TimedQuery]:
    stream = paper_workload(
        include_32gb=False, text_prob=text_prob, seed=seed
    ).generate(n)
    return retime(stream, times[:n])


def spike_scenario(
    *, adaptive: bool = True, collector=None, metrics=None, seed: int = 42
) -> ScenarioKit:
    """The headline: a 3x open-loop spike against a premium/batch mix.

    Load runs at 9 q/s for 8 s, spikes 3x to 27 q/s for 8 s, then
    recovers at 9 q/s for 14 s.  Service capacity is sized (via
    ``service_scale``) so the base load is comfortable and the spike is
    not — without shedding, queues grow without bound and the premium
    class breaches its 0.9 deadline SLO.  The adaptive arm must tighten
    admission (shedding provably-late work) and grow the translation
    pool fast enough that *completed* premium queries stay >= 0.9.
    """
    times = phase_times([(8.0, 9.0), (8.0, 27.0), (14.0, 9.0)])
    entries = _tenants(
        _workload_entries(len(times), times, text_prob=0.15, seed=seed),
        ("premium", "batch"),
    )
    return build_kit(
        arrivals=entries,
        adaptive=adaptive,
        time_constraint=0.4,
        slo_window=1.0,
        service_scale=17.0,
        collector=collector,
        metrics=metrics,
    )


def regime_shift_scenario(
    *, adaptive: bool = True, shift_at: float = 10.0, growth: float = 1.8,
    collector=None, metrics=None, seed: int = 7
) -> ScenarioKit:
    """Data growth mid-run: true GPU/CPU times jump by ``growth``.

    Before the shift the models are exact; after it every estimate is
    low by the growth factor.  The recalibrator must walk the installed
    models toward the new truth (max-step clamped, so over several
    epochs)."""
    times = phase_times([(30.0, 12.0)])
    entries = _tenants(
        _workload_entries(len(times), times, text_prob=0.2, seed=seed),
        ("premium", "batch"),
    )
    kit = build_kit(
        arrivals=entries,
        adaptive=adaptive,
        time_constraint=0.3,
        slo_window=4.0,
        collector=collector,
        metrics=metrics,
    )

    def on_time(t: float) -> None:
        if t >= shift_at:
            kit.truth.set_drift(cpu=growth, gpu=growth)

    kit.on_time = on_time
    return kit


def diurnal_scenario(
    *, adaptive: bool = True, collector=None, metrics=None, seed: int = 11
) -> ScenarioKit:
    """A slow wave: quiet -> busy -> peak -> busy -> quiet.

    The controller may act near the peak but must not thrash: the
    cooldown and hysteresis bounds keep the reconfiguration count far
    below one action per SLO event."""
    times = phase_times(
        [(5.0, 6.0), (5.0, 12.0), (6.0, 20.0), (5.0, 12.0), (5.0, 6.0)]
    )
    entries = _tenants(
        _workload_entries(len(times), times, text_prob=0.15, seed=seed),
        ("premium", "batch"),
    )
    return build_kit(
        arrivals=entries,
        adaptive=adaptive,
        time_constraint=0.4,
        slo_window=1.0,
        service_scale=17.0,
        collector=collector,
        metrics=metrics,
    )


def adversary_scenario(
    *, adaptive: bool = True, collector=None, metrics=None, seed: int = 13
) -> ScenarioKit:
    """Estimate poisoning: truth decouples 8x from the models mid-run
    and the feedback channel is additionally salted with non-finite
    samples (injected by the test via ``plane.on_feedback``).  The
    guards must hold: every installed epoch stays inside the max-step
    clamp and poisoned samples never reach a window."""
    times = phase_times([(24.0, 10.0)])
    entries = _tenants(
        _workload_entries(len(times), times, text_prob=0.25, seed=seed),
        ("premium", "batch"),
    )
    kit = build_kit(
        arrivals=entries,
        adaptive=adaptive,
        time_constraint=0.3,
        slo_window=4.0,
        collector=collector,
        metrics=metrics,
    )

    def on_time(t: float) -> None:
        if t >= 8.0:
            kit.truth.set_drift(cpu=8.0, gpu=8.0, dict_=8.0)

    kit.on_time = on_time
    return kit


def multi_tenant_scenario(
    *, adaptive: bool = True, collector=None, metrics=None, seed: int = 17
) -> ScenarioKit:
    """Three tenant classes (premium/standard/batch) sharing the engine
    through one load hump; per-class deadline-hit accounting comes from
    the :class:`~repro.adapt.scenario.ScenarioResult`."""
    times = phase_times([(6.0, 8.0), (6.0, 20.0), (8.0, 8.0)])
    entries = _tenants(
        _workload_entries(len(times), times, text_prob=0.15, seed=seed),
        ("premium", "standard", "batch"),
    )
    return build_kit(
        arrivals=entries,
        adaptive=adaptive,
        time_constraint=0.4,
        slo_window=1.0,
        service_scale=17.0,
        collector=collector,
        metrics=metrics,
    )
