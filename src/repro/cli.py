"""Command-line interface: ``python -m repro <command>``.

Subcommands mirror the life-cycle of a hybrid OLAP deployment:

- ``generate``  — synthesise a TPC-DS-flavoured database directory
  (fact table + vocabularies);
- ``build``     — pre-calculate a cube pyramid for a measure and store
  it next to the table (the database-build step of Section III-F);
- ``query``     — answer one textual query from a database directory,
  on the CPU cube path, the simulated GPU path, or both (cross-checked);
- ``simulate``  — run a Section-IV experiment (table1/table2/table3/
  gpu-only) at paper scale and print the report.

Each command is a plain function over parsed arguments, so the test
suite drives them in-process (no subprocess fixtures needed).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.errors import ReproError

__all__ = ["main", "build_parser"]


# -- commands ------------------------------------------------------------


def cmd_generate(args: argparse.Namespace) -> int:
    from repro.io import save_dataset
    from repro.relational import generate_dataset, tpcds_like_schema

    schema = tpcds_like_schema(scale=args.scale)
    dataset = generate_dataset(schema, num_rows=args.rows, seed=args.seed)
    directory = save_dataset(dataset, args.directory)
    print(f"wrote {dataset.table.num_rows} rows, "
          f"{schema.total_columns} columns to {directory}")
    for spec in schema.text_columns:
        print(f"  text column {spec.name}: "
              f"{len(dataset.vocabularies[spec.name])} dictionary entries")
    return 0


def cmd_build(args: argparse.Namespace) -> int:
    from repro.io import load_table, save_pyramid
    from repro.olap import CubePyramid
    from repro.units import fmt_bytes

    table = load_table(args.directory)
    if args.measure not in table.schema.measures:
        raise ReproError(
            f"unknown measure {args.measure!r}; table has {table.schema.measures}"
        )
    resolutions = [int(r) for r in args.resolutions.split(",")]
    pyramid = CubePyramid.from_fact_table(table, args.measure, resolutions)
    save_pyramid(pyramid, args.directory)
    print(f"built pyramid for {args.measure!r}: {len(pyramid.levels)} levels, "
          f"{fmt_bytes(pyramid.total_nbytes)}")
    for level in pyramid.levels:
        print(f"  resolutions {level.resolutions}: "
              f"{fmt_bytes(pyramid.level_nbytes(level))}")
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.gpu import SimulatedGPU
    from repro.io import load_dataset, load_pyramid
    from repro.query.parser import parse_query
    from repro.text import TranslationService, build_dictionaries
    from repro.units import GB

    dataset = load_dataset(args.directory)
    table = dataset.table
    hierarchies = table.schema.hierarchies
    query = parse_query(args.query, hierarchies)

    if query.needs_translation:
        translator = TranslationService(
            build_dictionaries(dataset.vocabularies), hierarchies
        )
        result = translator.translate(query)
        query = result.query
        print(f"translated {result.parameters_translated} text parameter(s)")

    if query.group_by:
        return _grouped_query(args, dataset, query)

    answers = {}
    if args.path in ("cpu", "both"):
        pyramid = load_pyramid(args.directory, args.measure)
        answers["cpu-cube"] = pyramid.answer(query)
    if args.path in ("gpu", "both"):
        device = SimulatedGPU(global_memory_bytes=8 * GB)
        device.load_table(table)
        execution = device.execute_query(query, n_sm=args.sms)
        answers["gpu"] = execution.value
        print(f"gpu: scanned {execution.column_fraction:.0%} of columns in "
              f"{execution.simulated_time * 1e3:.2f} ms (simulated, {args.sms} SMs)")
    reference = table.execute(query).value()
    answers["reference-scan"] = reference

    for path, value in answers.items():
        print(f"  {path:<15s}: {value:,.4f}")
    for value in answers.values():
        if not np.isclose(value, reference, equal_nan=True):
            print("ANSWER MISMATCH across paths", file=sys.stderr)
            return 1
    return 0


def _grouped_query(args: argparse.Namespace, dataset, query) -> int:
    """Grouped-query branch of ``repro query``: print one row per group."""
    import numpy as np

    from repro.gpu import SimulatedGPU
    from repro.groupby import groupby_from_table
    from repro.units import GB

    table = dataset.table
    reference = groupby_from_table(table, query)
    results = {"reference-scan": reference}
    if args.path in ("gpu", "both"):
        device = SimulatedGPU(global_memory_bytes=8 * GB)
        device.load_table(table)
        gpu_result, elapsed = device.execute_groupby(query, n_sm=args.sms)
        results["gpu"] = gpu_result
        print(f"gpu: {elapsed * 1e3:.2f} ms (simulated, {args.sms} SMs)")
    if args.path in ("cpu", "both"):
        from repro.io import load_pyramid

        pyramid = load_pyramid(args.directory, args.measure)
        results["cpu-cube"] = pyramid.answer_grouped(query)

    labels = ", ".join(f"{dim}@{res}" for dim, res in query.group_by)
    print(f"groups by ({labels}):")
    for coords, value in sorted(reference.cells.items())[: args.limit]:
        print(f"  {coords}: {value:,.4f}")
    if reference.num_groups > args.limit:
        print(f"  ... {reference.num_groups - args.limit} more groups")
    for name, result in results.items():
        if result.cells.keys() != reference.cells.keys() or any(
            not np.isclose(result.cells[k], v, equal_nan=True)
            for k, v in reference.cells.items()
        ):
            print(f"ANSWER MISMATCH on path {name}", file=sys.stderr)
            return 1
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    from repro.paper import (
        TABLE3_TEXT_PROB,
        cpu_only_config,
        gpu_only_config,
        paper_system_config,
        paper_workload,
    )
    from repro.query.workload import ArrivalProcess
    from repro.sim import HybridSystem, TraceCollector
    from repro.sim.capacity import max_sustainable_rate

    collector = TraceCollector() if args.trace is not None else None
    registry = snapshots = None
    if args.metrics_snapshots is not None:
        from repro.metrics import MetricsRegistry, SnapshotWriter

        registry = MetricsRegistry()
        # simulated seconds: paper runs span minutes of virtual time
        snapshots = SnapshotWriter(
            registry, path=args.metrics_snapshots, interval=1.0
        )
    tracer = None
    if args.spans is not None:
        from repro.obs import SpanTracer

        tracer = SpanTracer(args.span_sample, seed=args.seed, process="sim")

    if args.experiment == "table1":
        config = cpu_only_config(threads=args.threads, include_32gb=False)
        workload = paper_workload(include_32gb=False, seed=args.seed)
    elif args.experiment == "table2":
        config = cpu_only_config(threads=args.threads, include_32gb=True)
        workload = paper_workload(include_32gb=True, seed=args.seed)
    elif args.experiment == "gpu-only":
        config = gpu_only_config()
        workload = paper_workload(include_32gb=True, text_prob=1.0, seed=args.seed)
    else:  # table3
        config = paper_system_config(threads=args.threads, include_32gb=True)
        workload = paper_workload(
            include_32gb=True, text_prob=TABLE3_TEXT_PROB, seed=args.seed
        )

    submitted: list[int] = []
    if args.experiment == "table3":
        result = max_sustainable_rate(
            config, workload, n_queries=args.queries, hit_target=0.9
        )
        report = result.report
        print(f"max sustainable rate: {result.rate:.1f} q/s offered")
        if collector is not None or registry is not None or tracer is not None:
            if collector is not None:
                # probe-history telemetry: how the bisection reached its answer
                print(result.explain())
            # replay the best sustained probe with observability attached —
            # the workload stream for (spec, n, rate) is deterministic, so
            # this reproduces the reported run exactly
            stream = workload.generate(
                args.queries, ArrivalProcess("uniform", rate=result.rate)
            )
            submitted = [tq.query.query_id for tq in stream]
            report = HybridSystem(config).run(
                stream,
                collector=collector,
                metrics=registry,
                snapshots=snapshots,
                obs=tracer,
            )
    else:
        stream = workload.generate(args.queries)
        submitted = [tq.query.query_id for tq in stream]
        report = HybridSystem(config).run(
            stream,
            collector=collector,
            metrics=registry,
            snapshots=snapshots,
            obs=tracer,
        )
    print(report.summary())
    if collector is not None:
        from repro.report import render_dashboard
        from repro.sim import assert_trace_valid

        assert_trace_valid(report, collector)
        n_lines = collector.write_jsonl(args.trace)
        counts = ", ".join(
            f"{kind}={n}" for kind, n in sorted(collector.event_counts().items())
        )
        print(f"\ntrace: {n_lines} JSONL records -> {args.trace}")
        print(f"trace events: {counts}")
        print(render_dashboard(report, collector, width=64))
    if registry is not None:
        from repro.report import render_metrics_dashboard
        from repro.sim.validate import assert_metrics_valid

        assert_metrics_valid(report, snapshots.snapshots[-1])
        print(
            f"\nmetrics: {len(snapshots.snapshots)} snapshots -> "
            f"{args.metrics_snapshots}"
        )
        print(render_metrics_dashboard(snapshots.snapshots, width=64))
    if tracer is not None:
        from repro.obs import write_trace
        from repro.report import render_spans
        from repro.sim.validate import assert_spans_valid

        spans = assert_spans_valid(
            tracer.spans(),
            report=report,
            collector=collector,
            seed=args.seed,
            sample_rate=args.span_sample,
            submitted=submitted,
        )
        n_events = write_trace(args.spans, spans)
        print(
            f"\nspans: {len(spans)} spans over {tracer.sampled_count} "
            f"sampled trace(s) ({n_events} Perfetto events) -> {args.spans}"
        )
        if spans:
            print(render_spans(spans))
    return 0


#: ``--scheduler`` choices for ``repro serve`` -> scheduler factory
def _serve_scheduler_factory(name: str):
    from repro.core.admission import AdmissionControlScheduler
    from repro.core.baselines import FastestFirstScheduler, GPUOnlyScheduler
    from repro.core.scheduler import HybridScheduler

    return {
        "hybrid": HybridScheduler,
        "gpu-only": GPUOnlyScheduler,
        "fastest-first": FastestFirstScheduler,
        "admission": AdmissionControlScheduler,
    }[name]


def cmd_serve(args: argparse.Namespace) -> int:
    """Serve a live workload in wall-clock time (the ``repro.serve`` plane).

    Unlike ``simulate`` this executes *real* work — cube aggregations,
    kernel-substitute scans, dictionary lookups — against a laptop-sized
    materialised world built in-process, then reports realised q/s per
    partition in the layout of the paper's Table 3 and audits the run
    with the same invariant families as simulated runs.
    """
    import math

    from repro.core.perfmodel import XEON_X5667_8T
    from repro.gpu import SimulatedGPU
    from repro.gpu.partitioning import paper_partition_scheme
    from repro.gpu.timing import TESLA_C2070_TIMING
    from repro.olap import CubePyramid
    from repro.query.workload import ArrivalProcess, QueryClass, WorkloadSpec
    from repro.relational import generate_dataset, tpcds_like_schema
    from repro.serve import OpenLoopGenerator, ServeEngine
    from repro.sim import TraceCollector
    from repro.sim.system import SystemConfig
    from repro.sim.validate import assert_trace_valid, assert_valid
    from repro.text import TranslationService, build_dictionaries
    from repro.units import GB

    # metrics plane first: the scrape endpoint comes up before the world
    # build, so an operator (or the CI curl loop) can poll it immediately
    # even while the dataset is still being materialised
    metrics_enabled = (
        args.metrics_port is not None
        or args.metrics_snapshots is not None
        or args.slo is not None
        or args.adapt
    )
    registry = exporter = slo = snapshots = None
    if metrics_enabled:
        from repro.metrics import (
            MetricsExporter,
            MetricsRegistry,
            SloMonitor,
            SnapshotWriter,
        )

        registry = MetricsRegistry()
        snapshots = SnapshotWriter(
            registry,
            path=args.metrics_snapshots,
            interval=max(args.duration / 64.0, 0.05),
        )
        if args.slo is not None:
            slo = SloMonitor(target=args.slo, registry=registry)
        if args.metrics_port is not None:
            exporter = MetricsExporter(registry, port=args.metrics_port)
            exporter.start()
            print(f"metrics: Prometheus text at {exporter.url}")

    # a self-contained materialised world (same shape as the test suite's)
    schema = tpcds_like_schema(scale=0.5)
    dataset = generate_dataset(schema, num_rows=args.rows, seed=args.seed)
    pyramid = CubePyramid.from_fact_table(dataset.table, "sales_price", [0, 1, 2])
    translator = TranslationService(
        build_dictionaries(dataset.vocabularies), schema.hierarchies
    )
    device = SimulatedGPU(global_memory_bytes=GB, timing=TESLA_C2070_TIMING)
    device.load_table(dataset.table)
    config = SystemConfig(
        cpu_model=XEON_X5667_8T.with_overhead(0.002),
        pyramid=pyramid,
        device=device,
        scheme=paper_partition_scheme(),
        translation_service=translator,
        time_constraint=args.time_constraint,
        scheduler_factory=_serve_scheduler_factory(args.scheduler),
        translation_workers=args.translation_workers,
    )
    workload = WorkloadSpec(
        schema.dimensions,
        [
            QueryClass("small", 0.6, resolution=1, coverage=(0.1, 0.5)),
            QueryClass(
                "mid",
                0.25,
                resolution=2,
                dims_constrained=(1, 2),
                coverage=(0.5, 1.0),
                text_prob=0.5,
            ),
            QueryClass("fine", 0.15, resolution=3, coverage=(0.2, 0.8)),
        ],
        measures=("sales_price",),
        text_levels=list(schema.text_levels),
        vocabularies=dataset.vocabularies,
        seed=args.seed,
    )
    n_queries = max(1, math.ceil(args.duration * args.rate))
    stream = workload.generate(
        n_queries, ArrivalProcess("poisson", rate=args.rate)
    )

    adapt_plane = None
    if args.adapt:
        from repro.adapt import AdaptivePlane

        adapt_plane = AdaptivePlane(
            target=args.slo if args.slo is not None else 0.9,
            window=max(args.duration / 4.0, 1.0),
        )

    tracer = None
    if args.spans is not None:
        from repro.obs import SpanTracer

        tracer = SpanTracer(args.span_sample, seed=args.seed, process="serve")

    collector = TraceCollector(sample_series=args.trace is not None)
    engine = ServeEngine(
        config,
        collector=collector,
        metrics=registry,
        slo=slo,
        snapshots=snapshots,
        exporter=exporter,  # engine-owned: the port is released at stop()
        max_in_flight=args.max_in_flight,
        cpu_threads=args.cpu_threads,
        adapt=adapt_plane,
        spans=tracer,
    )
    print(
        f"serving {n_queries} queries over ~{args.duration:.0f}s at "
        f"{args.rate:.0f} q/s offered ({args.scheduler} scheduler, "
        f"{args.rows} rows)..."
    )
    try:
        with engine:  # start; drain on exit
            load = OpenLoopGenerator(
                engine, shed=True, batch_size=args.batch_size
            ).run(stream)
        report = engine.report()

        # audit the live run with the simulation invariant checker
        assert_valid(report, require_drained=True)
        assert_trace_valid(report, collector)
        if adapt_plane is not None:
            from repro.sim.validate import assert_adapt_valid

            assert_adapt_valid(adapt_plane.report())
        if registry is not None:
            from repro.sim.validate import assert_metrics_valid

            assert_metrics_valid(report, registry.collect(engine.elapsed))
    finally:
        if exporter is not None:
            exporter.stop()

    print(
        f"offered {load.offered} | accepted {load.accepted} | "
        f"rejected {load.rejected} | shed {load.shed} "
        f"(wall time {load.duration:.2f}s)"
    )
    print()
    print(report.summary())
    print()
    print("Table 3 (wall-clock):")
    print(f"  {'partition':<12s}{'queries':>8s}{'q/s':>8s}{'util':>7s}")
    for target in sorted(report.timelines):
        # realised jobs per station (counts translation work on Q_TRANS,
        # which never appears as a record's final target)
        count = len(report.timelines[target])
        rate = count / report.makespan if report.makespan > 0 else 0.0
        util = report.utilisations.get(target, 0.0)
        print(f"  {target:<12s}{count:>8d}{rate:>8.1f}{100 * util:>6.0f}%")
    print(f"  {'CPU total':<12s}{'':>8s}{report.target_rate('Q_CPU'):>8.1f}")
    print(f"  {'GPU total':<12s}{'':>8s}{report.target_rate('Q_G'):>8.1f}")
    print(f"  {'overall':<12s}{'':>8s}{report.queries_per_second:>8.1f}")

    if args.trace is not None:
        n_lines = collector.write_jsonl(args.trace)
        counts = ", ".join(
            f"{kind}={n}" for kind, n in sorted(collector.event_counts().items())
        )
        print(f"\ntrace: {n_lines} JSONL records -> {args.trace}")
        print(f"trace events: {counts}")
    if tracer is not None:
        from repro.obs import write_trace
        from repro.report import render_spans
        from repro.sim.validate import assert_spans_valid

        # no sampling-exactness context here: an open-loop generator may
        # shed arrivals before the engine ever sees them, so the traced
        # set is a subset of the stream's head-sampled ids by design
        spans = assert_spans_valid(
            tracer.spans(), report=report, collector=collector
        )
        n_events = write_trace(args.spans, spans)
        print(
            f"\nspans: {len(spans)} spans over {tracer.sampled_count} "
            f"sampled trace(s) ({n_events} Perfetto events) -> {args.spans}"
        )
        if spans:
            print(render_spans(spans))
    if registry is not None:
        from repro.report import render_metrics_dashboard

        print()
        print(render_metrics_dashboard(snapshots.snapshots, width=64))
        if args.metrics_snapshots is not None:
            print(
                f"metrics: {len(snapshots.snapshots)} snapshots -> "
                f"{args.metrics_snapshots}"
            )
    if slo is not None:
        crossings = ", ".join(
            f"{e.kind}@{e.time:.2f}s" for e in slo.events
        ) or "none"
        print(
            f"SLO: hit rate {slo.hit_rate:.3f} vs target {slo.target:.2f} "
            f"(burn {slo.burn_rate:.2f}, crossings: {crossings})"
        )
    if adapt_plane is not None:
        adapt_report = adapt_plane.report()
        refits = sum(1 for e in adapt_report.epochs if e.trigger == "refit")
        print(
            f"adapt: repro_adapt_model_epoch "
            f"{adapt_report.epochs[-1].version} ({refits} refits, "
            f"{adapt_report.samples_ingested} samples, "
            f"{adapt_report.poisoned} poisoned), "
            f"{len(adapt_report.reconfigs)} reconfigurations"
        )
        for epoch in adapt_report.epochs:
            if epoch.trigger == "refit":
                print(
                    f"  epoch@{epoch.time:.2f}s v{epoch.version} refit "
                    f"{'+'.join(epoch.families)} "
                    f"(clamped: {len(epoch.clamped)})"
                )
        for rec in adapt_report.reconfigs:
            print(
                f"  reconfiguration@{rec.time:.2f}s {rec.action} "
                f"{rec.value_before} -> {rec.value_after} ({rec.trigger})"
            )
    return 0


def cmd_fleet(args: argparse.Namespace) -> int:
    """Shard the serving plane across worker processes (``repro.fleet``).

    Spawns ``--shards`` worker processes (each a full serving engine over
    its own replica of the materialised world), puts the HTTP front door
    in front of them, and serves until ``--duration`` elapses or a
    SIGINT/SIGTERM arrives — either way the fleet drains gracefully,
    merges the per-shard books, and audits them with
    :func:`repro.sim.validate.validate_fleet` before exiting 0.
    """
    import signal
    import threading
    import time

    from repro.fleet import Fleet, FleetServer, ShardSpec
    from repro.sim import assert_fleet_valid

    tracer = None
    if args.spans is not None:
        from repro.obs import SpanTracer

        tracer = SpanTracer(
            args.span_sample, seed=args.seed, process="frontdoor"
        )
    spec = ShardSpec(
        shard_id=0,
        rows=args.rows,
        seed=args.seed,
        scheduler=args.scheduler,
        time_constraint=args.time_constraint,
        cpu_threads=args.cpu_threads,
        translation_workers=args.translation_workers,
        max_in_flight=args.max_in_flight,
        span_sample=args.span_sample if args.spans is not None else 0.0,
    )
    stop = threading.Event()
    previous_handlers = {
        signum: signal.signal(signum, lambda *_: stop.set())
        for signum in (signal.SIGINT, signal.SIGTERM)
    }

    print(
        f"spawning {args.shards} shard(s) "
        f"({args.rows} rows each, {args.scheduler} scheduler)..."
    )
    fleet = Fleet(args.shards, spec=spec, spans=tracer)
    fleet.start()
    server = FleetServer(fleet, port=args.port)
    server.start()
    print(
        f"fleet front door: {server.url} "
        "(POST /query, GET /metrics /report /health)"
    )
    print(f"shards live: {list(fleet.alive)}")
    try:
        deadline = (
            None if args.duration is None else time.monotonic() + args.duration
        )
        while not stop.is_set():
            if deadline is not None and time.monotonic() >= deadline:
                break
            stop.wait(timeout=0.25)
            crashed = fleet.check()
            if crashed and not fleet.alive:
                print("error: every shard has crashed", file=sys.stderr)
                break
    finally:
        for signum, handler in previous_handlers.items():
            signal.signal(signum, handler)
        server.close()
        report = fleet.fleet_report(drain=True)

    print()
    print(report.summary())
    for shard in report.shards:
        print(
            f"  shard {shard.shard_id}: {len(shard.records)} completed, "
            f"{len(shard.cache_hits)} cache hits, {shard.rejected} rejected "
            f"| local audit: {shard.validation}"
        )
    if report.crashed:
        print(
            f"warning: shard(s) {list(report.crashed)} crashed; "
            "fleet report is partial",
            file=sys.stderr,
        )
    assert_fleet_valid(report)
    print("fleet audit: ok (fleet checked)")
    if tracer is not None:
        from repro.obs import write_trace
        from repro.report import render_spans
        from repro.sim.validate import assert_spans_valid

        spans = assert_spans_valid(report.spans)
        n_events = write_trace(args.spans, spans)
        processes = len({s.process for s in spans})
        print(
            f"spans: {len(spans)} stitched spans across {processes} "
            f"process(es) ({n_events} Perfetto events) -> {args.spans}"
        )
        if spans:
            print(render_spans(spans))
    return 1 if report.crashed else 0


# -- parser ------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Hybrid GPU-accelerated OLAP system (Malik et al. 2012 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("generate", help="synthesise a database directory")
    p.add_argument("directory", type=Path)
    p.add_argument("--rows", type=int, default=100_000)
    p.add_argument("--scale", type=float, default=0.5)
    p.add_argument("--seed", type=int, default=2012)
    p.set_defaults(func=cmd_generate)

    p = sub.add_parser("build", help="pre-calculate a cube pyramid")
    p.add_argument("directory", type=Path)
    p.add_argument("--measure", default="sales_price")
    p.add_argument("--resolutions", default="0,1,2",
                   help="comma-separated uniform resolutions")
    p.set_defaults(func=cmd_build)

    p = sub.add_parser("query", help="answer one textual query")
    p.add_argument("directory", type=Path)
    p.add_argument("query", help="e.g. \"SELECT sum(sales_price) WHERE date.year = 1\"")
    p.add_argument("--path", choices=("cpu", "gpu", "both"), default="both")
    p.add_argument("--measure", default="sales_price")
    p.add_argument("--sms", type=int, default=4)
    p.add_argument("--limit", type=int, default=20,
                   help="max groups printed for grouped queries")
    p.set_defaults(func=cmd_query)

    p = sub.add_parser("simulate", help="run a Section-IV experiment")
    p.add_argument(
        "experiment", choices=("table1", "table2", "table3", "gpu-only")
    )
    p.add_argument("--threads", type=int, default=8, choices=(1, 4, 8))
    p.add_argument("--queries", type=int, default=1500)
    p.add_argument("--seed", type=int, default=42)
    p.add_argument("--trace", type=Path, default=None, metavar="PATH",
                   help="write a JSONL lifecycle trace + partition telemetry "
                        "to PATH and print the observability dashboard "
                        "(for table3: also the capacity probe history)")
    p.add_argument("--metrics-snapshots", type=Path, default=None, metavar="PATH",
                   help="attach the live metrics plane, write periodic JSONL "
                        "registry snapshots to PATH, reconcile them against "
                        "the report, and print the metrics dashboard")
    p.add_argument("--spans", type=Path, default=None, metavar="PATH",
                   help="attach the span tracer (repro.obs), validate the "
                        "span tree against the run books, and write a "
                        "Perfetto/Chrome trace-event JSON file to PATH")
    p.add_argument("--span-sample", type=float, default=1.0, metavar="R",
                   help="deterministic head-sampling rate for --spans "
                        "(0.0-1.0, default 1.0)")
    p.set_defaults(func=cmd_simulate)

    p = sub.add_parser(
        "serve",
        help="serve a live workload in wall-clock time (repro.serve)",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=(
            "flag summary:\n"
            "  --duration SECONDS        target serving window (default 5.0)\n"
            "  --rate Q_PER_S            offered Poisson arrival rate (default 50)\n"
            "  --scheduler NAME          hybrid | gpu-only | fastest-first | admission\n"
            "  --rows N                  fact-table rows for the in-process database\n"
            "  --seed N                  workload / dataset seed (default 2012)\n"
            "  --time-constraint T_C     per-query deadline in seconds (default 0.5)\n"
            "  --cpu-threads N           ParallelAggregator threads (default 4)\n"
            "  --translation-workers N   text-translation pool size (default 1)\n"
            "  --max-in-flight N         admission bound; excess is shed (default 256)\n"
            "  --batch-size N            admit arrivals in vectorised batches of N\n"
            "  --trace PATH              JSONL lifecycle trace (repro.sim.obs)\n"
            "  --metrics-port N          live Prometheus text endpoint (0 = any port)\n"
            "  --metrics-snapshots PATH  periodic JSONL registry snapshots\n"
            "  --slo TARGET              windowed deadline-SLO burn monitor\n"
            "  --spans PATH              Perfetto span trace (repro.obs); every\n"
            "                            stage of each sampled query as one tree\n"
            "  --span-sample R           deterministic head-sampling rate for\n"
            "                            --spans (default 1.0)\n"
            "  --adapt                   attach the adapt plane: online model\n"
            "                            recalibration + SLO-driven capacity control\n"
            "\n"
            "The metrics flags attach the live metrics plane (tutorial section 8);\n"
            "the final snapshot is reconciled against the run report by\n"
            "repro.sim.validate.validate_metrics.  --spans records one span tree\n"
            "per head-sampled query (tutorial section 15), audited by\n"
            "repro.sim.validate.validate_spans.  --adapt defends the --slo\n"
            "target (default 0.9) and prints every installed model epoch and\n"
            "capacity reconfiguration; the history is audited by\n"
            "repro.sim.validate.validate_adapt."
        ),
    )
    p.add_argument("--duration", type=float, default=5.0,
                   help="target serving window in seconds")
    p.add_argument("--rate", type=float, default=50.0,
                   help="offered Poisson arrival rate (queries/second)")
    p.add_argument(
        "--scheduler",
        choices=("hybrid", "gpu-only", "fastest-first", "admission"),
        default="hybrid",
    )
    p.add_argument("--rows", type=int, default=10_000,
                   help="fact-table rows for the in-process database")
    p.add_argument("--seed", type=int, default=2012)
    p.add_argument("--time-constraint", type=float, default=0.5,
                   help="per-query deadline T_C in seconds")
    p.add_argument("--cpu-threads", type=int, default=4,
                   help="ParallelAggregator threads on the CPU partition")
    p.add_argument("--translation-workers", type=int, default=1)
    p.add_argument("--max-in-flight", type=int, default=256,
                   help="admission bound; excess arrivals are shed")
    p.add_argument("--batch-size", type=int, default=None, metavar="N",
                   help="buffer arrivals and admit them through one "
                        "vectorised schedule_batch pass per N queries")
    p.add_argument("--trace", type=Path, default=None, metavar="PATH",
                   help="write the JSONL lifecycle trace to PATH")
    p.add_argument("--metrics-port", type=int, default=None, metavar="N",
                   help="serve Prometheus text at http://127.0.0.1:N/metrics "
                        "for the duration of the run (0 = any free port)")
    p.add_argument("--metrics-snapshots", type=Path, default=None, metavar="PATH",
                   help="write periodic JSONL metrics snapshots to PATH")
    p.add_argument("--slo", type=float, default=None, metavar="TARGET",
                   help="monitor the windowed deadline hit rate against "
                        "TARGET (e.g. 0.9) and report burn + crossings")
    p.add_argument("--spans", type=Path, default=None, metavar="PATH",
                   help="attach the span tracer (repro.obs) and write a "
                        "Perfetto/Chrome trace-event JSON file to PATH")
    p.add_argument("--span-sample", type=float, default=1.0, metavar="R",
                   help="deterministic head-sampling rate for --spans "
                        "(0.0-1.0, default 1.0)")
    p.add_argument("--adapt", action="store_true",
                   help="attach the adapt plane (repro.adapt): online model "
                        "recalibration plus an SLO-driven capacity controller "
                        "defending the --slo target (default 0.9)")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "fleet",
        help="shard the serving plane across worker processes (repro.fleet)",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=(
            "flag summary:\n"
            "  --shards N                worker processes to spawn (default 2)\n"
            "  --port N                  front-door HTTP port (0 = any free port)\n"
            "  --duration SECONDS        serve window; omit to run until SIGTERM\n"
            "  --rate/--rows/--seed/--scheduler/--time-constraint/\n"
            "  --cpu-threads/--translation-workers/--max-in-flight\n"
            "                            per-shard world knobs, as in `repro serve`\n"
            "  --spans PATH              fleet-wide Perfetto span trace: the\n"
            "                            front door stamps a traceparent on\n"
            "                            every sampled query frame and the\n"
            "                            drained shards' spans are stitched\n"
            "                            into one tree per query\n"
            "  --span-sample R           deterministic head-sampling rate for\n"
            "                            --spans (default 1.0)\n"
            "\n"
            "SIGINT/SIGTERM drain the fleet gracefully: every shard finishes\n"
            "its in-flight queries, ships its records + metrics snapshot, and\n"
            "the merged books are audited by repro.sim.validate.validate_fleet\n"
            "before the process exits 0."
        ),
    )
    p.add_argument("--shards", type=int, default=2,
                   help="worker processes to spawn")
    p.add_argument("--port", type=int, default=0,
                   help="front-door HTTP port (0 = any free port)")
    p.add_argument("--duration", type=float, default=None,
                   help="serve window in seconds; omit to run until SIGTERM")
    p.add_argument(
        "--scheduler",
        choices=("hybrid", "gpu-only", "fastest-first", "admission"),
        default="hybrid",
    )
    p.add_argument("--rows", type=int, default=10_000,
                   help="fact-table rows in each shard's replica")
    p.add_argument("--seed", type=int, default=2012)
    p.add_argument("--time-constraint", type=float, default=0.5,
                   help="per-query deadline T_C in seconds")
    p.add_argument("--cpu-threads", type=int, default=2,
                   help="ParallelAggregator threads per shard")
    p.add_argument("--translation-workers", type=int, default=1)
    p.add_argument("--max-in-flight", type=int, default=256,
                   help="per-shard admission bound; excess is shed")
    p.add_argument("--spans", type=Path, default=None, metavar="PATH",
                   help="stitch a fleet-wide span trace and write it as "
                        "Perfetto/Chrome trace-event JSON to PATH")
    p.add_argument("--span-sample", type=float, default=1.0, metavar="R",
                   help="deterministic head-sampling rate for --spans "
                        "(0.0-1.0, default 1.0)")
    p.set_defaults(func=cmd_fleet)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
