"""The paper's primary contribution: performance models + scheduling.

- :mod:`repro.core.perfmodel` — the estimation-function families of
  Section III-B/D/E/F (piecewise power/linear CPU model, linear GPU
  model, linear dictionary model) with the paper's published
  coefficients as presets.
- :mod:`repro.core.calibration` — least-squares fitting of those
  families from measurements (how the paper derived Figures 4, 5, 8, 9).
- :mod:`repro.core.partitions` — partition queues with the
  :math:`T_Q` bookkeeping of Section III-G.
- :mod:`repro.core.scheduler` — the Figure-10 scheduling algorithm.
- :mod:`repro.core.feedback` — measured-vs-estimated runtime feedback.
- :mod:`repro.core.baselines` — MET/MCT/round-robin/CPU-only/GPU-only
  baseline schedulers for the ablation benchmarks.
"""

from repro.core.perfmodel import (
    PowerLawModel,
    LinearModel,
    PiecewiseModel,
    CPUPerfModel,
    DictPerfModel,
    XEON_X5667_4T,
    XEON_X5667_8T,
    XEON_X5667_1T_LEGACY,
    PAPER_DICT_MODEL,
)
from repro.core.partitions import PartitionQueue, QueueKind
from repro.core.scheduler import (
    HybridScheduler,
    ScheduleDecision,
    QueryEstimates,
    PerformanceEstimator,
)
from repro.core.feedback import FeedbackController
from repro.core.admission import AdmissionControlScheduler
from repro.core.baselines import (
    METScheduler,
    MCTScheduler,
    RoundRobinScheduler,
    CPUOnlyScheduler,
    GPUOnlyScheduler,
    FastestFirstScheduler,
)

__all__ = [
    "PowerLawModel",
    "LinearModel",
    "PiecewiseModel",
    "CPUPerfModel",
    "DictPerfModel",
    "XEON_X5667_4T",
    "XEON_X5667_8T",
    "XEON_X5667_1T_LEGACY",
    "PAPER_DICT_MODEL",
    "PartitionQueue",
    "QueueKind",
    "HybridScheduler",
    "ScheduleDecision",
    "QueryEstimates",
    "PerformanceEstimator",
    "FeedbackController",
    "AdmissionControlScheduler",
    "METScheduler",
    "MCTScheduler",
    "RoundRobinScheduler",
    "CPUOnlyScheduler",
    "GPUOnlyScheduler",
    "FastestFirstScheduler",
]
