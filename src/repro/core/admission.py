"""Admission control — load shedding on top of Figure 10.

Motivated by the ABL-FEEDBACK overload finding (EXPERIMENTS.md): beyond
capacity, Figure 10's step-6 fallback queues every query anyway, so
lateness cascades across *all* classes.  A deadline-oriented system
should instead refuse work it provably cannot serve in time.

:class:`AdmissionControlScheduler` extends the paper's scheduler with
one rule: when no partition makes the deadline (step 6 territory) *and*
even the best response overshoots the deadline by more than
``lateness_factor x T_C``, the query is rejected
(:class:`~repro.errors.AdmissionRejected`) instead of queued.  Queries
within the tolerance still take the paper's minimise-lateness path, so
with ``lateness_factor = inf`` the scheduler is exactly Figure 10.
"""

from __future__ import annotations

import math

from repro.core.scheduler import HybridScheduler
from repro.errors import AdmissionRejected, SchedulingError
from repro.query.model import Query

__all__ = ["AdmissionControlScheduler"]


class AdmissionControlScheduler(HybridScheduler):
    """Figure 10 with bounded-lateness admission.

    Parameters
    ----------
    lateness_factor:
        Maximum tolerated overshoot of the *estimated* best response
        beyond the deadline, as a multiple of the time constraint
        :math:`T_C`.  0.0 sheds everything that would miss; ``inf``
        disables shedding (pure Figure 10).
    """

    def __init__(self, *args, lateness_factor: float = 1.0, **kwargs):
        super().__init__(*args, **kwargs)
        if lateness_factor < 0:
            raise SchedulingError(
                f"lateness_factor must be >= 0, got {lateness_factor}"
            )
        self.lateness_factor = lateness_factor
        self.rejected_count = 0

    def choose(self, query: Query, est, response, deadline, now):
        if not math.isinf(self.lateness_factor):
            best_response = min(t_r for _, t_r in response)
            if best_response - deadline > self.lateness_factor * self.time_constraint:
                self.rejected_count += 1
                raise AdmissionRejected(query.query_id, best_response, deadline)
        return super().choose(query, est, response, deadline, now)
