"""Baseline and ablation schedulers.

The paper positions its algorithm against the fast heuristic
co-schedulers of the heterogeneous-computing literature (Section II-D):
*minimal execution time* (MET, Siegel & Ali [15]) and *minimal
completion time* (MCT, Braun et al. [2]).  This module implements both,
plus the structural ablations the benchmarks compare:

* :class:`METScheduler` — pick the partition with the smallest
  *processing* time, ignoring queue backlog entirely (works well only
  under light load, as the paper notes);
* :class:`MCTScheduler` — pick the smallest *completion* (response)
  time, i.e. backlog + processing, with no deadline logic;
* :class:`RoundRobinScheduler` — cycle through partitions, skipping
  ones that cannot process the query;
* :class:`CPUOnlyScheduler` / :class:`GPUOnlyScheduler` — single-
  resource modes used for Tables 1-2 and the GPU-only translation-
  overhead measurement (Section IV);
* :class:`FastestFirstScheduler` — the Figure-10 algorithm with step
  5's queue ordering reversed (fastest GPU partition first), isolating
  the value of the paper's slowest-first rule.

All share :class:`~repro.core.scheduler.BaseScheduler`'s queue
bookkeeping and translation handling, so throughput differences come
purely from placement policy.
"""

from __future__ import annotations

from repro.core.partitions import PartitionQueue, QueueKind
from repro.core.scheduler import BaseScheduler, HybridScheduler
from repro.errors import SchedulingError

__all__ = [
    "METScheduler",
    "MCTScheduler",
    "RoundRobinScheduler",
    "CPUOnlyScheduler",
    "GPUOnlyScheduler",
    "FastestFirstScheduler",
]


class METScheduler(BaseScheduler):
    """Minimal execution time: ignore load, minimise processing time."""

    def choose(self, query, est, response, deadline, now):
        best_queue: PartitionQueue | None = None
        best_exec = float("inf")
        by_queue = dict(response)
        for queue, _ in response:
            if queue.kind is QueueKind.CPU:
                exec_time = est.t_cpu if est.t_cpu is not None else float("inf")
            else:
                assert queue.n_sm is not None
                exec_time = est.gpu_time(queue.n_sm)
            if exec_time < best_exec:
                best_exec = exec_time
                best_queue = queue
        assert best_queue is not None
        return best_queue, by_queue[best_queue]


class MCTScheduler(BaseScheduler):
    """Minimal completion time: minimise response time (backlog aware)."""

    def choose(self, query, est, response, deadline, now):
        return min(response, key=lambda item: item[1])


class RoundRobinScheduler(BaseScheduler):
    """Cycle through CPU + GPU partitions regardless of cost."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._cursor = 0

    def choose(self, query, est, response, deadline, now):
        n = len(response)
        queue, t_r = response[self._cursor % n]
        self._cursor += 1
        return queue, t_r


class CPUOnlyScheduler(BaseScheduler):
    """Everything to the CPU OLAP partition (Tables 1-2 configuration).

    Queries the pyramid cannot answer are a scheduling error in this
    mode — the Table-1/2 workloads are constructed to stay answerable.
    """

    def choose(self, query, est, response, deadline, now):
        if est.t_cpu is None:
            raise SchedulingError(
                f"CPU-only mode cannot process query {query.query_id}: no "
                "pre-calculated cube reaches its resolution"
            )
        for queue, t_r in response:
            if queue.kind is QueueKind.CPU:
                return queue, t_r
        raise SchedulingError("CPU queue missing from response set")  # pragma: no cover


class GPUOnlyScheduler(BaseScheduler):
    """Everything to GPU partitions (the ~64 q/s measurement's mode).

    Uses the deadline-aware slowest-first placement of Figure 10 but
    with the CPU processing partition disabled.
    """

    def choose(self, query, est, response, deadline, now):
        gpu = [(q, t) for q, t in response if q.kind is QueueKind.GPU]
        if not gpu:
            raise SchedulingError(
                f"GPU-only mode cannot process query {query.query_id}: it has "
                "no GPU estimates"
            )
        in_bd = [(q, t) for q, t in gpu if t <= deadline]
        if in_bd:
            return in_bd[0]  # slowest first
        return min(gpu, key=lambda item: abs(deadline - item[1]))


class FastestFirstScheduler(HybridScheduler):
    """Figure 10 with the step-5 GPU search order reversed (ablation)."""

    def choose(self, query, est, response, deadline, now):
        p_bd = [(q, t_r) for q, t_r in response if t_r <= deadline]
        if p_bd:
            by_queue = dict(response)
            bd_names = {q.name for q, _ in p_bd}
            gpu_in_bd = [(q, t) for q, t in p_bd if q.kind is QueueKind.GPU]
            if self.cpu_queue.name in bd_names and est.t_cpu is not None and (
                not gpu_in_bd or est.t_cpu < est.fastest_gpu_time
            ):
                return self.cpu_queue, by_queue[self.cpu_queue]
            if gpu_in_bd:
                return gpu_in_bd[-1]  # fastest (most SMs) first
            return p_bd[0]  # pragma: no cover
        return min(response, key=lambda item: abs(deadline - item[1]))
