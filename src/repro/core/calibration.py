"""Fitting estimation functions from measurements.

The paper derives every model it publishes by benchmarking and
curve-fitting (*"The estimation functions f_A and f_B are chosen based
on best fit for a particular range"*, Section III-D; Figures 4, 5, 8, 9
show the fits).  This module reproduces that pipeline:

* :func:`fit_power_law` — log-log least squares for the :math:`f_A`
  (small sub-cube) regime;
* :func:`fit_linear` — ordinary least squares for the :math:`f_B`
  (streaming) regime and the GPU column-fraction lines;
* :func:`fit_piecewise_cpu` — the full eq.-4 model with the paper's
  512 MB breakpoint (or an automatically chosen one);
* :func:`fit_gpu_timing` — per-SM-count linear fits producing a
  :class:`~repro.gpu.timing.LinearColumnTiming` (Figure 8);
* :func:`fit_dict_cost` — the through-origin line of eq. 17 (Figure 9).

Every fit reports its coefficient of determination; degenerate inputs
raise :class:`~repro.errors.CalibrationError` rather than returning
garbage models that would silently corrupt scheduling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.errors import CalibrationError
from repro.core.perfmodel import (
    CPUPerfModel,
    DictPerfModel,
    LinearModel,
    PiecewiseModel,
    PowerLawModel,
    PAPER_RANGE_BREAK_MB,
)
from repro.gpu.timing import LinearColumnTiming

__all__ = [
    "FitResult",
    "fit_power_law",
    "fit_linear",
    "fit_piecewise_cpu",
    "fit_gpu_timing",
    "fit_dict_cost",
    "r_squared",
]


@dataclass(frozen=True)
class FitResult:
    """A fitted model with its goodness-of-fit."""

    model: object
    r2: float
    n_points: int


def _validate(x: Sequence[float], y: Sequence[float], min_points: int) -> tuple[np.ndarray, np.ndarray]:
    xa = np.asarray(x, dtype=float)
    ya = np.asarray(y, dtype=float)
    if xa.shape != ya.shape or xa.ndim != 1:
        raise CalibrationError(f"x and y must be equal-length 1-D, got {xa.shape} / {ya.shape}")
    if len(xa) < min_points:
        raise CalibrationError(f"need at least {min_points} measurements, got {len(xa)}")
    if not np.all(np.isfinite(xa)) or not np.all(np.isfinite(ya)):
        raise CalibrationError("measurements contain non-finite values")
    return xa, ya


def r_squared(y: np.ndarray, y_pred: np.ndarray) -> float:
    """Coefficient of determination; 1.0 for a perfect fit."""
    ss_res = float(np.sum((y - y_pred) ** 2))
    ss_tot = float(np.sum((y - np.mean(y)) ** 2))
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else 0.0
    return 1.0 - ss_res / ss_tot


def fit_power_law(x: Sequence[float], y: Sequence[float]) -> FitResult:
    """Least-squares :math:`y = a x^p` in log-log space (the f_A fit)."""
    xa, ya = _validate(x, y, min_points=3)
    if np.any(xa <= 0) or np.any(ya <= 0):
        raise CalibrationError("power-law fit requires strictly positive data")
    p, log_a = np.polyfit(np.log(xa), np.log(ya), 1)
    model = PowerLawModel(a=float(np.exp(log_a)), p=float(p))
    pred = np.array([model.time(v) for v in xa])
    return FitResult(model=model, r2=r_squared(ya, pred), n_points=len(xa))


def fit_linear(
    x: Sequence[float], y: Sequence[float], through_origin: bool = False
) -> FitResult:
    """Ordinary least squares :math:`y = a x + b` (the f_B / GPU fit)."""
    xa, ya = _validate(x, y, min_points=2)
    if through_origin:
        denom = float(np.dot(xa, xa))
        if denom == 0.0:
            raise CalibrationError("degenerate x for through-origin fit")
        a = float(np.dot(xa, ya) / denom)
        model = LinearModel(a=a, b=0.0)
        pred = np.array([model.time(v) for v in xa])
        # regression through the origin: centre-less R^2 (residuals vs
        # raw sum of squares), the standard convention for zero-intercept
        # models — the centred form is 0 whenever x has a single distinct
        # value even for a perfect proportional fit
        ss_tot = float(np.dot(ya, ya))
        if ss_tot == 0.0:
            r2 = 1.0 if float(np.sum((ya - pred) ** 2)) == 0.0 else 0.0
        else:
            r2 = 1.0 - float(np.sum((ya - pred) ** 2)) / ss_tot
        return FitResult(model=model, r2=r2, n_points=len(xa))
    if np.ptp(xa) == 0.0:
        raise CalibrationError("x values are all identical; cannot fit a line")
    a, b = np.polyfit(xa, ya, 1)
    model = LinearModel(a=float(a), b=float(b))
    pred = np.array([model.time(v) for v in xa])
    return FitResult(model=model, r2=r_squared(ya, pred), n_points=len(xa))


def _candidate_breakpoints(xa: np.ndarray) -> list[float]:
    """Midpoints between consecutive distinct sizes, in ascending order."""
    distinct = np.unique(xa)
    return [
        float((lo + hi) / 2.0) for lo, hi in zip(distinct[:-1], distinct[1:])
    ]


def _select_breakpoint(xa: np.ndarray, ya: np.ndarray) -> float:
    """Choose the feasible candidate breakpoint with the best joint fit.

    A candidate is *feasible* when it leaves >= 3 samples below and
    >= 2 at/above (the per-segment fitter minima).  When every candidate
    leaves all samples on one side — fewer than two distinct sizes, or
    duplicates so concentrated that no split reaches both minima — this
    raises :class:`~repro.errors.CalibrationError` instead of collapsing
    to a degenerate one-segment model.
    """
    best: tuple[float, float] | None = None  # (sse, breakpoint)
    for candidate in _candidate_breakpoints(xa):
        below = xa < candidate
        above = ~below
        if below.sum() < 3 or above.sum() < 2:
            continue
        try:
            fa = fit_power_law(xa[below], ya[below])
            fb = fit_linear(xa[above], ya[above])
        except CalibrationError:
            continue
        pred = np.concatenate(
            [
                np.array([fa.model.time(v) for v in xa[below]]),
                np.array([fb.model.time(v) for v in xa[above]]),
            ]
        )
        actual = np.concatenate([ya[below], ya[above]])
        sse = float(np.sum((actual - pred) ** 2))
        if best is None or sse < best[0]:
            best = (sse, candidate)
    if best is None:
        raise CalibrationError(
            "breakpoint auto-selection failed: all samples fall on one "
            "side of every candidate breakpoint (need >= 3 distinct "
            "sizes below and >= 2 at/above some split)"
        )
    return best[1]


def fit_piecewise_cpu(
    sizes_mb: Sequence[float],
    times: Sequence[float],
    breakpoint_mb: float | None = PAPER_RANGE_BREAK_MB,
    threads: int = 1,
    min_r2: float = 0.0,
) -> CPUPerfModel:
    """Fit the full eq.-4 CPU model from a processing-time sweep.

    Range A (< ``breakpoint_mb``) gets a power law, Range B a line —
    exactly the construction behind Figures 4 and 5.  ``min_r2`` lets a
    caller reject sloppy fits (the paper's published fits have visually
    tight residuals).

    ``breakpoint_mb=None`` auto-selects the breakpoint: every midpoint
    between consecutive distinct sizes is tried and the feasible split
    with the smallest joint squared error wins.  When no candidate is
    feasible — all samples fall on one side of every candidate — a
    :class:`~repro.errors.CalibrationError` is raised rather than
    returning a degenerate one-segment fit.
    """
    xa, ya = _validate(sizes_mb, times, min_points=5)
    if breakpoint_mb is None:
        breakpoint_mb = _select_breakpoint(xa, ya)
    below = xa < breakpoint_mb
    above = ~below
    if below.sum() < 3 or above.sum() < 2:
        raise CalibrationError(
            f"need >= 3 points below and >= 2 at/above the {breakpoint_mb} MB "
            f"breakpoint; got {int(below.sum())}/{int(above.sum())}"
        )
    fa = fit_power_law(xa[below], ya[below])
    fb = fit_linear(xa[above], ya[above])
    for name, fit in (("f_A", fa), ("f_B", fb)):
        if fit.r2 < min_r2:
            raise CalibrationError(
                f"{name} fit quality R^2={fit.r2:.4f} below required {min_r2}"
            )
    model = PiecewiseModel(
        breakpoint=breakpoint_mb,
        below=fa.model,  # type: ignore[arg-type]
        above=fb.model,  # type: ignore[arg-type]
    )
    return CPUPerfModel(model=model, threads=threads)


def fit_gpu_timing(
    measurements: Mapping[int, tuple[Sequence[float], Sequence[float]]],
    min_r2: float = 0.0,
) -> LinearColumnTiming:
    """Fit :math:`P_{GPU}` lines per SM count (the Figure-8 derivation).

    ``measurements`` maps an SM count to ``(column_fractions, times)``.
    """
    if not measurements:
        raise CalibrationError("need measurements for at least one SM count")
    coefficients: dict[int, tuple[float, float]] = {}
    for n_sm, (fracs, times) in measurements.items():
        fit = fit_linear(fracs, times)
        if fit.r2 < min_r2:
            raise CalibrationError(
                f"GPU fit for {n_sm} SM has R^2={fit.r2:.4f} < {min_r2}"
            )
        lm = fit.model
        assert isinstance(lm, LinearModel)
        coefficients[int(n_sm)] = (max(lm.a, 0.0), max(lm.b, 0.0))
    return LinearColumnTiming(coefficients=coefficients)


def fit_dict_cost(
    lengths: Sequence[float], times: Sequence[float], min_r2: float = 0.0
) -> DictPerfModel:
    """Fit eq. 17's through-origin line from lookup timings (Figure 9)."""
    fit = fit_linear(lengths, times, through_origin=True)
    if fit.r2 < min_r2:
        raise CalibrationError(f"dictionary fit R^2={fit.r2:.4f} < {min_r2}")
    lm = fit.model
    assert isinstance(lm, LinearModel)
    if lm.a < 0:
        raise CalibrationError(f"negative per-entry cost {lm.a}; timing data is broken")
    return DictPerfModel(cost_per_entry=lm.a)
