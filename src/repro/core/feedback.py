"""Measured-vs-estimated runtime feedback (Section III-G, last paragraph).

*"The real processing time of query Q is also measured by the system.
When the query processing is finished, the real processing time is
compared with estimated processing time.  The difference of these two
times then used to update the value T_Q of the queue that was processing
the query.  This way the errors in the estimation do not significantly
affect the scheduling algorithm."*

:class:`FeedbackController` applies that correction.  ``gain`` damps it
(1.0 = the paper's full correction; 0.0 disables feedback, the ablation
setting), and the controller tracks estimation-error statistics so the
evaluation can report how well-calibrated the models were.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.partitions import PartitionQueue
from repro.errors import SchedulingError

__all__ = ["FeedbackController", "FeedbackStats"]


@dataclass
class FeedbackStats:
    """Running estimation-error statistics."""

    count: int = 0
    total_error: float = 0.0
    total_abs_error: float = 0.0
    total_estimated: float = 0.0
    total_measured: float = 0.0

    @property
    def mean_error(self) -> float:
        return self.total_error / self.count if self.count else 0.0

    @property
    def mean_abs_error(self) -> float:
        return self.total_abs_error / self.count if self.count else 0.0

    @property
    def bias_ratio(self) -> float:
        """measured / estimated totals; 1.0 = perfectly calibrated models."""
        if self.total_estimated <= 0:
            return float("nan")
        return self.total_measured / self.total_estimated


class FeedbackController:
    """Applies completion feedback to partition queues.

    Parameters
    ----------
    gain:
        Fraction of the (measured - estimated) difference applied to the
        queue's :math:`T_Q`.  1.0 reproduces the paper; 0.0 turns
        feedback off while still tracking statistics.
    """

    def __init__(self, gain: float = 1.0):
        if not 0.0 <= gain <= 1.0:
            raise SchedulingError(f"feedback gain must be in [0, 1], got {gain}")
        self.gain = gain
        self._stats: dict[str, FeedbackStats] = {}
        #: optional lifecycle-trace hook (see
        #: :class:`repro.sim.obs.TraceCollector`), called as
        #: ``observer(queue_name, query_id, measured, estimated, applied,
        #: stats)`` after every completion.  Must only read state.
        self.observer = None
        #: optional metrics hook with the same signature (see
        #: :meth:`repro.metrics.instrument.RuntimeMetrics.on_feedback`);
        #: separate from ``observer`` so traces and metrics coexist.
        self.metrics_observer = None
        #: optional adaptation hook with the same signature (see
        #: :class:`repro.adapt.plane.AdaptivePlane`); a third slot so the
        #: online recalibrator can consume measured-vs-estimated pairs
        #: alongside traces and metrics.
        self.adapt_observer = None

    def on_completion(
        self,
        queue: PartitionQueue,
        measured_time: float,
        estimated_time: float,
        query_id: int | None = None,
    ) -> float:
        """Record a completion and correct the queue's :math:`T_Q`.

        Returns the correction applied (0.0 when ``gain`` is 0, in which
        case the job is still marked complete on the queue).
        ``query_id`` is observability metadata only — it labels the
        ``feedback`` trace event and never influences the correction.
        """
        stats = self._stats.setdefault(queue.name, FeedbackStats())
        error = measured_time - estimated_time
        stats.count += 1
        stats.total_error += error
        stats.total_abs_error += abs(error)
        stats.total_estimated += estimated_time
        stats.total_measured += measured_time

        if self.gain == 0.0:
            queue.complete_without_feedback()
            applied = 0.0
        else:
            # apply a damped correction: feed back gain * measured +
            # (1-gain) * estimated as the "measured" value, so T_Q moves
            # by gain*error.
            effective_measured = estimated_time + self.gain * error
            applied = queue.apply_feedback(effective_measured, estimated_time)
        if self.observer is not None:
            self.observer(
                queue.name, query_id, measured_time, estimated_time, applied, stats
            )
        if self.metrics_observer is not None:
            self.metrics_observer(
                queue.name, query_id, measured_time, estimated_time, applied, stats
            )
        if self.adapt_observer is not None:
            self.adapt_observer(
                queue.name, query_id, measured_time, estimated_time, applied, stats
            )
        return applied

    def stats(self, queue_name: str) -> FeedbackStats:
        return self._stats.get(queue_name, FeedbackStats())

    @property
    def all_stats(self) -> dict[str, FeedbackStats]:
        return dict(self._stats)

    @property
    def overall_bias_ratio(self) -> float:
        est = sum(s.total_estimated for s in self._stats.values())
        meas = sum(s.total_measured for s in self._stats.values())
        return meas / est if est > 0 else float("nan")
