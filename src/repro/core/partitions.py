"""Partition queues with the :math:`T_Q` bookkeeping of Section III-G.

Each system partition — the CPU OLAP partition, the CPU translation
partition, and every GPU partition — owns a FIFO queue.  *"Each queue is
aware of how many jobs are outstanding and when all its jobs will be
finished"*: that finish estimate is the queue's :math:`T_Q`
(:math:`T_{Q|C}`, :math:`T_{Q|TRANS}`, :math:`T_{Q|G1..G6}`), which the
scheduler reads when computing response times (step 3) and bumps by the
estimated processing time on every submission (steps 5-6).

:class:`PartitionQueue` is pure bookkeeping — it does not execute
anything.  The discrete-event layer (:mod:`repro.sim`) runs the actual
service processes and feeds measured runtimes back through
:meth:`apply_feedback`, implementing the paper's estimate-error
correction (*"the difference of these two times [is] used to update the
value T_Q of the queue"*).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.errors import PartitionError

__all__ = ["QueueKind", "PartitionQueue", "Submission"]


class QueueKind(str, Enum):
    """Which resource a partition queue feeds."""

    CPU = "cpu"
    GPU = "gpu"
    TRANSLATION = "translation"


@dataclass(frozen=True)
class Submission:
    """Record of one query submission to a queue.

    ``earliest_start`` is the pipeline dependency constraining this job
    (for GPU jobs of translated queries: the estimated translation
    finish); ``None`` when the job has no upstream stage.  The simulator
    and :mod:`repro.sim.validate` use it to audit the realised schedule
    against the scheduler's beliefs.
    """

    query_id: int
    submit_time: float
    estimated_start: float
    estimated_time: float
    earliest_start: float | None = None

    @property
    def estimated_finish(self) -> float:
        return self.estimated_start + self.estimated_time


class PartitionQueue:
    """One partition's queue and its :math:`T_Q` estimate.

    Parameters
    ----------
    name:
        Queue label (``"Q_CPU"``, ``"Q_G1"``, ``"Q_TRANS"``, ...).
    kind:
        The resource class this queue feeds.
    n_sm:
        SM count for GPU queues (drives which :math:`T_{GPUj}` estimate
        applies); ``None`` otherwise.
    capacity:
        Parallel service units behind this queue (1 = the paper's
        single-partition configuration).  With ``capacity`` > 1 the
        :math:`T_Q` bookkeeping is a fluid approximation: each
        submission advances :math:`T_Q` by ``estimated_time/capacity``
        (exact for throughput), while the submission record keeps the
        full single-job service time.
    """

    def __init__(
        self,
        name: str,
        kind: QueueKind | str,
        n_sm: int | None = None,
        capacity: int = 1,
    ):
        if not name:
            raise PartitionError("queue name must be non-empty")
        kind = QueueKind(kind)
        if kind is QueueKind.GPU:
            if n_sm is None or n_sm < 1:
                raise PartitionError(f"GPU queue {name!r} needs a positive n_sm")
        elif n_sm is not None:
            raise PartitionError(f"non-GPU queue {name!r} must not set n_sm")
        if capacity < 1:
            raise PartitionError(f"queue {name!r} capacity must be >= 1, got {capacity}")
        self.name = name
        self.kind = kind
        self.n_sm = n_sm
        self.capacity = capacity
        self._t_q = 0.0  # absolute time when all submitted work finishes
        self._outstanding = 0
        self._submissions: list[Submission] = []
        self.total_estimated = 0.0
        self.total_feedback = 0.0

    # -- T_Q bookkeeping (Section III-G) -----------------------------------

    @property
    def t_q(self) -> float:
        """Raw :math:`T_Q`: estimated finish time of all submitted work."""
        return self._t_q

    @property
    def outstanding(self) -> int:
        """Jobs submitted but not yet reported complete."""
        return self._outstanding

    @property
    def jobs_submitted(self) -> int:
        return len(self._submissions)

    def ready_time(self, now: float) -> float:
        """When the partition could start a job submitted at ``now``.

        :math:`\\max(T_Q, now)` — a drained queue cannot start work in
        the past, so :math:`T_Q` values older than ``now`` clamp.
        """
        return max(self._t_q, now)

    def backlog(self, now: float) -> float:
        """Seconds of estimated work ahead of a submission at ``now``."""
        return self.ready_time(now) - now

    def submit(
        self,
        query_id: int,
        now: float,
        estimated_time: float,
        earliest_start: float | None = None,
    ) -> Submission:
        """Steps 5-6's queue update: :math:`T_Q \\leftarrow T_{start} + T_{est}`.

        ``earliest_start`` carries a pipeline dependency: a job that
        cannot start before an upstream stage finishes (a translated GPU
        query waits for :math:`T_{Q|TRANS} + T_{TRANS}`) books
        :math:`T_{start} = \\max(T_Q, now, earliest\\_start)`, so the
        queue's :math:`T_Q` reflects the stalled window instead of
        silently under-counting it (Section III-G: *"each queue is aware
        ... when all its jobs will be finished"*).

        Returns the submission record (estimated start/finish), which
        the simulator uses to sanity-check the realised schedule.
        """
        if estimated_time < 0:
            raise PartitionError(
                f"estimated time must be >= 0, got {estimated_time} for query {query_id}"
            )
        start = self.ready_time(now)
        if earliest_start is not None:
            start = max(start, earliest_start)
        self._t_q = start + estimated_time / self.capacity
        self._outstanding += 1
        self.total_estimated += estimated_time
        sub = Submission(
            query_id=query_id,
            submit_time=now,
            estimated_start=start,
            estimated_time=estimated_time,
            earliest_start=earliest_start,
        )
        self._submissions.append(sub)
        return sub

    def apply_feedback(self, measured_time: float, estimated_time: float) -> float:
        """Correct :math:`T_Q` with a completed job's measurement.

        The paper: the difference between real and estimated processing
        time *"is used to update the value T_Q of the queue that was
        processing the query. This way the errors in the estimation do
        not significantly affect the scheduling algorithm."*

        Returns the applied delta.  :math:`T_Q` never moves into the
        past relative to the work still outstanding — the simulator
        guarantees monotone completion times, and a negative total here
        simply means the queue drains earlier than estimated.
        """
        if measured_time < 0 or estimated_time < 0:
            raise PartitionError("times must be >= 0")
        if self._outstanding <= 0:
            raise PartitionError(
                f"feedback for queue {self.name!r} with no outstanding jobs"
            )
        delta = measured_time - estimated_time
        # fluid scaling: on a capacity-c station one job's overrun delays
        # the queue's drain time by delta/c
        self._t_q += delta / self.capacity
        self._outstanding -= 1
        self.total_feedback += delta
        return delta

    def complete_without_feedback(self) -> None:
        """Mark a job done without correcting :math:`T_Q` (ablation mode)."""
        if self._outstanding <= 0:
            raise PartitionError(
                f"completion for queue {self.name!r} with no outstanding jobs"
            )
        self._outstanding -= 1

    # -- reporting ------------------------------------------------------------

    @property
    def submissions(self) -> tuple[Submission, ...]:
        return tuple(self._submissions)

    def __repr__(self) -> str:
        sm = f", {self.n_sm}SM" if self.n_sm else ""
        return (
            f"PartitionQueue({self.name!r}, {self.kind.value}{sm}, "
            f"T_Q={self._t_q:.4f}, outstanding={self._outstanding})"
        )
