"""Performance-estimation function families (Sections III-B to III-F).

The scheduler never touches real hardware during dispatch: every
decision is driven by *estimation functions* measured once by benchmarks
and stored inside the scheduler (Section III-G).  The families are:

* **CPU OLAP cube processing** — a piecewise model over the sub-cube
  size :math:`SC_{size}` in MB (eq. 4): a power law :math:`f_A` below
  512 MB (cache/latency regime) and a linear law :math:`f_B` above
  (streaming-bandwidth regime).  Published coefficients for the paper's
  dual Xeon X5667 testbed are eq. 7 (4 threads) and eq. 10 (8 threads),
  shipped here as :data:`XEON_X5667_4T` / :data:`XEON_X5667_8T`.
* **GPU table processing** — linear in the scanned-column fraction,
  per SM count (eq. 14-15); lives in :mod:`repro.gpu.timing`.
* **Dictionary search** — linear in the dictionary length (eq. 17):
  :math:`P_{DICT}(D_L) = 0.0138\\,\\mu s \\cdot D_L`.

The previous single-threaded implementation [16] processed cubes at
~1 GB/s; :data:`XEON_X5667_1T_LEGACY` models it as a bandwidth line so
the Table-1/3 baseline columns can be reproduced.

All models expose ``time(x) -> seconds`` and are plain frozen
dataclasses, so calibrated replacements (from
:mod:`repro.core.calibration`) drop in transparently.  The batch
admission path additionally uses ``time_many(xs) -> ndarray``, which is
contractually bit-identical to ``[time(x) for x in xs]``: linear and
dictionary models evaluate as one NumPy pass, while the power-law
exponent is applied per element (NumPy's SIMD ``pow`` differs from libm
in the last ulp, which would break the byte-identical scheduling
guarantee).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence, runtime_checkable

import numpy as np

from repro.errors import CalibrationError

__all__ = [
    "TimeModel",
    "PowerLawModel",
    "LinearModel",
    "PiecewiseModel",
    "CPUPerfModel",
    "DictPerfModel",
    "XEON_X5667_4T",
    "XEON_X5667_8T",
    "XEON_X5667_1T_LEGACY",
    "PAPER_DICT_MODEL",
    "PAPER_RANGE_BREAK_MB",
]

#: The paper's Range A / Range B breakpoint (Section III-D): 512 MB.
PAPER_RANGE_BREAK_MB: float = 512.0


@runtime_checkable
class TimeModel(Protocol):
    """Anything mapping a scalar workload measure to seconds."""

    def time(self, x: float) -> float:  # pragma: no cover - protocol
        ...


def _as_batch(xs: Sequence[float] | np.ndarray) -> np.ndarray:
    return np.asarray(xs, dtype=np.float64)


@dataclass(frozen=True)
class PowerLawModel:
    """:math:`t = a \\cdot x^p` — the :math:`f_A` family (eq. 5, 8)."""

    a: float
    p: float

    def __post_init__(self) -> None:
        if self.a <= 0:
            raise CalibrationError(f"power-law coefficient a must be > 0, got {self.a}")

    def time(self, x: float) -> float:
        if x <= 0:
            raise CalibrationError(f"workload measure must be > 0, got {x}")
        return self.a * x**self.p

    def time_many(self, xs: Sequence[float] | np.ndarray) -> np.ndarray:
        arr = _as_batch(xs)
        if arr.size and float(arr.min()) <= 0:
            bad = float(arr[arr <= 0][0])
            raise CalibrationError(f"workload measure must be > 0, got {bad}")
        # Scalar ``x**p`` per element: NumPy's vectorised pow is not
        # bit-identical to libm, and time_many must match time() exactly.
        p = self.p
        powed = np.fromiter((x**p for x in arr.tolist()), dtype=np.float64, count=arr.size)
        return self.a * powed

    def __str__(self) -> str:
        return f"{self.a:g} * x^{self.p:g}"


@dataclass(frozen=True)
class LinearModel:
    """:math:`t = a \\cdot x + b` — the :math:`f_B` family (eq. 6, 9)."""

    a: float
    b: float = 0.0

    def time(self, x: float) -> float:
        if x < 0:
            raise CalibrationError(f"workload measure must be >= 0, got {x}")
        return self.a * x + self.b

    def time_many(self, xs: Sequence[float] | np.ndarray) -> np.ndarray:
        arr = _as_batch(xs)
        if arr.size and float(arr.min()) < 0:
            bad = float(arr[arr < 0][0])
            raise CalibrationError(f"workload measure must be >= 0, got {bad}")
        return self.a * arr + self.b

    def __str__(self) -> str:
        return f"{self.a:g} * x + {self.b:g}"


@dataclass(frozen=True)
class PiecewiseModel:
    """Eq. 4: :math:`f_A` below the breakpoint, :math:`f_B` above.

    The paper's eq. 4 leaves the point exactly at the breakpoint
    ambiguous (``<`` in one branch, ``>`` in the other); we assign it to
    Range B, whose linear fit anchors the large-cube regime.
    """

    breakpoint: float
    below: PowerLawModel | LinearModel
    above: PowerLawModel | LinearModel

    def __post_init__(self) -> None:
        if self.breakpoint <= 0:
            raise CalibrationError(f"breakpoint must be > 0, got {self.breakpoint}")

    def time(self, x: float) -> float:
        model = self.below if x < self.breakpoint else self.above
        return model.time(x)

    def time_many(self, xs: Sequence[float] | np.ndarray) -> np.ndarray:
        arr = _as_batch(xs)
        out = np.empty_like(arr)
        below = arr < self.breakpoint
        if below.any():
            out[below] = self.below.time_many(arr[below])
        above = ~below
        if above.any():
            out[above] = self.above.time_many(arr[above])
        return out

    def continuity_gap(self) -> float:
        """|f_A - f_B| at the breakpoint — a calibration sanity metric."""
        return abs(self.below.time(self.breakpoint) - self.above.time(self.breakpoint))


@dataclass(frozen=True)
class CPUPerfModel:
    """:math:`P_{CPU}(SC_{size})` for one thread-count configuration.

    Attributes
    ----------
    model:
        The eq.-4 piecewise (or any) time model over MB.
    threads:
        OpenMP thread count this model was measured with.
    dispatch_overhead:
        Fixed per-query cost (parsing, member resolution, fork/join)
        *not* captured by the memory-streaming model.  The published
        :math:`f_A` extrapolates to ~0 below 1 MB, yet the measured
        system rates of Table 1 imply a per-query floor of a few ms;
        this constant is the reverse-engineered difference (documented
        in EXPERIMENTS.md).  Defaults to 0 (the pure paper model).
    """

    model: PiecewiseModel | LinearModel | PowerLawModel
    threads: int = 1
    dispatch_overhead: float = 0.0

    def __post_init__(self) -> None:
        if self.threads < 1:
            raise CalibrationError(f"threads must be >= 1, got {self.threads}")
        if self.dispatch_overhead < 0:
            raise CalibrationError("dispatch_overhead must be >= 0")

    def time(self, sc_size_mb: float) -> float:
        """Seconds to process a sub-cube of ``sc_size_mb`` MB (eq. 7/10)."""
        return self.model.time(sc_size_mb) + self.dispatch_overhead

    def time_many(self, sc_sizes_mb: Sequence[float] | np.ndarray) -> np.ndarray:
        """One pass over a batch of SC sizes; bit-identical to :meth:`time`."""
        return self.model.time_many(sc_sizes_mb) + self.dispatch_overhead

    def with_overhead(self, dispatch_overhead: float) -> "CPUPerfModel":
        return CPUPerfModel(self.model, self.threads, dispatch_overhead)

    def bandwidth_gbps(self, sc_size_mb: float) -> float:
        """Achieved processing bandwidth at a sub-cube size (Figure 3)."""
        t = self.time(sc_size_mb)
        return (sc_size_mb / 1024.0) / t if t > 0 else float("inf")


#: Eq. 7 — OpenMP, 4 threads on dual Xeon X5667.
XEON_X5667_4T = CPUPerfModel(
    model=PiecewiseModel(
        breakpoint=PAPER_RANGE_BREAK_MB,
        below=PowerLawModel(a=1.0e-4, p=0.9341),
        above=LinearModel(a=5.0e-5, b=0.0096),
    ),
    threads=4,
)

#: Eq. 10 — OpenMP, 8 threads on dual Xeon X5667.
XEON_X5667_8T = CPUPerfModel(
    model=PiecewiseModel(
        breakpoint=PAPER_RANGE_BREAK_MB,
        below=PowerLawModel(a=6.0e-5, p=0.984),
        above=LinearModel(a=4.0e-5, b=0.0146),
    ),
    threads=8,
)

#: The previous single-threaded implementation [16]: ~1 GB/s streaming.
#: Modelled as a pure bandwidth line (1 s per 1024 MB).
XEON_X5667_1T_LEGACY = CPUPerfModel(
    model=LinearModel(a=1.0 / 1024.0, b=0.0),
    threads=1,
)


@dataclass(frozen=True)
class DictPerfModel:
    """:math:`P_{DICT}(D_L)` — dictionary search cost (eq. 17).

    ``cost_per_entry`` is seconds per dictionary entry; the paper's
    measured single-threaded value is 0.0138 µs (a linear scan; see
    :mod:`repro.text.dictionary`).
    """

    cost_per_entry: float = 0.0138e-6

    def __post_init__(self) -> None:
        if self.cost_per_entry < 0:
            raise CalibrationError("cost_per_entry must be >= 0")

    def time(self, dictionary_length: float) -> float:
        if dictionary_length < 0:
            raise CalibrationError("dictionary length must be >= 0")
        return self.cost_per_entry * dictionary_length

    def time_many(self, dictionary_lengths: Sequence[float] | np.ndarray) -> np.ndarray:
        arr = _as_batch(dictionary_lengths)
        if arr.size and float(arr.min()) < 0:
            raise CalibrationError("dictionary length must be >= 0")
        return self.cost_per_entry * arr

    def translation_time(self, dictionary_lengths: list[int] | tuple[int, ...]) -> float:
        """Eq. 18: the upper bound over all text parameters of a query.

        ``dictionary_lengths`` has one entry per text parameter (the
        length of the dictionary that parameter is searched in).
        """
        return sum(self.time(d_l) for d_l in dictionary_lengths)


#: Eq. 17 as published.
PAPER_DICT_MODEL = DictPerfModel(cost_per_entry=0.0138e-6)
