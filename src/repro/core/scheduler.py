"""The Figure-10 scheduling algorithm.

The scheduler dispatches each incoming query to one of the system
partitions — the CPU OLAP-cube partition, or one of the GPU partitions —
inserting a translation stage on the CPU preprocessing partition for GPU
queries that carry text parameters.  Its structure follows Figure 10 of
the paper step by step:

1. a query ``Q`` submitted at :math:`T_Q` gets the deadline
   :math:`T_D = T_Q + T_C`;
2. processing times are estimated for every partition class from the
   performance models (:math:`T_{CPU}`, :math:`T_{GPU1..3}`,
   :math:`T_{TRANS}`);
3. response times per partition include queue backlogs, and for GPU
   partitions the translation pipeline:
   :math:`T_{R|GPUi} = \\max(T_{Q|Gi},\\ T_{Q|TRANS} + T_{TRANS}) + T_{GPUj}`;
4. the set :math:`P_{BD}` collects partitions that finish before the
   deadline;
5. if :math:`P_{BD}` is non-empty: the CPU partition wins when it is in
   the set and its processing time beats the fastest GPU partition;
   otherwise the query goes to the *slowest* GPU partition in the set
   (keeping fast partitions free for expensive queries);
6. if :math:`P_{BD}` is empty: the partition with the response time
   closest to the deadline gets the query, so a late answer is at least
   as early as possible.

Deviation from the paper's pseudocode (documented in DESIGN.md): when
:math:`P_{BD}` contains *only* the CPU partition but the CPU is not
faster than the fastest GPU partition, the published FOR loop would fall
through without submitting anywhere; we submit to the CPU (the only
partition that makes the deadline), which is unambiguously the intended
behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Protocol, Sequence, runtime_checkable

from repro.core.partitions import PartitionQueue, QueueKind, Submission
from repro.errors import AdmissionRejected, SchedulingError
from repro.query.model import Query

__all__ = [
    "QueryEstimates",
    "PerformanceEstimator",
    "ScheduleDecision",
    "BaseScheduler",
    "HybridScheduler",
]


@dataclass(frozen=True)
class QueryEstimates:
    """Step-2 output: model estimates for one query.

    Attributes
    ----------
    t_cpu:
        :math:`T_{CPU}` — ``None`` when no pre-calculated cube reaches
        the query's resolution (Section III-C: the query *must* go to
        the GPU).
    t_gpu:
        :math:`T_{GPUj}` per SM count (the paper's three estimates for
        1/2/4-SM partition classes).
    t_trans:
        :math:`T_{TRANS}` — 0.0 when the query needs no translation.
    """

    t_cpu: float | None
    t_gpu: Mapping[int, float]
    t_trans: float = 0.0

    def __post_init__(self) -> None:
        if self.t_cpu is not None and self.t_cpu < 0:
            raise SchedulingError(f"negative CPU estimate {self.t_cpu}")
        if self.t_trans < 0:
            raise SchedulingError(f"negative translation estimate {self.t_trans}")
        for n_sm, t in self.t_gpu.items():
            if n_sm < 1 or t < 0:
                raise SchedulingError(f"bad GPU estimate {n_sm} SM -> {t}")

    @classmethod
    def trusted(
        cls, t_cpu: float | None, t_gpu: Mapping[int, float], t_trans: float
    ) -> "QueryEstimates":
        """Validation-free construction for pre-checked values.

        The batch estimation path verifies non-negativity once per
        batch with a vectorised pass, so re-running ``__post_init__``
        per query would only repeat work; callers that cannot make that
        guarantee must use the normal constructor.
        """
        self = object.__new__(cls)
        set_ = object.__setattr__
        set_(self, "t_cpu", t_cpu)
        set_(self, "t_gpu", t_gpu)
        set_(self, "t_trans", t_trans)
        return self

    @property
    def needs_translation(self) -> bool:
        return self.t_trans > 0.0

    def gpu_time(self, n_sm: int) -> float:
        try:
            return self.t_gpu[n_sm]
        except KeyError:
            raise SchedulingError(
                f"no GPU estimate for {n_sm} SM partitions (have "
                f"{sorted(self.t_gpu)})"
            ) from None

    @property
    def fastest_gpu_time(self) -> float:
        """:math:`T_{GPU3}` — the estimate of the largest partition class."""
        if not self.t_gpu:
            raise SchedulingError("query has no GPU estimates")
        return self.t_gpu[max(self.t_gpu)]


@runtime_checkable
class PerformanceEstimator(Protocol):
    """Produces :class:`QueryEstimates` from the performance models."""

    def estimate(self, query: Query) -> QueryEstimates:  # pragma: no cover
        ...


@dataclass(frozen=True)
class ScheduleDecision:
    """Outcome of scheduling one query.

    ``target`` is the processing queue; ``translation`` is the
    translation-queue submission when the query needed one.  The
    simulator replays this decision with realised service times and
    feeds measurements back to the queues.
    """

    query: Query
    target: PartitionQueue
    processing: Submission
    estimates: QueryEstimates
    deadline: float
    estimated_response: float
    translation: Submission | None = None

    @property
    def meets_deadline(self) -> bool:
        """Whether the *estimate* makes the deadline (step 4's test).

        The boundary is inclusive — a query estimated to finish exactly
        at :math:`T_D` makes the deadline — matching step 4's
        :math:`P_{BD}` test and the realised
        :attr:`~repro.sim.metrics.QueryRecord.met_deadline`
        (``finish_time <= deadline``).  Historically this used strict
        ``>``, so a boundary query was excluded from :math:`P_{BD}` yet
        counted as a hit.
        """
        return self.estimated_response <= self.deadline

    @property
    def estimated_processing_time(self) -> float:
        return self.processing.estimated_time


class BaseScheduler:
    """Shared plumbing: queue sets, response-time math, submission.

    Subclasses implement :meth:`choose`, returning the target queue.
    ``gpu_queues`` must be ordered slowest-first (fewest SMs first), the
    order :class:`~repro.gpu.partitioning.PartitionScheme` guarantees.
    """

    def __init__(
        self,
        cpu_queue: PartitionQueue,
        gpu_queues: Sequence[PartitionQueue],
        trans_queue: PartitionQueue,
        estimator: PerformanceEstimator,
        time_constraint: float,
    ):
        if cpu_queue.kind is not QueueKind.CPU:
            raise SchedulingError(f"cpu_queue has kind {cpu_queue.kind}")
        if trans_queue.kind is not QueueKind.TRANSLATION:
            raise SchedulingError(f"trans_queue has kind {trans_queue.kind}")
        if not gpu_queues:
            raise SchedulingError("need at least one GPU queue")
        for q in gpu_queues:
            if q.kind is not QueueKind.GPU:
                raise SchedulingError(f"GPU queue {q.name!r} has kind {q.kind}")
        sms = [q.n_sm or 0 for q in gpu_queues]
        if sms != sorted(sms):
            raise SchedulingError(
                f"GPU queues must be ordered slowest-first, got SM counts {sms}"
            )
        if time_constraint <= 0:
            raise SchedulingError(f"time constraint must be > 0, got {time_constraint}")
        self.cpu_queue = cpu_queue
        self.gpu_queues = tuple(gpu_queues)
        self.trans_queue = trans_queue
        self.estimator = estimator
        self.time_constraint = time_constraint
        #: optional lifecycle-trace hook (duck-typed; see
        #: :class:`repro.sim.obs.TraceCollector`): ``on_estimated(query,
        #: est, deadline, now)`` after step 2, ``on_decision(decision,
        #: response, now)`` after the submission of steps 5-6.  Must only
        #: read state — scheduling is identical with or without it.
        self.observer = None
        #: optional metrics hook speaking the same protocol (see
        #: :class:`repro.metrics.instrument.RuntimeMetrics`); a separate
        #: slot so tracing and metering can be attached simultaneously.
        self.metrics_observer = None
        #: optional adaptation hook speaking the same protocol (see
        #: :class:`repro.adapt.plane.AdaptivePlane`); a third slot so
        #: the adapt plane can listen alongside tracing and metering.
        self.adapt_observer = None
        #: optional span-tracing hook speaking the same protocol (see
        #: :class:`repro.obs.hooks.SchedulerSpans`); a fourth slot so
        #: the span plane records estimate/decision stages per sampled
        #: query without displacing the other three listeners.
        self.span_observer = None

    def replace_gpu_queues(self, gpu_queues: Sequence[PartitionQueue]) -> None:
        """Swap the GPU partition set for a re-split scheme.

        Used by the adaptive capacity controller when it reconfigures
        the GPU partitioning under load.  The replacement set must obey
        the same invariants as the constructor's: GPU kind only,
        slowest-first SM order, non-empty.  Old queues keep their books
        (in-flight work completes against them); only *new* decisions
        see the replacement set.
        """
        if not gpu_queues:
            raise SchedulingError("need at least one GPU queue")
        for q in gpu_queues:
            if q.kind is not QueueKind.GPU:
                raise SchedulingError(f"GPU queue {q.name!r} has kind {q.kind}")
        sms = [q.n_sm or 0 for q in gpu_queues]
        if sms != sorted(sms):
            raise SchedulingError(
                f"GPU queues must be ordered slowest-first, got SM counts {sms}"
            )
        self.gpu_queues = tuple(gpu_queues)

    # -- response-time estimation (step 3) ---------------------------------

    def response_time_cpu(self, est: QueryEstimates, now: float) -> float | None:
        """:math:`T_{R|CPU} = T_{Q|C} + T_{CPU}` (clamped to ``now``)."""
        if est.t_cpu is None:
            return None
        return self.cpu_queue.ready_time(now) + est.t_cpu

    def response_time_gpu(
        self,
        queue: PartitionQueue,
        est: QueryEstimates,
        now: float,
        translated_at: float | None = None,
    ) -> float:
        """Step 3's GPU line, including the translation pipeline.

        ``translated_at`` is the (backlog-inclusive) time translation
        finishes; callers evaluating several GPU candidates for the same
        query pass it in so the translation term is computed once per
        query rather than once per candidate.
        """
        assert queue.n_sm is not None
        t_gpu = est.gpu_time(queue.n_sm)
        if est.needs_translation:
            if translated_at is None:
                translated_at = self.trans_queue.ready_time(now) + est.t_trans
            start = max(queue.ready_time(now), translated_at)
            return start + t_gpu
        return queue.ready_time(now) + t_gpu

    def translation_ready_at(self, est: QueryEstimates, now: float) -> float | None:
        """When this query's translation would finish, or ``None`` if untranslated."""
        if not est.needs_translation:
            return None
        return self.trans_queue.ready_time(now) + est.t_trans

    def response_times(
        self, est: QueryEstimates, now: float
    ) -> list[tuple[PartitionQueue, float]]:
        """(queue, T_R) for every partition able to process the query.

        A query with an *empty* GPU-estimate map is CPU-only (no GPU
        partition can process it) and yields no GPU entries; a
        *partial* map — some SM classes present, the target's missing —
        is a configuration error and still raises.
        """
        out: list[tuple[PartitionQueue, float]] = []
        t_r_cpu = self.response_time_cpu(est, now)
        if t_r_cpu is not None:
            out.append((self.cpu_queue, t_r_cpu))
        if est.t_gpu:
            # One translation-backlog lookup per query, not per candidate.
            translated_at = self.translation_ready_at(est, now)
            for q in self.gpu_queues:
                out.append((q, self.response_time_gpu(q, est, now, translated_at)))
        return out

    # -- submission ------------------------------------------------------------

    def _submit(
        self,
        query: Query,
        target: PartitionQueue,
        est: QueryEstimates,
        now: float,
        deadline: float,
        estimated_response: float,
    ) -> ScheduleDecision:
        translation: Submission | None = None
        if target.kind is QueueKind.GPU:
            assert target.n_sm is not None
            if est.needs_translation:
                # pipeline-aware T_Q (step 3's max(...) carried into the
                # books): the GPU job cannot start before its translation
                # finishes, so the GPU queue's T_Q must cover the stall —
                # otherwise every later estimate for this partition is
                # optimistic and untranslated queries pile up behind a
                # stalled GPU.
                translation = self.trans_queue.submit(query.query_id, now, est.t_trans)
                processing = target.submit(
                    query.query_id,
                    now,
                    est.gpu_time(target.n_sm),
                    earliest_start=translation.estimated_finish,
                )
            else:
                processing = target.submit(
                    query.query_id, now, est.gpu_time(target.n_sm)
                )
        elif target.kind is QueueKind.CPU:
            if est.t_cpu is None:
                raise SchedulingError(
                    f"query {query.query_id} routed to CPU without a cube able to "
                    "answer it"
                )
            processing = target.submit(query.query_id, now, est.t_cpu)
        else:  # pragma: no cover - schedulers never target Q_TRANS directly
            raise SchedulingError(f"cannot target queue kind {target.kind}")
        return ScheduleDecision(
            query=query,
            target=target,
            processing=processing,
            estimates=est,
            deadline=deadline,
            estimated_response=estimated_response,
            translation=translation,
        )

    # -- the per-query entry point ----------------------------------------

    def choose(
        self,
        query: Query,
        est: QueryEstimates,
        response: list[tuple[PartitionQueue, float]],
        deadline: float,
        now: float,
    ) -> tuple[PartitionQueue, float]:
        """Return (target queue, its estimated response time)."""
        raise NotImplementedError

    def schedule(self, query: Query, now: float) -> ScheduleDecision:
        """Run steps 1-6 for one query and submit it."""
        deadline = now + self.time_constraint  # step 1
        est = self.estimator.estimate(query)  # step 2
        if self.observer is not None:
            self.observer.on_estimated(query, est, deadline, now)
        if self.metrics_observer is not None:
            self.metrics_observer.on_estimated(query, est, deadline, now)
        if self.adapt_observer is not None:
            self.adapt_observer.on_estimated(query, est, deadline, now)
        if self.span_observer is not None:
            self.span_observer.on_estimated(query, est, deadline, now)
        response = self.response_times(est, now)  # step 3
        if not response:
            raise SchedulingError(
                f"no partition can process query {query.query_id} "
                "(no cube and no GPU queue)"
            )
        target, t_r = self.choose(query, est, response, deadline, now)  # steps 4-6
        decision = self._submit(query, target, est, now, deadline, t_r)
        if self.observer is not None:
            self.observer.on_decision(decision, response, now)
        if self.metrics_observer is not None:
            self.metrics_observer.on_decision(decision, response, now)
        if self.adapt_observer is not None:
            self.adapt_observer.on_decision(decision, response, now)
        if self.span_observer is not None:
            self.span_observer.on_decision(decision, response, now)
        return decision

    # -- the batch entry point ---------------------------------------------

    def schedule_batch(
        self, queries: Sequence[Query], now: float
    ) -> list[ScheduleDecision | AdmissionRejected]:
        """Run steps 1-6 for a batch of queries submitted at one instant.

        Results are byte-identical to calling :meth:`schedule` once per
        query in order — same targets, same :class:`Submission` books,
        same estimated response times, same observer event stream — but
        the work is amortised: step 2 runs as one vectorised pass when
        the estimator exposes ``estimate_batch`` (see
        :meth:`repro.sim.system.SystemEstimator.estimate_batch`), and
        step 3 reuses cached queue backlogs, refreshing only the queues
        each submission actually touched.  Steps 4-6 remain a sequential
        fold because every decision mutates the :math:`T_Q` books the
        next decision reads.

        Admission rejections are per-query outcomes, not batch failures:
        a query the admission controller turns away contributes its
        :class:`~repro.errors.AdmissionRejected` instance to the result
        list and the batch continues — exactly what a sequential
        submit-loop catching the exception per query observes.
        """
        queries = list(queries)
        if not queries:
            return []
        deadline = now + self.time_constraint  # step 1
        estimate_batch = getattr(self.estimator, "estimate_batch", None)
        if estimate_batch is not None:  # step 2 as one vectorised pass
            ests = list(estimate_batch(queries))
            if len(ests) != len(queries):
                raise SchedulingError(
                    f"estimate_batch returned {len(ests)} estimates for "
                    f"{len(queries)} queries"
                )
        else:
            ests = [self.estimator.estimate(q) for q in queries]
        observer = self.observer
        metrics = self.metrics_observer
        adapt = self.adapt_observer
        spans = self.span_observer
        for hook in (observer, metrics, adapt, spans):
            on_batch = getattr(hook, "on_batch", None)
            if on_batch is not None:
                on_batch(len(queries), now)

        cpu_queue = self.cpu_queue
        gpu_queues = self.gpu_queues
        trans_queue = self.trans_queue
        choose = self.choose
        submit = self._submit
        gpu_index = {id(q): i for i, q in enumerate(gpu_queues)}
        gpu_pairs = [(i, q, q.n_sm) for i, q in enumerate(gpu_queues)]
        rt_cpu = cpu_queue.ready_time(now)
        rt_gpu = [q.ready_time(now) for q in gpu_queues]
        rt_trans = trans_queue.ready_time(now)

        results: list[ScheduleDecision | AdmissionRejected] = []
        for query, est in zip(queries, ests):
            if observer is not None:
                observer.on_estimated(query, est, deadline, now)
            if metrics is not None:
                metrics.on_estimated(query, est, deadline, now)
            if adapt is not None:
                adapt.on_estimated(query, est, deadline, now)
            if spans is not None:
                spans.on_estimated(query, est, deadline, now)
            # Step 3 against the cached backlogs.  The arithmetic below
            # mirrors response_times()/response_time_gpu() operation for
            # operation so the floats come out bit-identical.
            response: list[tuple[PartitionQueue, float]] = []
            t_cpu = est.t_cpu
            if t_cpu is not None:
                response.append((cpu_queue, rt_cpu + t_cpu))
            tg = est.t_gpu
            if tg:
                t_trans = est.t_trans
                if t_trans > 0.0:
                    translated_at = rt_trans + t_trans
                    for i, q, n_sm in gpu_pairs:
                        t_gpu = tg.get(n_sm)
                        if t_gpu is None:
                            est.gpu_time(n_sm)  # raises the canonical error
                        start = rt_gpu[i]
                        if translated_at > start:
                            start = translated_at
                        response.append((q, start + t_gpu))
                else:
                    for i, q, n_sm in gpu_pairs:
                        t_gpu = tg.get(n_sm)
                        if t_gpu is None:
                            est.gpu_time(n_sm)
                        response.append((q, rt_gpu[i] + t_gpu))
            if not response:
                raise SchedulingError(
                    f"no partition can process query {query.query_id} "
                    "(no cube and no GPU queue)"
                )
            try:
                target, t_r = choose(query, est, response, deadline, now)
            except AdmissionRejected as rejection:
                results.append(rejection)
                continue
            decision = submit(query, target, est, now, deadline, t_r)
            # Refresh only the backlogs this submission moved.
            if decision.translation is not None:
                rt_trans = trans_queue.ready_time(now)
            if target is cpu_queue:
                rt_cpu = cpu_queue.ready_time(now)
            else:
                idx = gpu_index.get(id(target))
                if idx is not None:
                    rt_gpu[idx] = gpu_queues[idx].ready_time(now)
            if observer is not None:
                observer.on_decision(decision, response, now)
            if metrics is not None:
                metrics.on_decision(decision, response, now)
            if adapt is not None:
                adapt.on_decision(decision, response, now)
            if spans is not None:
                spans.on_decision(decision, response, now)
            results.append(decision)
        return results


class HybridScheduler(BaseScheduler):
    """The paper's deadline-aware co-scheduler (Figure 10, steps 4-6)."""

    def choose(
        self,
        query: Query,
        est: QueryEstimates,
        response: list[tuple[PartitionQueue, float]],
        deadline: float,
        now: float,
    ) -> tuple[PartitionQueue, float]:
        # One pass over the candidates collects everything steps 4-5
        # need: whether the CPU partition makes the deadline (and its
        # T_R), the first — i.e. slowest, gpu_queues order — GPU
        # partition that does, and the first deadline-making partition
        # overall.  Step 4's boundary is inclusive, consistent with
        # QueryRecord.met_deadline's ``<=``.
        cpu_name = self.cpu_queue.name
        first_bd: tuple[PartitionQueue, float] | None = None
        gpu_bd: tuple[PartitionQueue, float] | None = None
        cpu_bd_t: float | None = None
        for item in response:
            t_r = item[1]
            if t_r <= deadline:
                if first_bd is None:
                    first_bd = item
                queue = item[0]
                if queue.kind is QueueKind.GPU:
                    if gpu_bd is None:
                        gpu_bd = item
                elif queue.name == cpu_name:
                    cpu_bd_t = t_r

        if first_bd is not None:  # step 5
            # NOTE the short-circuit order: ``gpu_bd is None`` must be
            # tested first — a CPU-feasible query with no GPU estimates
            # (empty t_gpu map) has no fastest_gpu_time to compare with.
            t_cpu = est.t_cpu
            if cpu_bd_t is not None and t_cpu is not None and (
                gpu_bd is None or t_cpu < est.fastest_gpu_time
            ):
                return self.cpu_queue, cpu_bd_t
            if gpu_bd is not None:
                # slowest GPU partition that still makes the deadline:
                # gpu_queues is ordered slowest-first, and the scan
                # preserves that order.
                return gpu_bd
            # P_BD non-empty but CPU infeasible for this query and no GPU
            # makes it: impossible (first_bd would be None) — defensive.
            return first_bd  # pragma: no cover

        # Step 6: nobody makes the deadline; minimise |T_D - T_R| (first
        # minimum wins, matching min() over the candidate order).
        best = response[0]
        best_gap = abs(deadline - best[1])
        for item in response[1:]:
            gap = abs(deadline - item[1])
            if gap < best_gap:
                best = item
                best_gap = gap
        return best
