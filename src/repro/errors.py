"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to discriminate between subsystems.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "QueryError",
    "DimensionError",
    "ResolutionError",
    "CubeError",
    "CubeNotAvailableError",
    "RollupError",
    "SchemaError",
    "DictionaryError",
    "UnknownTokenError",
    "TranslationError",
    "DeviceError",
    "PartitionError",
    "SchedulingError",
    "AdmissionRejected",
    "CalibrationError",
    "SimulationError",
    "InvariantViolation",
    "ServeError",
    "BackpressureError",
    "FleetError",
    "MetricsError",
    "WorkloadError",
    "ParseError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class QueryError(ReproError):
    """A query is malformed or inconsistent with the schema it targets."""


class DimensionError(QueryError):
    """A query or cube references an unknown dimension."""


class ResolutionError(QueryError):
    """A condition references a resolution level that does not exist."""


class CubeError(ReproError):
    """Errors in OLAP cube construction or aggregation."""


class CubeNotAvailableError(CubeError):
    """No pre-computed cube of sufficient resolution exists.

    The scheduling algorithm treats this as "the query must be answered by
    the GPU" (Section III-C of the paper: *"If the resolution R is too high
    and cube is not precalculated, the query must be answered by GPU"*).
    """


class RollupError(CubeError):
    """The materialized-rollup cache tier was misused.

    Raised by :mod:`repro.olap.rollup` for malformed cuboid specs,
    unknown dimensions or measures, executing a query no installed
    cuboid covers, and catalog-coherence misuse (shrinking row counts).
    """


class SchemaError(ReproError):
    """A relational schema is malformed or violated by the data."""


class DictionaryError(ReproError):
    """Errors in the text-to-integer dictionary subsystem."""


class UnknownTokenError(DictionaryError):
    """A string literal is not present in the column dictionary."""

    def __init__(self, column: str, token: str):
        super().__init__(f"token {token!r} not found in dictionary for column {column!r}")
        self.column = column
        self.token = token


class TranslationError(ReproError):
    """The query translator could not translate a query for the GPU."""


class DeviceError(ReproError):
    """Errors in the simulated GPU device."""


class PartitionError(ReproError):
    """A partition configuration is invalid (e.g. SM over-subscription)."""


class SchedulingError(ReproError):
    """The scheduler could not dispatch a query to any partition."""


class AdmissionRejected(ReproError):
    """A query was shed by admission control (extension to Figure 10).

    Raised by :class:`repro.core.admission.AdmissionControlScheduler`
    when no partition can come close enough to the deadline; the system
    reports the query as rejected instead of queueing it hopelessly.
    """

    def __init__(self, query_id: int, best_response: float, deadline: float):
        super().__init__(
            f"query {query_id} rejected: best response {best_response:.3f}s "
            f"exceeds deadline {deadline:.3f}s beyond the admission threshold"
        )
        self.query_id = query_id
        self.best_response = best_response
        self.deadline = deadline


class CalibrationError(ReproError):
    """Model calibration failed (insufficient or degenerate measurements)."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class InvariantViolation(SimulationError):
    """A simulated run violated a scheduling/bookkeeping invariant.

    Raised by :func:`repro.sim.validate.assert_valid` when the realised
    schedule of a :class:`~repro.sim.metrics.SystemReport` contradicts
    the queues' :class:`~repro.core.partitions.Submission` records —
    dependency ordering, FIFO/capacity discipline, job conservation, or
    (for deterministic runs) estimate-vs-realised drift.
    """


class ServeError(ReproError):
    """The wall-clock serving engine reached an invalid state.

    Raised by :mod:`repro.serve` for lifecycle misuse (submitting to a
    stopped engine, draining past its timeout) and for queries whose
    live execution failed after being accepted.
    """


class BackpressureError(ServeError):
    """A bounded submission queue refused new work (backpressure).

    Raised by non-blocking submission when the serving engine's
    in-flight bound is reached, and by blocking submission when the
    bound is still reached after the caller's timeout.  Load generators
    either treat this as shed load or retry.
    """


class FleetError(ServeError):
    """The multi-process serving fleet reached an invalid state.

    Raised by :mod:`repro.fleet` for wire-protocol violations, worker
    processes that fail to come up (or die mid-run), and requests routed
    when no live shard remains.
    """


class MetricsError(ReproError):
    """The live metrics plane was misused or reached an invalid state.

    Raised by :mod:`repro.metrics` for malformed metric/label names,
    conflicting family re-registration, histogram bound mismatches, and
    exporter lifecycle misuse.
    """


class WorkloadError(ReproError):
    """A workload specification is invalid."""


class ParseError(QueryError):
    """The textual query language parser rejected its input."""
