"""Multi-process serving: shard workers behind one HTTP front door.

The single-process :class:`~repro.serve.engine.ServeEngine` serialises
all bookkeeping under one engine-wide lock — the scaling ceiling this
package removes.  A :class:`Fleet` spawns N worker *processes* (each a
full engine: Figure-10 scheduler, worker pools, rollup router, metrics
registry), talks to them over a length-prefixed JSON socket protocol
(:mod:`repro.fleet.protocol`), and routes queries by consistent-hash
affinity (:mod:`repro.fleet.ring`) so repeated query shapes land on the
shard whose rollup cache already knows them.  :class:`FleetServer` is
the stdlib-HTTP front door (the :class:`~repro.metrics.exporter.
MetricsExporter` pattern); per-shard metrics snapshots merge count-
exactly via :func:`repro.metrics.registry.merge_snapshots`, and
:func:`repro.sim.validate.validate_fleet` audits the merged books.
"""

from repro.fleet.fleet import (
    Fleet,
    FleetAnswer,
    FleetReport,
    ShardClient,
    ShardReport,
)
from repro.fleet.frontdoor import FleetServer
from repro.fleet.protocol import (
    query_from_json,
    query_to_json,
    record_from_json,
    record_to_json,
    recv_frame,
    send_frame,
)
from repro.fleet.ring import HashRing, affinity_key
from repro.fleet.worker import ShardSpec, run_worker

__all__ = [
    "Fleet",
    "FleetAnswer",
    "FleetReport",
    "FleetServer",
    "HashRing",
    "ShardClient",
    "ShardReport",
    "ShardSpec",
    "affinity_key",
    "query_from_json",
    "query_to_json",
    "record_from_json",
    "record_to_json",
    "recv_frame",
    "run_worker",
    "send_frame",
]
