"""The fleet manager: N worker-process shards behind one router.

:class:`Fleet` owns the process lifecycle (spawn with a ready
handshake, health checks, crashed-shard detection, graceful drain), the
:class:`~repro.fleet.ring.HashRing` routing decision, and the front
door's own bookkeeping — ``repro_fleet_*`` metric families recording
where queries went and what came back.  The merged fleet view is built
from parts that already exist: each shard ships its
:class:`~repro.metrics.registry.MetricsSnapshot` over the wire and
:func:`~repro.metrics.registry.merge_snapshots` folds them (plus the
front door's own registry) into one count-exact snapshot that
:func:`~repro.sim.validate.validate_fleet` can audit.

Lifecycle::

    with Fleet(num_shards=4).start() as fleet:
        answer = fleet.submit(query, "small")
        ...
        report = fleet.fleet_report(drain=True)   # terminal: drains + joins
    assert_fleet_valid(report)

A crashed shard (process exited without a shutdown handshake) is
detected by :meth:`check`, removed from the routing alive-set — the
ring walks successors, so only that shard's keys move — and reported in
``FleetReport.crashed`` so a partial fleet is visible, never silent.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from dataclasses import dataclass, replace
from typing import Any, Mapping

from repro.errors import FleetError
from repro.fleet.protocol import (
    query_to_json,
    record_from_json,
    recv_frame,
    send_frame,
)
from repro.fleet.ring import DEFAULT_VNODES, HashRing, affinity_key
from repro.fleet.worker import ShardSpec, run_worker
from repro.metrics import MetricsRegistry, MetricsSnapshot, merge_snapshots
from repro.obs.span import Span, SpanTracer, stitch
from repro.query.model import Query
from repro.sim.metrics import QueryRecord

__all__ = [
    "Fleet",
    "FleetAnswer",
    "FleetReport",
    "ShardClient",
    "ShardReport",
]


class ShardClient:
    """A pooled-connection client for one shard's socket listener.

    Connections are checked out per request and returned on success, so
    concurrent front-door threads each get their own socket (the worker
    serves one handler thread per connection).  A connection that saw a
    protocol or socket error is closed, not recycled.
    """

    def __init__(
        self,
        shard_id: int,
        port: int,
        host: str = "127.0.0.1",
        timeout: float = 30.0,
    ):
        self.shard_id = shard_id
        self.host = host
        self.port = port
        self.timeout = timeout
        self._pool: list = []
        self._lock = threading.Lock()
        self._closed = False

    def _checkout(self):
        with self._lock:
            if self._closed:
                raise FleetError(f"shard {self.shard_id}: client is closed")
            if self._pool:
                return self._pool.pop()
        import socket as _socket

        return _socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )

    def request(
        self, message: Mapping[str, Any], timeout: float | None = None
    ) -> dict[str, Any]:
        """One request/response round trip; raises :class:`FleetError`.

        Any transport failure invalidates the connection — the caller
        decides whether the *shard* is dead (see :meth:`Fleet.check`).
        """
        sock = self._checkout()
        try:
            sock.settimeout(self.timeout if timeout is None else timeout)
            send_frame(sock, message)
            response = recv_frame(sock)
        except FleetError:
            sock.close()
            raise
        except OSError as exc:
            sock.close()
            raise FleetError(
                f"shard {self.shard_id} transport failed: {exc}"
            ) from exc
        if response is None:
            sock.close()
            raise FleetError(
                f"shard {self.shard_id} closed the connection mid-request"
            )
        with self._lock:
            if self._closed:
                sock.close()
            else:
                self._pool.append(sock)
        return response

    def close(self) -> None:
        with self._lock:
            self._closed = True
            pool, self._pool = self._pool, []
        for sock in pool:
            sock.close()


@dataclass(frozen=True)
class FleetAnswer:
    """What one routed submission came back with."""

    shard_id: int
    accepted: bool
    shed: bool = False
    cache_hit: bool = False
    record: QueryRecord | None = None


@dataclass(frozen=True)
class ShardReport:
    """One shard's final books, as shipped over the wire at shutdown."""

    shard_id: int
    records: tuple[QueryRecord, ...]
    cache_hits: tuple[QueryRecord, ...]
    rejected: int
    errors: int
    elapsed: float
    snapshot: MetricsSnapshot
    validation: str

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "ShardReport":
        return cls(
            shard_id=int(data["shard_id"]),
            records=tuple(record_from_json(r) for r in data["records"]),
            cache_hits=tuple(record_from_json(r) for r in data["cache_hits"]),
            rejected=int(data["rejected"]),
            errors=int(data["errors"]),
            elapsed=float(data["elapsed"]),
            snapshot=MetricsSnapshot.from_json(data["snapshot"]),
            validation=str(data["validation"]),
        )


@dataclass(frozen=True)
class FleetReport:
    """The merged fleet view :func:`~repro.sim.validate.validate_fleet` audits.

    ``shards`` holds only shards that completed the shutdown handshake;
    crashed shards appear in ``crashed`` with their routing books intact
    in ``routed``/``failed`` — a partial fleet reports as partial.
    """

    shards: tuple[ShardReport, ...]
    crashed: tuple[int, ...]
    routed: Mapping[int, int]
    failed: Mapping[int, int]
    merged: MetricsSnapshot
    drained: bool = True
    #: the stitched fleet-wide span set (front door + every drained
    #: shard, grouped by trace_id; crashed shards' partial trees carry
    #: roots re-stamped ``status="partial"``).  Empty when no tracer
    #: was attached.
    spans: tuple[Span, ...] = ()

    @property
    def completed(self) -> int:
        return sum(len(s.records) for s in self.shards)

    @property
    def cache_hits(self) -> int:
        return sum(len(s.cache_hits) for s in self.shards)

    @property
    def rejected(self) -> int:
        return sum(s.rejected for s in self.shards)

    def summary(self) -> str:
        return (
            f"fleet of {len(self.shards)} shard(s)"
            f"{f' ({len(self.crashed)} crashed)' if self.crashed else ''}: "
            f"{sum(self.routed.values())} routed, {self.completed} completed, "
            f"{self.cache_hits} cache hits, {self.rejected} rejected, "
            f"{sum(self.failed.values())} failed"
        )


@dataclass
class _Shard:
    """Internal: one spawned worker and its client."""

    shard_id: int
    process: Any
    client: ShardClient | None = None
    port: int | None = None
    reported: bool = False


class Fleet:
    """Spawn, route to, observe, and drain a set of worker shards.

    Parameters
    ----------
    num_shards:
        How many worker processes to spawn.  Shards are replicas (same
        rows, same seed) so any shard can answer any query; the ring
        adds cache affinity on top.
    spec:
        Template :class:`~repro.fleet.worker.ShardSpec`; its
        ``shard_id`` is replaced per shard.
    registry:
        The front door's own :class:`MetricsRegistry` (created when
        omitted).  Carries the ``repro_fleet_*`` families and is merged
        into every fleet-wide snapshot.
    spans:
        Optional front-door :class:`~repro.obs.span.SpanTracer`.  Each
        head-sampled submission gets a ``frontdoor.request`` root (the
        HTTP front door opens it; direct :meth:`submit` callers get one
        opened here), ``fleet.route`` and ``wire.roundtrip`` stage
        spans, and a ``traceparent`` context field on the shard-bound
        frame so the shard's subtree parents under this root.  Shards
        must be spawned with a matching ``spec.span_sample`` (same seed)
        for their engines to trace the adopted context.
    """

    def __init__(
        self,
        num_shards: int = 2,
        spec: ShardSpec | None = None,
        *,
        registry: MetricsRegistry | None = None,
        vnodes: int = DEFAULT_VNODES,
        start_timeout: float = 180.0,
        request_timeout: float = 30.0,
        spans: SpanTracer | None = None,
    ):
        if num_shards < 1:
            raise FleetError(f"a fleet needs at least one shard, got {num_shards}")
        self.num_shards = num_shards
        self.spec = spec if spec is not None else ShardSpec(shard_id=0)
        self.registry = registry if registry is not None else MetricsRegistry()
        self.spans = spans
        self.ring = HashRing(range(num_shards), vnodes=vnodes)
        self.start_timeout = start_timeout
        self.request_timeout = request_timeout
        self._shards: dict[int, _Shard] = {}
        self._crashed: list[int] = []
        self._routed: dict[int, int] = {i: 0 for i in range(num_shards)}
        self._failed: dict[int, int] = {i: 0 for i in range(num_shards)}
        self._lock = threading.Lock()
        self._started = False
        self._stopped = False
        self._epoch = 0.0
        m = self.registry
        self._m_routed = m.counter(
            "repro_fleet_routed_total",
            "Queries the front door routed, by shard",
            labels=("shard",),
        )
        self._m_completed = m.counter(
            "repro_fleet_completed_total",
            "Routed queries that came back with a record, by shard",
            labels=("shard",),
        )
        self._m_rejected = m.counter(
            "repro_fleet_rejected_total",
            "Routed queries the shard's admission control shed, by shard",
            labels=("shard",),
        )
        self._m_failed = m.counter(
            "repro_fleet_failed_total",
            "Routed queries lost to transport or shard errors, by shard",
            labels=("shard",),
        )
        self._m_shards = m.gauge(
            "repro_fleet_shards", "Shard processes by state", labels=("state",)
        )
        self._m_latency = m.histogram(
            "repro_fleet_request_seconds",
            "Front-door round-trip time per routed query",
        )

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "Fleet":
        """Spawn every shard and wait for all ready handshakes."""
        if self._started:
            raise FleetError("fleet already started")
        self._started = True
        self._epoch = time.monotonic()
        ctx = multiprocessing.get_context("spawn")
        pending: list[tuple[int, Any]] = []
        for shard_id in range(self.num_shards):
            recv_end, send_end = ctx.Pipe(duplex=False)
            spec = replace(self.spec, shard_id=shard_id)
            process = ctx.Process(
                target=run_worker,
                args=(spec, send_end),
                name=f"repro-shard-{shard_id}",
                daemon=True,
            )
            process.start()
            send_end.close()  # parent keeps only the reading end
            self._shards[shard_id] = _Shard(shard_id=shard_id, process=process)
            pending.append((shard_id, recv_end))
        deadline = time.monotonic() + self.start_timeout
        try:
            for shard_id, recv_end in pending:
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not recv_end.poll(timeout=remaining):
                    raise FleetError(
                        f"shard {shard_id} did not hand shake within "
                        f"{self.start_timeout}s"
                    )
                message = recv_end.recv()
                if "error" in message:
                    raise FleetError(
                        f"shard {shard_id} failed to start: {message['error']}"
                    )
                shard = self._shards[shard_id]
                shard.port = int(message["port"])
                shard.client = ShardClient(
                    shard_id, shard.port, timeout=self.request_timeout
                )
        except BaseException:
            self.stop()
            raise
        finally:
            for _, recv_end in pending:
                recv_end.close()
        self._m_shards.set(float(self.num_shards), state="live")
        self._m_shards.set(0.0, state="crashed")
        return self

    def __enter__(self) -> "Fleet":
        if not self._started:
            self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    @property
    def alive(self) -> tuple[int, ...]:
        """Shard ids believed live (spawned, handshaken, not crashed)."""
        with self._lock:
            crashed = set(self._crashed)
        return tuple(
            sid
            for sid, shard in sorted(self._shards.items())
            if shard.client is not None and sid not in crashed
        )

    def check(self) -> tuple[int, ...]:
        """Detect crashed shards: a live process must have no exit code.

        Newly crashed shards leave the routing alive-set immediately;
        the consistent-hash ring moves only their keys.  Returns the
        full crashed tuple (stable order).
        """
        with self._lock:
            for sid, shard in self._shards.items():
                if sid in self._crashed or shard.reported:
                    continue
                if shard.process.exitcode is not None:
                    self._crashed.append(sid)
                    if shard.client is not None:
                        shard.client.close()
            crashed = tuple(sorted(self._crashed))
        self._m_shards.set(float(len(self.alive)), state="live")
        self._m_shards.set(float(len(crashed)), state="crashed")
        return crashed

    @property
    def crashed(self) -> tuple[int, ...]:
        with self._lock:
            return tuple(sorted(self._crashed))

    def ping(self) -> dict[int, dict[str, Any]]:
        """Health-check every live shard over its own socket."""
        self.check()
        out: dict[int, dict[str, Any]] = {}
        for sid in self.alive:
            client = self._shards[sid].client
            assert client is not None
            out[sid] = client.request({"kind": "ping"}, timeout=10.0)
        return out

    # -- the data path ------------------------------------------------------

    def submit(
        self,
        query: Query,
        query_class: str = "default",
        timeout: float | None = None,
    ) -> FleetAnswer:
        """Route one query by affinity and wait for the shard's answer.

        Raises :class:`FleetError` when no shard is live or the routed
        shard fails mid-request (the failure is booked against that
        shard and :meth:`check` runs, so the next submit routes around
        it if the process died).
        """
        key = affinity_key(query)
        shard_id = self.ring.route(key, alive=self.alive)
        client = self._shards[shard_id].client
        assert client is not None
        with self._lock:
            self._routed[shard_id] += 1
        self._m_routed.inc(shard=str(shard_id))
        tracer = self.spans
        owns_root = False
        traceparent = None
        if tracer is not None:
            # the HTTP front door opens the root before calling submit;
            # direct callers (tests, benchmarks) get one opened here
            if tracer.context(query.query_id) is None:
                owns_root = (
                    tracer.open(
                        query.query_id,
                        "frontdoor.request",
                        query_class=query_class,
                    )
                    is not None
                )
            t_route = tracer.now()
            tracer.record(
                query.query_id,
                "fleet.route",
                t_route,
                t_route,
                track="router",
                shard=shard_id,
                key=key,
            )
            traceparent = tracer.traceparent(query.query_id)
        message = {
            "kind": "query",
            "query": query_to_json(query),
            "class": query_class,
            "timeout": self.request_timeout if timeout is None else timeout,
        }
        if traceparent is not None:
            message["traceparent"] = traceparent
        started = time.monotonic()
        wire_start = tracer.now() if tracer is not None else 0.0
        try:
            response = client.request(message, timeout=timeout)
        except FleetError:
            with self._lock:
                self._failed[shard_id] += 1
            self._m_failed.inc(shard=str(shard_id))
            if tracer is not None:
                tracer.record(
                    query.query_id,
                    "wire.roundtrip",
                    wire_start,
                    tracer.now(),
                    track=f"wire-{shard_id}",
                    status="error",
                    shard=shard_id,
                )
                if owns_root:
                    tracer.close(query.query_id, status="error")
            self.check()
            raise
        self._m_latency.observe(time.monotonic() - started)
        if tracer is not None:
            tracer.record(
                query.query_id,
                "wire.roundtrip",
                wire_start,
                tracer.now(),
                track=f"wire-{shard_id}",
                shard=shard_id,
            )
        label = str(shard_id)
        if not response.get("ok", False):
            with self._lock:
                self._failed[shard_id] += 1
            self._m_failed.inc(shard=label)
            if tracer is not None and owns_root:
                tracer.close(query.query_id, status="error")
            raise FleetError(
                f"shard {shard_id} failed the query: "
                f"{response.get('error', 'unknown error')}"
            )
        if not response.get("accepted", False):
            self._m_rejected.inc(shard=label)
            if tracer is not None and owns_root:
                tracer.close(query.query_id, status="rejected")
            return FleetAnswer(
                shard_id=shard_id,
                accepted=False,
                shed=bool(response.get("shed", False)),
            )
        self._m_completed.inc(shard=label)
        if tracer is not None and owns_root:
            tracer.close(query.query_id, status="ok")
        return FleetAnswer(
            shard_id=shard_id,
            accepted=True,
            cache_hit=bool(response.get("cache_hit", False)),
            record=record_from_json(response["record"]),
        )

    def maintain(self, limit: int | None = None) -> int:
        """Ask every live shard to run rollup maintenance; total built."""
        total = 0
        for sid in self.alive:
            client = self._shards[sid].client
            assert client is not None
            response = client.request({"kind": "maintain", "limit": limit})
            total += int(response.get("materialized", 0))
        return total

    # -- observation --------------------------------------------------------

    def elapsed(self) -> float:
        return 0.0 if not self._started else time.monotonic() - self._epoch

    def merged_metrics(self) -> MetricsSnapshot:
        """One fleet-wide snapshot: Σ shard snapshots + the front door's."""
        self.check()
        snapshots = [self.registry.collect(self.elapsed())]
        for sid in self.alive:
            client = self._shards[sid].client
            assert client is not None
            response = client.request({"kind": "metrics"}, timeout=10.0)
            snapshots.append(MetricsSnapshot.from_json(response["snapshot"]))
        return merge_snapshots(snapshots)

    def gather_spans(self, drain: bool = False) -> tuple[Span, ...]:
        """Mid-run span collection over the ``spans`` protocol op.

        Pulls every live shard's span buffer (``drain=True`` pops the
        remote buffers; the default snapshots them) plus the front
        door's own, stitched by trace_id with crashed shards flagged.
        The terminal path — :meth:`fleet_report` — instead ships each
        shard's final buffer on the shutdown response, so post-drain
        trees are always complete.
        """
        self.check()
        gathered: list[Span] = []
        for sid in self.alive:
            client = self._shards[sid].client
            assert client is not None
            response = client.request(
                {"kind": "spans", "drain": drain}, timeout=30.0
            )
            gathered.extend(Span.from_dict(s) for s in response.get("spans", ()))
        if self.spans is not None:
            gathered.extend(
                self.spans.drain() if drain else self.spans.spans()
            )
        return stitch(gathered, self.crashed)

    def fleet_report(self, drain: bool = True) -> FleetReport:
        """Terminal: drain every live shard, join, and merge the books.

        Each shard drains its engine, runs its local audit, and ships
        its final records + snapshot in the shutdown response.  Crashed
        shards contribute nothing but their routing books — the report
        says so via ``crashed``.
        """
        self.check()
        shard_reports: list[ShardReport] = []
        gathered_spans: list[Span] = []
        for sid in self.alive:
            shard = self._shards[sid]
            assert shard.client is not None
            try:
                response = shard.client.request(
                    {"kind": "shutdown", "drain": drain},
                    timeout=max(self.request_timeout, 120.0),
                )
            except FleetError:
                with self._lock:
                    if sid not in self._crashed:
                        self._crashed.append(sid)
                continue
            shard_reports.append(ShardReport.from_json(response))
            gathered_spans.extend(
                Span.from_dict(s) for s in response.get("spans", ())
            )
            shard.reported = True
        self._join_all()
        self._stopped = True
        merged = merge_snapshots(
            [self.registry.collect(self.elapsed())]
            + [report.snapshot for report in shard_reports]
        )
        with self._lock:
            crashed = tuple(sorted(self._crashed))
            routed = dict(self._routed)
            failed = dict(self._failed)
        self._m_shards.set(0.0, state="live")
        self._m_shards.set(float(len(crashed)), state="crashed")
        if self.spans is not None:
            # the front door's own buffer joins the gathered shard
            # buffers; stitch() flags (never drops) traces whose shard
            # subtree died with a crashed process
            self.spans.close_all(status="abandoned")
            gathered_spans.extend(self.spans.drain())
        return FleetReport(
            shards=tuple(shard_reports),
            crashed=crashed,
            routed=routed,
            failed=failed,
            merged=merged,
            drained=drain,
            spans=stitch(gathered_spans, crashed),
        )

    def drain(self) -> FleetReport:
        """Alias for :meth:`fleet_report` with ``drain=True``."""
        return self.fleet_report(drain=True)

    # -- teardown -----------------------------------------------------------

    def _join_all(self, timeout: float = 30.0) -> None:
        deadline = time.monotonic() + timeout
        for shard in self._shards.values():
            if shard.client is not None:
                shard.client.close()
            remaining = max(0.1, deadline - time.monotonic())
            shard.process.join(timeout=remaining)
            if shard.process.exitcode is None:
                shard.process.terminate()
                shard.process.join(timeout=5.0)
            if shard.process.exitcode is None:
                # workers ignore SIGTERM (group-signal immunity); escalate
                shard.process.kill()
                shard.process.join(timeout=5.0)

    def stop(self) -> None:
        """Non-drain teardown; safe to call repeatedly / after a report."""
        if self._stopped or not self._started:
            self._stopped = True
            return
        self._stopped = True
        for sid in self.alive:
            client = self._shards[sid].client
            if client is None:
                continue
            try:
                client.request({"kind": "shutdown", "drain": False}, timeout=30.0)
            except FleetError:
                pass
        self._join_all()
        self._m_shards.set(0.0, state="live")
