"""The fleet's HTTP front door.

Same construction as :class:`~repro.metrics.exporter.MetricsExporter`
— a stdlib ``ThreadingHTTPServer`` on a daemon thread, one handler
subclass bound per server via ``type()`` — but serving the query path,
not just observability:

- ``POST /query``  body ``{"q": "<query text>", "class": "small"}`` —
  parse the textual query language, route by affinity, answer with the
  shard's :class:`~repro.sim.metrics.QueryRecord` as JSON;
- ``GET /metrics`` — the *merged* fleet snapshot (every shard's
  registry plus the front door's ``repro_fleet_*`` families) in
  Prometheus text exposition format;
- ``GET /report`` — live routing books and per-shard health as JSON;
- ``GET /health`` — 200 when every shard is live, 503 with the crashed
  ids when the fleet is partial.

The handler threads only ever touch the :class:`~repro.fleet.fleet.
Fleet` client pool and its books lock — never a shard's engine lock,
which lives in another process entirely.  That process boundary is the
point: a stuck scrape or a slow client cannot stall shard admission.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Mapping

from repro.errors import FleetError, ReproError
from repro.fleet.fleet import Fleet
from repro.fleet.protocol import record_to_json
from repro.metrics.exporter import CONTENT_TYPE, render_prometheus

__all__ = ["FleetServer"]


class _FrontDoorHandler(BaseHTTPRequestHandler):
    # bound via a type() subclass per server instance
    fleet: Fleet
    hierarchies: Mapping[str, Any]

    # -- helpers ------------------------------------------------------------

    def _send_json(self, status: int, payload: Mapping[str, Any]) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, body: str, content_type: str) -> None:
        data = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    # -- routes -------------------------------------------------------------

    def do_GET(self):  # noqa: N802 - http.server API
        path = self.path.split("?", 1)[0]
        if path == "/metrics":
            try:
                snapshot = self.fleet.merged_metrics()
            except (FleetError, ReproError) as exc:
                self._send_json(503, {"ok": False, "error": str(exc)})
                return
            self._send_text(200, render_prometheus(snapshot), CONTENT_TYPE)
        elif path == "/report":
            crashed = self.fleet.check()
            self._send_json(
                200,
                {
                    "ok": True,
                    "alive": list(self.fleet.alive),
                    "crashed": list(crashed),
                    "routed": {
                        str(k): v for k, v in self.fleet._routed.items()
                    },
                    "failed": {
                        str(k): v for k, v in self.fleet._failed.items()
                    },
                    "elapsed": self.fleet.elapsed(),
                },
            )
        elif path in ("/", "/health"):
            crashed = self.fleet.check()
            alive = self.fleet.alive
            healthy = bool(alive) and not crashed
            self._send_json(
                200 if healthy else 503,
                {
                    "ok": healthy,
                    "alive": list(alive),
                    "crashed": list(crashed),
                },
            )
        else:
            self.send_error(404, "serving /query, /metrics, /report, /health")

    def do_POST(self):  # noqa: N802 - http.server API
        path = self.path.split("?", 1)[0]
        if path != "/query":
            self.send_error(404, "POST is only served at /query")
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
            request = json.loads(self.rfile.read(length).decode("utf-8"))
            if not isinstance(request, dict) or "q" not in request:
                raise ValueError('body must be a JSON object with a "q" field')
        except (ValueError, UnicodeDecodeError) as exc:
            self._send_json(400, {"ok": False, "error": f"bad request: {exc}"})
            return
        from repro.query.parser import parse_query

        try:
            query = parse_query(str(request["q"]), self.hierarchies)
        except ReproError as exc:
            self._send_json(400, {"ok": False, "error": f"bad query: {exc}"})
            return
        # The handler owns the frontdoor.request root span so it covers
        # the full HTTP round-trip, including reply serialisation; submit
        # sees the root already open and only adds its stage spans.
        tracer = self.fleet.spans
        root_open = tracer is not None and (
            tracer.open(
                query.query_id,
                "frontdoor.request",
                query_class=str(request.get("class", "default")),
            )
            is not None
        )
        try:
            answer = self.fleet.submit(
                query,
                query_class=str(request.get("class", "default")),
                timeout=(
                    None
                    if request.get("timeout") is None
                    else float(request["timeout"])
                ),
            )
        except FleetError as exc:
            if root_open:
                tracer.close(query.query_id, status="error", error=str(exc))
            self._send_json(503, {"ok": False, "error": str(exc)})
            return
        payload: dict[str, Any] = {
            "ok": True,
            "shard": answer.shard_id,
            "accepted": answer.accepted,
            "shed": answer.shed,
            "cache_hit": answer.cache_hit,
        }
        if answer.record is not None:
            payload["record"] = record_to_json(answer.record)
        self._send_json(200, payload)
        if root_open:
            status = "ok" if answer.accepted else "rejected"
            tracer.close(query.query_id, status=status, shed=answer.shed)

    def log_message(self, format, *args):  # noqa: A002 - http.server API
        pass  # requests are routine; keep stderr quiet


class FleetServer:
    """Serve the fleet's HTTP API from a daemon thread.

    ``port=0`` asks the OS for a free port; read :attr:`port` (or
    :attr:`url`) after :meth:`start`.  :meth:`close` is idempotent, so
    shutdown paths can call it unconditionally.
    """

    def __init__(
        self,
        fleet: Fleet,
        port: int = 0,
        host: str = "127.0.0.1",
        hierarchies: Mapping[str, Any] | None = None,
    ):
        if hierarchies is None:
            # the parser only needs dimension shapes, which are a pure
            # function of the schema scale — no dataset build required
            from repro.relational import tpcds_like_schema

            hierarchies = tpcds_like_schema(scale=fleet.spec.scale).hierarchies
        self._fleet = fleet
        self._hierarchies = hierarchies
        self._requested_port = port
        self.host = host
        self._server: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None
        self.port: int | None = None

    def start(self) -> "FleetServer":
        if self._server is not None:
            raise FleetError("fleet server already started")
        handler = type(
            "BoundFrontDoorHandler",
            (_FrontDoorHandler,),
            {"fleet": self._fleet, "hierarchies": self._hierarchies},
        )
        self._server = ThreadingHTTPServer(
            (self.host, self._requested_port), handler
        )
        self._server.daemon_threads = True
        self.port = self._server.server_address[1]
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name=f"fleet-frontdoor-:{self.port}",
            daemon=True,
        )
        self._thread.start()
        return self

    @property
    def url(self) -> str:
        if self.port is None:
            raise FleetError("fleet server not started")
        return f"http://{self.host}:{self.port}"

    def close(self) -> None:
        """Release the listening socket; safe to call repeatedly."""
        if self._server is None:
            return
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._server = None
        self._thread = None

    def __enter__(self) -> "FleetServer":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.close()
