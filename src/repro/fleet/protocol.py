"""The fleet wire protocol: length-prefixed JSON frames over sockets.

One frame is a 4-byte big-endian payload length followed by that many
bytes of UTF-8 JSON.  Length-prefixing (rather than newline delimiting)
keeps the framing independent of payload content and lets the receiver
pre-validate the size before allocating — a frame claiming more than
:data:`MAX_FRAME_BYTES` is a protocol violation, not an allocation.

Requests are JSON objects with a ``"kind"`` discriminator (``ping``,
``query``, ``report``, ``metrics``, ``maintain``, ``spans``,
``shutdown``); responses carry ``"ok": true`` plus kind-specific
fields, or ``"ok": false`` with an ``"error"`` string.  Queries and
records cross the wire through :func:`query_to_json` /
:func:`record_to_json`, which round-trip every field — including
``query_id``, so the front door's ids stay globally unique and
per-shard books reconcile fleet-wide.

**Span context propagation.**  A ``query`` frame may carry an optional
``"traceparent"`` field in the W3C style (``00-<trace_id>-<span_id>-01``
— see :func:`repro.obs.span.format_traceparent`): the front door stamps
it on every frame of a head-sampled query, and its *presence* is the
shard-side sampling signal — the shard's tracer adopts the context and
parents its ``serve.query`` subtree under the front door's span, so the
stitched fleet view shows one causally-linked tree per sampled query.
Frames without the field trace nothing on the shard.  The ``spans`` op
(and the ``shutdown`` response's ``"spans"`` field) drain a shard's
span buffer back to the parent as :meth:`repro.obs.span.Span.to_dict`
objects.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Any, Mapping

from repro.errors import FleetError
from repro.query.model import Condition, Query
from repro.sim.metrics import QueryRecord

__all__ = [
    "MAX_FRAME_BYTES",
    "send_frame",
    "recv_frame",
    "query_to_json",
    "query_from_json",
    "record_to_json",
    "record_from_json",
]

#: Upper bound on one frame's payload.  Reports carry every query record
#: of a run, so the bound is generous; anything larger is a corrupt or
#: hostile length prefix.
MAX_FRAME_BYTES = 64 * 2**20

_LEN = struct.Struct(">I")


def send_frame(sock: socket.socket, message: Mapping[str, Any]) -> None:
    """Serialise one message and write it as a single frame."""
    payload = json.dumps(message, sort_keys=True).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise FleetError(
            f"frame of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte protocol bound"
        )
    sock.sendall(_LEN.pack(len(payload)) + payload)


def _recv_exactly(sock: socket.socket, n: int) -> bytes | None:
    """Read exactly ``n`` bytes; None on a clean EOF at a frame boundary."""
    chunks: list[bytes] = []
    got = 0
    while got < n:
        chunk = sock.recv(min(n - got, 1 << 20))
        if not chunk:
            if got == 0:
                return None
            raise FleetError(
                f"connection closed mid-frame ({got} of {n} bytes read)"
            )
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> dict[str, Any] | None:
    """Read one frame; None when the peer closed between frames."""
    header = _recv_exactly(sock, _LEN.size)
    if header is None:
        return None
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise FleetError(
            f"peer announced a {length}-byte frame, over the "
            f"{MAX_FRAME_BYTES}-byte protocol bound"
        )
    payload = _recv_exactly(sock, length)
    if payload is None:
        raise FleetError("connection closed after frame header")
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FleetError(f"undecodable frame payload: {exc}") from exc
    if not isinstance(message, dict):
        raise FleetError(
            f"frame payload must be a JSON object, got {type(message).__name__}"
        )
    return message


# -- query / record serialisation -------------------------------------------


def query_to_json(query: Query) -> dict[str, Any]:
    """A query as plain JSON, preserving ``query_id`` and all fields."""
    return {
        "query_id": query.query_id,
        "agg": query.agg,
        "measures": list(query.measures),
        "group_by": [[dim, res] for dim, res in query.group_by],
        "conditions": [
            {
                "dimension": cond.dimension,
                "resolution": cond.resolution,
                "lo": cond.lo,
                "hi": cond.hi,
                "text_values": list(cond.text_values),
                "codes": list(cond.codes),
            }
            for cond in query.conditions
        ],
    }


def query_from_json(data: Mapping[str, Any]) -> Query:
    """Rebuild a query from :func:`query_to_json` output.

    Construction re-runs the model's own validation (exactly one
    condition form, known aggregate, no duplicate group-by dimensions),
    so a malformed wire query fails loudly at the boundary.
    """
    conditions = tuple(
        Condition(
            dimension=c["dimension"],
            resolution=int(c["resolution"]),
            lo=None if c.get("lo") is None else int(c["lo"]),
            hi=None if c.get("hi") is None else int(c["hi"]),
            text_values=tuple(str(t) for t in c.get("text_values", ())),
            codes=tuple(int(x) for x in c.get("codes", ())),
        )
        for c in data["conditions"]
    )
    return Query(
        conditions=conditions,
        measures=tuple(str(m) for m in data["measures"]),
        agg=str(data["agg"]),
        group_by=tuple((str(d), int(r)) for d, r in data["group_by"]),
        query_id=int(data["query_id"]),
    )


def record_to_json(record: QueryRecord) -> dict[str, Any]:
    return {
        "query_id": record.query_id,
        "query_class": record.query_class,
        "target": record.target,
        "submit_time": record.submit_time,
        "finish_time": record.finish_time,
        "deadline": record.deadline,
        "estimated_time": record.estimated_time,
        "measured_time": record.measured_time,
        "translated": record.translated,
        "answer": record.answer,
    }


def record_from_json(data: Mapping[str, Any]) -> QueryRecord:
    return QueryRecord(
        query_id=int(data["query_id"]),
        query_class=str(data["query_class"]),
        target=str(data["target"]),
        submit_time=float(data["submit_time"]),
        finish_time=float(data["finish_time"]),
        deadline=float(data["deadline"]),
        estimated_time=float(data["estimated_time"]),
        measured_time=float(data["measured_time"]),
        translated=bool(data["translated"]),
        answer=None if data.get("answer") is None else float(data["answer"]),
    )
