"""Consistent-hash routing with query-shape affinity.

The front door routes by the query's *shape* (conditions + aggregate +
grouping, not its id), so repeated shapes always land on the same shard
and that shard's :class:`~repro.olap.rollup.AdmissionPolicy` sees the
full repetition count — partition affinity is what makes the per-shard
rollup caches effective instead of N-way diluted.

Hashing uses MD5 (stability, not security): Python's builtin ``hash``
is salted per process, and the ring must route identically in the front
door, in tests, and across restarts.  Virtual nodes smooth the load:
each shard owns :data:`DEFAULT_VNODES` points on the ring, so removing
a crashed shard redistributes only its keys instead of rotating the
whole ring (the classic consistent-hashing property).
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from typing import Iterable, Sequence

from repro.errors import FleetError
from repro.query.model import Query

__all__ = ["DEFAULT_VNODES", "HashRing", "affinity_key"]

DEFAULT_VNODES = 64


def _point(key: str) -> int:
    return int.from_bytes(hashlib.md5(key.encode("utf-8")).digest()[:8], "big")


def affinity_key(query: Query) -> str:
    """A canonical string for the query's shape (id-independent).

    Two queries with the same conditions, aggregate, measures, and
    grouping produce the same key regardless of ``query_id`` or the
    order conditions were written in.
    """
    conds = sorted(
        (
            c.dimension,
            c.resolution,
            -1 if c.lo is None else c.lo,
            -1 if c.hi is None else c.hi,
            c.text_values,
            c.codes,
        )
        for c in query.conditions
    )
    return repr((conds, query.agg, tuple(sorted(query.measures)),
                 tuple(sorted(query.group_by))))


class HashRing:
    """Immutable consistent-hash ring over integer shard ids."""

    def __init__(self, shards: Iterable[int], vnodes: int = DEFAULT_VNODES):
        self.shards = tuple(sorted(set(shards)))
        if not self.shards:
            raise FleetError("a hash ring needs at least one shard")
        if vnodes < 1:
            raise FleetError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = vnodes
        points = [
            (_point(f"shard-{shard}:vnode-{v}"), shard)
            for shard in self.shards
            for v in range(vnodes)
        ]
        points.sort()
        self._points = points
        self._hashes = [h for h, _ in points]

    def route(self, key: str, alive: Sequence[int] | None = None) -> int:
        """The shard owning ``key``; with ``alive``, its first live successor.

        Walking successors (instead of re-hashing over the survivors)
        is what keeps keys owned by healthy shards stable when one
        shard crashes — only the crashed shard's keys move.
        """
        allowed = self.shards if alive is None else tuple(alive)
        if not allowed:
            raise FleetError("no live shard to route to")
        allowed_set = set(allowed)
        if not allowed_set <= set(self.shards):
            raise FleetError(
                f"alive set {sorted(allowed_set)} is not a subset of the "
                f"ring's shards {list(self.shards)}"
            )
        start = bisect_right(self._hashes, _point(key))
        n = len(self._points)
        for i in range(n):
            shard = self._points[(start + i) % n][1]
            if shard in allowed_set:
                return shard
        raise FleetError("unreachable: non-empty alive set never matched")

    def route_query(self, query: Query, alive: Sequence[int] | None = None) -> int:
        return self.route(affinity_key(query), alive=alive)
