"""One fleet shard: a full serving engine behind a socket listener.

A shard is a *process* (spawned by :class:`~repro.fleet.fleet.Fleet`
via ``multiprocessing.get_context("spawn")``), so N shards mean N
engine locks, N GILs, and N rollup caches — the scaling unit the
single-process :class:`~repro.serve.engine.ServeEngine` cannot offer.
:func:`run_worker` is the process entry point: it builds the same
materialised world ``repro serve`` uses (deterministic from
``(rows, seed, scale)``, so every shard of a replicated fleet answers
identically), binds a loopback listener on an OS-assigned port, reports
the port back through the spawn pipe, and then serves the
length-prefixed JSON protocol of :mod:`repro.fleet.protocol` with one
handler thread per connection.

At ``shutdown`` with ``drain=true`` the worker drains its engine and
answers with its final books — records, rejection count, a metrics
snapshot, and the verdict of running :func:`~repro.sim.validate.
validate_report` + :func:`~repro.sim.validate.validate_metrics`
*locally* — so the fleet view aggregates already-audited shards.
"""

from __future__ import annotations

import socket
import threading
import traceback
from dataclasses import dataclass
from typing import Any

from repro.fleet.protocol import (
    query_from_json,
    record_to_json,
    recv_frame,
    send_frame,
)

__all__ = ["ShardSpec", "run_worker", "build_shard_engine"]


@dataclass(frozen=True)
class ShardSpec:
    """Everything a worker process needs to build its world.

    Plain picklable primitives only: the spec crosses the ``spawn``
    boundary, where nothing else of the parent survives.  Shards are
    *replicas* — same rows, same seed — so any shard can answer any
    query and routing is purely a cache-affinity/load decision.
    """

    shard_id: int
    rows: int = 10_000
    seed: int = 2012
    scale: float = 0.5
    scheduler: str = "hybrid"
    time_constraint: float = 0.5
    cpu_threads: int = 2
    translation_workers: int = 1
    max_in_flight: int = 256
    slo_target: float = 0.9
    rollup_budget_bytes: int = 8 * 2**20
    #: span head-sampling rate; > 0 attaches a SpanTracer to the shard
    #: engine (same seed as the front door, so both sides of the wire
    #: make identical per-query sampling decisions)
    span_sample: float = 0.0


def build_shard_engine(spec: ShardSpec):
    """Build one shard's engine + registry + rollup router (started).

    The world is the ``repro serve`` world: a TPC-DS-flavoured fact
    table, a 3-level cube pyramid, dictionary translation, the paper's
    partition scheme over a simulated C2070, and the Figure-10
    scheduler chosen by ``spec.scheduler``.  Deliberately a function of
    the spec alone — two calls with equal specs build engines that
    answer every query identically.
    """
    from repro.cli import _serve_scheduler_factory
    from repro.core.perfmodel import XEON_X5667_8T
    from repro.gpu import SimulatedGPU
    from repro.gpu.partitioning import paper_partition_scheme
    from repro.gpu.timing import TESLA_C2070_TIMING
    from repro.metrics import MetricsRegistry, SloMonitor
    from repro.olap import CubePyramid
    from repro.olap.rollup import AdmissionPolicy, RollupCatalog, RollupRouter
    from repro.relational import generate_dataset, tpcds_like_schema
    from repro.serve import ServeEngine
    from repro.sim.system import SystemConfig
    from repro.text import TranslationService, build_dictionaries
    from repro.units import GB

    schema = tpcds_like_schema(scale=spec.scale)
    dataset = generate_dataset(schema, num_rows=spec.rows, seed=spec.seed)
    pyramid = CubePyramid.from_fact_table(
        dataset.table, "sales_price", [0, 1, 2]
    )
    translator = TranslationService(
        build_dictionaries(dataset.vocabularies), schema.hierarchies
    )
    device = SimulatedGPU(global_memory_bytes=GB, timing=TESLA_C2070_TIMING)
    device.load_table(dataset.table)
    config = SystemConfig(
        cpu_model=XEON_X5667_8T.with_overhead(0.002),
        pyramid=pyramid,
        device=device,
        scheme=paper_partition_scheme(),
        translation_service=translator,
        time_constraint=spec.time_constraint,
        scheduler_factory=_serve_scheduler_factory(spec.scheduler),
        translation_workers=spec.translation_workers,
    )
    registry = MetricsRegistry()
    slo = SloMonitor(target=spec.slo_target, registry=registry)
    rollup = RollupRouter(
        RollupCatalog(dataset.table, "sales_price"),
        policy=AdmissionPolicy(byte_budget=spec.rollup_budget_bytes),
    )
    tracer = None
    if spec.span_sample > 0.0:
        from repro.obs.span import SpanTracer

        tracer = SpanTracer(
            spec.span_sample,
            seed=spec.seed,
            process=f"shard-{spec.shard_id}",
        )
    engine = ServeEngine(
        config,
        metrics=registry,
        slo=slo,
        rollup=rollup,
        max_in_flight=spec.max_in_flight,
        cpu_threads=spec.cpu_threads,
        spans=tracer,
    )
    return engine, registry, rollup


class _ShardServer:
    """The in-process request handler behind one shard's listener."""

    def __init__(self, spec: ShardSpec):
        self.spec = spec
        self.engine, self.registry, self.rollup = build_shard_engine(spec)
        self._stop = threading.Event()
        self._drained = False
        self._lifecycle = threading.Lock()

    # -- request handlers ---------------------------------------------------

    def handle(self, request: dict[str, Any]) -> dict[str, Any]:
        kind = request.get("kind")
        handler = getattr(self, f"_on_{kind}", None)
        if handler is None:
            return {"ok": False, "error": f"unknown request kind {kind!r}"}
        try:
            return handler(request)
        except Exception as exc:  # noqa: BLE001 - reported over the wire
            return {
                "ok": False,
                "error": f"{type(exc).__name__}: {exc}",
                "traceback": traceback.format_exc(),
            }

    def _on_ping(self, request: dict[str, Any]) -> dict[str, Any]:
        return {
            "ok": True,
            "shard_id": self.spec.shard_id,
            "in_flight": self.engine.in_flight,
            "elapsed": self.engine.elapsed,
            "drained": self._drained,
        }

    def _on_query(self, request: dict[str, Any]) -> dict[str, Any]:
        from repro.errors import BackpressureError, ServeError

        query = query_from_json(request["query"])
        query_class = str(request.get("class", "default"))
        timeout = float(request.get("timeout", 30.0))
        traceparent = request.get("traceparent")
        if traceparent and self.engine.spans is not None:
            # the frame's context field IS the sampling signal: adopt it
            # so this shard's serve.query subtree parents under the
            # front door's span and shares its trace_id
            self.engine.spans.adopt(query.query_id, str(traceparent))
        try:
            outcome = self.engine.submit(
                query, query_class, block=True, timeout=timeout
            )
        except BackpressureError as exc:
            return {"ok": True, "accepted": False, "shed": True, "why": str(exc)}
        except ServeError as exc:  # draining
            return {"ok": False, "error": str(exc)}
        if not outcome.accepted:
            return {"ok": True, "accepted": False, "shed": False}
        assert outcome.ticket is not None
        if not outcome.ticket.wait(timeout=timeout):
            return {
                "ok": False,
                "error": f"query {query.query_id} timed out after {timeout}s",
            }
        if outcome.ticket.error is not None:
            return {"ok": False, "error": repr(outcome.ticket.error)}
        record = outcome.ticket.record
        return {
            "ok": True,
            "accepted": True,
            "cache_hit": outcome.cache_hit,
            "record": record_to_json(record),
        }

    def _on_metrics(self, request: dict[str, Any]) -> dict[str, Any]:
        snapshot = self.registry.collect(self.engine.elapsed)
        return {"ok": True, "snapshot": snapshot.to_json()}

    def _on_report(self, request: dict[str, Any]) -> dict[str, Any]:
        return {"ok": True, **self._shard_books(validate=False)}

    def _on_maintain(self, request: dict[str, Any]) -> dict[str, Any]:
        limit = request.get("limit")
        n = self.rollup.maintain(limit=None if limit is None else int(limit))
        return {"ok": True, "materialized": n, "cuboids": len(self.rollup.catalog)}

    def _on_spans(self, request: dict[str, Any]) -> dict[str, Any]:
        """Ship the shard's span buffer to the caller.

        ``drain`` (default true) pops the buffer so repeated gathers
        never double-count; ``drain: false`` snapshots it instead.
        """
        tracer = self.engine.spans
        if tracer is None:
            return {"ok": True, "shard_id": self.spec.shard_id, "spans": []}
        spans = tracer.drain() if request.get("drain", True) else tracer.spans()
        return {
            "ok": True,
            "shard_id": self.spec.shard_id,
            "spans": [s.to_dict() for s in spans],
            "dropped": tracer.dropped,
        }

    def _on_shutdown(self, request: dict[str, Any]) -> dict[str, Any]:
        with self._lifecycle:
            drain = bool(request.get("drain", True))
            drain_error = None
            if not self._drained:
                from repro.errors import ServeError

                try:
                    if drain:
                        self.engine.drain()
                    else:
                        self.engine.stop(finish_queued=False)
                except ServeError as exc:
                    drain_error = str(exc)
                self._drained = True
            books = self._shard_books(validate=drain)
            span_payload: list[dict[str, Any]] = []
            tracer = self.engine.spans
            if tracer is not None:
                # engine.stop() already closed stragglers as abandoned;
                # this is the safety net for the non-drain path
                tracer.close_all(status="abandoned")
                span_payload = [s.to_dict() for s in tracer.drain()]
            self._stop.set()
            return {
                "ok": True,
                "drain_error": drain_error,
                "spans": span_payload,
                **books,
            }

    def _shard_books(self, validate: bool) -> dict[str, Any]:
        """The shard's final (or mid-run) books, locally audited."""
        engine = self.engine
        report = engine.report()
        snapshot = self.registry.collect(engine.elapsed)
        validation = "ok (not audited mid-run)"
        if validate:
            from repro.sim.validate import validate_metrics, validate_report

            result = validate_report(report, require_drained=True)
            verdicts = [result.summary()]
            verdicts.append(validate_metrics(report, snapshot).summary())
            validation = (
                "ok (dependency, discipline, conservation, metrics checked)"
                if all(v.startswith("ok") for v in verdicts)
                else "; ".join(v for v in verdicts if not v.startswith("ok"))
            )
        return {
            "shard_id": self.spec.shard_id,
            "records": [record_to_json(r) for r in engine.records],
            "cache_hits": [record_to_json(r) for r in engine.cache_hits],
            "rejected": engine.rejected,
            "errors": len(engine.errors),
            "elapsed": engine.elapsed,
            "snapshot": snapshot.to_json(),
            "validation": validation,
        }

    # -- the serve loop -----------------------------------------------------

    def _serve_connection(self, conn: socket.socket) -> None:
        try:
            while True:
                request = recv_frame(conn)
                if request is None:
                    return
                send_frame(conn, self.handle(request))
                if self._stop.is_set():
                    return
        except OSError:
            return  # peer went away; the fleet will notice via health checks
        finally:
            conn.close()

    def serve(self, listener: socket.socket) -> None:
        listener.settimeout(0.2)  # poll the stop flag between accepts
        try:
            while not self._stop.is_set():
                try:
                    conn, _ = listener.accept()
                except socket.timeout:
                    continue
                except OSError:
                    break
                threading.Thread(
                    target=self._serve_connection,
                    args=(conn,),
                    name=f"shard-{self.spec.shard_id}-conn",
                    daemon=True,
                ).start()
        finally:
            listener.close()
            if not self._drained:
                self.engine.stop(finish_queued=False)


def run_worker(spec: ShardSpec, ready) -> None:
    """Process entry point: build the world, report the port, serve.

    ``ready`` is the child end of a ``multiprocessing`` pipe; the worker
    sends exactly one message on it — ``{"shard_id", "port"}`` on
    success, or ``{"shard_id", "error"}`` if the world build failed —
    then serves until a ``shutdown`` request.
    """
    import signal

    # group signals (a terminal Ctrl-C, a supervisor's TERM to the process
    # group) must not kill shards out from under the front door — graceful
    # shutdown is the parent's job, coordinated via the shutdown frame.
    # Stragglers are still killable: Fleet._join_all escalates to SIGKILL.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    signal.signal(signal.SIGTERM, signal.SIG_IGN)
    try:
        server = _ShardServer(spec)
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen(64)
        server.engine.start()
    except Exception as exc:  # noqa: BLE001 - reported through the pipe
        ready.send(
            {"shard_id": spec.shard_id, "error": f"{type(exc).__name__}: {exc}"}
        )
        ready.close()
        return
    ready.send({"shard_id": spec.shard_id, "port": listener.getsockname()[1]})
    ready.close()
    server.serve(listener)
