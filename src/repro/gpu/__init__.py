"""Simulated GPU substrate.

The paper runs on an NVIDIA Tesla C2070 (Fermi, 14 streaming
multiprocessors, concurrent kernel execution).  No GPU is available in
this environment, so this package provides a *simulated device* (see
DESIGN.md §2): the query kernels compute real answers with vectorised
NumPy over per-SM row shards (:mod:`repro.gpu.kernels`), while service
times come from a timing model driven by the same quantities as the
paper's measured performance functions — the scanned-column fraction
:math:`C/C_{TOTAL}` and the partition's SM count (eq. 13-15,
:mod:`repro.gpu.timing`).

- :mod:`repro.gpu.device` — the device: memory residency, SM inventory,
  query execution.
- :mod:`repro.gpu.partitioning` — SM partition schemes (the paper's
  2x1 + 2x2 + 2x4 split of the C2070, plus ablation alternatives).
"""

from repro.gpu.timing import (
    GPUTimingModel,
    LinearColumnTiming,
    BandwidthTiming,
    TESLA_C2070_TIMING,
)
from repro.gpu.device import SimulatedGPU, TableDescriptor, KernelExecution
from repro.gpu.partitioning import (
    GPUPartition,
    PartitionScheme,
    paper_partition_scheme,
    monolithic_scheme,
)
from repro.gpu.cubebuild import CubeBuildResult, build_cube_on_device

__all__ = [
    "CubeBuildResult",
    "build_cube_on_device",
    "GPUTimingModel",
    "LinearColumnTiming",
    "BandwidthTiming",
    "TESLA_C2070_TIMING",
    "SimulatedGPU",
    "TableDescriptor",
    "KernelExecution",
    "GPUPartition",
    "PartitionScheme",
    "paper_partition_scheme",
    "monolithic_scheme",
]
