"""GPU-side cube construction.

Section III-A assigns the GPU two tasks: answering queries *and*
*"building the cube from relational tables stored in GPU memory"* — the
path by which new pyramid levels are pre-calculated without streaming
the fact table through the host.

The simulated implementation mirrors the query kernels' structure
(:mod:`repro.gpu.kernels`): the resident table's rows are split into
per-SM shards, each shard accumulates a *partial cube* (dense sum/count
arrays via ``bincount`` — the array-based aggregation of [20] on SIMT
hardware), and the partials are reduced pairwise on the device (a
parallel tree reduction).  The result is bit-identical to
:meth:`OLAPCube.from_fact_table`, which the tests assert.

Timing follows the same bandwidth law as query scans: the build streams
every dimension column at the target resolutions plus the measure
column once, and writes the cube cells.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import CubeError, DeviceError
from repro.gpu.device import SimulatedGPU
from repro.gpu.kernels import _shard_bounds
from repro.olap.cube import OLAPCube

__all__ = ["CubeBuildResult", "build_cube_on_device"]


@dataclass(frozen=True)
class ShardCube:
    """One SM shard's partial cube (dense sum/count)."""

    shard: int
    sums: np.ndarray
    counts: np.ndarray


@dataclass(frozen=True)
class CubeBuildResult:
    """Outcome of a device-side cube build."""

    cube: OLAPCube
    simulated_time: float
    n_sm: int
    bytes_streamed: int
    reduction_depth: int


def _shard_partial(
    table, coords: list[np.ndarray], values: np.ndarray, shape: tuple[int, ...],
    shard: int, lo: int, hi: int,
) -> ShardCube:
    size = int(np.prod(shape))
    local = [c[lo:hi] for c in coords]
    flat = (
        np.ravel_multi_index(local, shape)
        if hi > lo
        else np.empty(0, dtype=np.intp)
    )
    sums = np.bincount(flat, weights=values[lo:hi], minlength=size)
    counts = np.bincount(flat, minlength=size).astype(np.float64)
    return ShardCube(shard=shard, sums=sums, counts=counts)


def _tree_reduce(partials: list[ShardCube]) -> tuple[np.ndarray, np.ndarray, int]:
    """Pairwise tree reduction of the per-SM partial cubes."""
    depth = 0
    level = partials
    while len(level) > 1:
        depth += 1
        nxt: list[ShardCube] = []
        for i in range(0, len(level) - 1, 2):
            a, b = level[i], level[i + 1]
            nxt.append(
                ShardCube(shard=a.shard, sums=a.sums + b.sums, counts=a.counts + b.counts)
            )
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
    return level[0].sums, level[0].counts, depth


def build_cube_on_device(
    device: SimulatedGPU,
    measure: str,
    resolutions: Sequence[int],
    n_sm: int | None = None,
    max_cells: int = 1 << 24,
) -> CubeBuildResult:
    """Build a dense cube from the device-resident fact table.

    Parameters
    ----------
    device:
        A :class:`SimulatedGPU` with a *materialised* table resident
        (analytic descriptors carry no data to aggregate).
    measure:
        Measure column to aggregate.
    resolutions:
        Target resolution per dimension.
    n_sm:
        SMs used for the build; defaults to the whole device (cube
        builds are batch jobs, not latency-bound queries).
    max_cells:
        Guard against cubes that exceed (simulated) device memory.
    """
    table = device.table
    if table is None:
        raise DeviceError(
            "cube building requires a materialised resident table; the "
            "analytic plane pre-computes pyramid levels from shapes alone"
        )
    if n_sm is None:
        n_sm = device.num_sms
    device._check_sm(n_sm)

    schema = table.schema
    dims = schema.dimensions
    if len(resolutions) != len(dims):
        raise CubeError(
            f"expected {len(dims)} resolutions, got {len(resolutions)}"
        )
    shape = tuple(d.cardinality(d.check_resolution(r)) for d, r in zip(dims, resolutions))
    n_cells = int(np.prod([int(s) for s in shape], dtype=object))
    if n_cells > max_cells:
        raise CubeError(
            f"cube of {n_cells} cells exceeds the device build budget ({max_cells})"
        )
    cell_bytes = n_cells * 16  # sum + count as float64
    if cell_bytes + table.nbytes > device.global_memory_bytes:
        raise DeviceError(
            "cube does not fit in device memory next to the fact table"
        )

    coords = []
    dim_bytes = 0
    for d, r in zip(dims, resolutions):
        level = d.level(r)
        col = table.column(f"{d.name}__{level.name}")
        coords.append(np.asarray(col, dtype=np.intp))
        dim_bytes += col.nbytes
    values = np.asarray(table.column(measure), dtype=np.float64)

    partials = [
        _shard_partial(table, coords, values, shape, i, lo, hi)
        for i, (lo, hi) in enumerate(_shard_bounds(table.num_rows, n_sm))
    ]
    sums, counts, depth = _tree_reduce(partials)

    cube = OLAPCube(
        dims,
        list(resolutions),
        {"sum": sums.reshape(shape), "count": counts.reshape(shape)},
        measure=measure,
    )

    # timing: stream the needed columns once through the partition's
    # bandwidth, write the cube, plus one reduction pass per tree level
    bytes_streamed = dim_bytes + values.nbytes
    scan_fraction = bytes_streamed / max(1, table.nbytes)
    scan_time = device.timing.query_time(min(1.0, max(1e-9, scan_fraction)), n_sm)
    write_time = cell_bytes / (144e9)  # full-device bandwidth for the cube write
    reduce_time = depth * cell_bytes / (144e9)
    return CubeBuildResult(
        cube=cube,
        simulated_time=scan_time + write_time + reduce_time,
        n_sm=n_sm,
        bytes_streamed=int(bytes_streamed + cell_bytes),
        reduction_depth=depth,
    )
