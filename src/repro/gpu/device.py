"""The simulated GPU device.

:class:`SimulatedGPU` models the accelerator the paper evaluates on — a
Tesla C2070-class device with 14 SMs and 6 GB of global memory — at the
level the scheduling algorithm observes it:

* a fact table resident in global memory (loading checks capacity);
* query execution on a subset of SMs (a partition), returning both the
  real answer (via :mod:`repro.gpu.kernels`) and the simulated service
  time (via the timing model);
* an *analytic* residency mode (:class:`TableDescriptor`) for
  paper-scale runs where a ~4 GB table cannot be materialised: execution
  returns timing only, exactly what the discrete-event evaluation needs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DeviceError, TranslationError
from repro.gpu.kernels import KernelResult, run_query_kernel
from repro.gpu.timing import BandwidthTiming, GPUTimingModel
from repro.query.model import Query, QueryDecomposition, decompose
from repro.relational.schema import TableSchema
from repro.relational.table import FactTable
from repro.units import GB, fmt_bytes

__all__ = ["TableDescriptor", "KernelExecution", "SimulatedGPU"]


@dataclass(frozen=True)
class TableDescriptor:
    """Shape-only stand-in for a fact table too large to materialise."""

    schema: TableSchema
    num_rows: int

    def __post_init__(self) -> None:
        if self.num_rows < 0:
            raise DeviceError("num_rows must be >= 0")

    @property
    def nbytes(self) -> int:
        return self.schema.table_nbytes(self.num_rows)

    @property
    def total_columns(self) -> int:
        return self.schema.total_columns


@dataclass(frozen=True)
class KernelExecution:
    """Outcome of one device execution: timing always, answer when real."""

    simulated_time: float
    n_sm: int
    column_fraction: float
    kernel: KernelResult | None = None

    @property
    def value(self) -> float:
        if self.kernel is None:
            raise DeviceError("analytic execution carries no answer")
        return self.kernel.result.value()


class SimulatedGPU:
    """A Fermi-class device as seen by the scheduler.

    Parameters
    ----------
    num_sms:
        Streaming multiprocessors available for partitioning (the C2070
        exposes 14 active SMs).
    global_memory_bytes:
        Device memory capacity; table loading enforces it.
    timing:
        The :class:`GPUTimingModel`; defaults to a bandwidth-derived
        model sized to the resident table at load time.
    name:
        Device label for reports.
    """

    def __init__(
        self,
        num_sms: int = 14,
        global_memory_bytes: float = 6 * GB,
        timing: GPUTimingModel | None = None,
        name: str = "SimulatedTeslaC2070",
    ):
        if num_sms < 1:
            raise DeviceError(f"num_sms must be >= 1, got {num_sms}")
        if global_memory_bytes <= 0:
            raise DeviceError("global_memory_bytes must be positive")
        self.num_sms = num_sms
        self.global_memory_bytes = float(global_memory_bytes)
        self.name = name
        self._timing = timing
        self._table: FactTable | None = None
        self._descriptor: TableDescriptor | None = None

    # -- residency ------------------------------------------------------------

    def load_table(self, table: FactTable | TableDescriptor) -> None:
        """Make a fact table resident in (simulated) global memory.

        Sizes the default bandwidth timing model to the table if no
        timing model was injected.
        """
        nbytes = table.nbytes
        if nbytes > self.global_memory_bytes:
            raise DeviceError(
                f"table of {fmt_bytes(nbytes)} exceeds device memory "
                f"{fmt_bytes(self.global_memory_bytes)}"
            )
        if isinstance(table, FactTable):
            self._table = table
            self._descriptor = TableDescriptor(table.schema, table.num_rows)
        else:
            self._table = None
            self._descriptor = table
        if self._timing is None:
            self._timing = BandwidthTiming(table_nbytes=max(1, nbytes))

    @property
    def table(self) -> FactTable | None:
        return self._table

    @property
    def descriptor(self) -> TableDescriptor:
        if self._descriptor is None:
            raise DeviceError("no table resident; call load_table first")
        return self._descriptor

    @property
    def timing(self) -> GPUTimingModel:
        if self._timing is None:
            raise DeviceError("no timing model; load a table or inject one")
        return self._timing

    @property
    def is_analytic(self) -> bool:
        """True when only a descriptor (no real data) is resident."""
        return self._table is None and self._descriptor is not None

    # -- estimation -------------------------------------------------------

    def estimate_time(self, decomposition: QueryDecomposition, n_sm: int) -> float:
        """:math:`T_{GPU}` (eq. 13) for a decomposed query on ``n_sm`` SMs."""
        self._check_sm(n_sm)
        frac = decomposition.column_fraction(self.descriptor.total_columns)
        return self.timing.query_time(frac, n_sm)

    def estimate_time_many(self, column_fractions, n_sm: int):
        """Batch :math:`T_{GPU}` over precomputed column fractions.

        One vectorised timing-model pass; bit-identical to calling
        :meth:`estimate_time` per query with the same fractions.
        """
        self._check_sm(n_sm)
        return self.timing.query_time_many(column_fractions, n_sm)

    def _check_sm(self, n_sm: int) -> None:
        if not 1 <= n_sm <= self.num_sms:
            raise DeviceError(
                f"partition of {n_sm} SMs impossible on a {self.num_sms}-SM device"
            )

    # -- execution ------------------------------------------------------------

    def execute(self, decomposition: QueryDecomposition, n_sm: int) -> KernelExecution:
        """Run a decomposed query on a partition of ``n_sm`` SMs.

        With a materialised table the real kernels run and the answer is
        returned alongside the simulated service time; in analytic mode
        only the time is produced.  Untranslated text predicates are
        rejected in both modes (the GPU cannot compare strings).
        """
        self._check_sm(n_sm)
        if decomposition.needs_translation:
            raise TranslationError(
                f"query {decomposition.query.query_id} reached the GPU with "
                f"{decomposition.num_text_conditions} untranslated text conditions"
            )
        frac = decomposition.column_fraction(self.descriptor.total_columns)
        simulated = self.timing.query_time(frac, n_sm)
        kernel = None
        if self._table is not None:
            kernel = run_query_kernel(self._table, decomposition, n_sm)
        return KernelExecution(
            simulated_time=simulated, n_sm=n_sm, column_fraction=frac, kernel=kernel
        )

    def execute_query(self, query: Query, n_sm: int) -> KernelExecution:
        """Decompose and execute in one step (convenience for examples)."""
        decomposition = decompose(query, self.descriptor.schema.hierarchies)
        return self.execute(decomposition, n_sm)

    def execute_groupby(self, query: Query, n_sm: int):
        """Grouped execution: (GroupedResult | None, simulated seconds).

        Timing follows the same eq.-13 law — group columns count into
        :math:`C_{Q_D}` through the decomposition.  Analytic devices
        return timing only.
        """
        from repro.groupby import run_groupby_kernel

        self._check_sm(n_sm)
        if not query.group_by:
            raise DeviceError("query has no group_by; use execute_query")
        decomposition = decompose(query, self.descriptor.schema.hierarchies)
        if decomposition.needs_translation:
            raise TranslationError(
                f"query {query.query_id} reached the GPU with untranslated text"
            )
        frac = decomposition.column_fraction(self.descriptor.total_columns)
        simulated = self.timing.query_time(frac, n_sm)
        result = None
        if self._table is not None:
            result = run_groupby_kernel(self._table, decomposition, n_sm)
        return result, simulated

    def __repr__(self) -> str:
        resident = (
            "empty"
            if self._descriptor is None
            else f"table {fmt_bytes(self.descriptor.nbytes)}"
            + (" (analytic)" if self.is_analytic else "")
        )
        return f"SimulatedGPU({self.name!r}, {self.num_sms} SMs, {resident})"
