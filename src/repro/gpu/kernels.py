"""Simulated GPU query kernels.

The paper's GPU path follows the four-step pipeline of Lauer et al. [9]:

1. preprocessing on the CPU (query decomposition + translation — handled
   by :mod:`repro.query.model` and :mod:`repro.text.translator`);
2. parallel table scan on the GPU — each thread checks its tuples
   against every filtration condition;
3. parallel reduction on the GPU — per-block partial aggregates;
4. final aggregation on the CPU — combining the small number of partials.

This module reproduces steps 2-4 with per-SM row shards: the resident
table's rows are split into ``n_sm`` contiguous shards, each shard scans
and reduces independently (vectorised NumPy standing in for the SIMT
lanes), and the partials are combined on the host.  Answers are
bit-identical to the reference :meth:`FactTable.scan` — asserted by the
integration tests — so the hybrid system returns the same result
whichever resource the scheduler picks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DeviceError, QueryError, TranslationError
from repro.query.model import QueryDecomposition
from repro.relational.table import FactTable, ScanResult

__all__ = ["ShardPartial", "KernelResult", "run_query_kernel", "combine_partials"]


@dataclass(frozen=True)
class ShardPartial:
    """Partial aggregate produced by one SM's shard (step 3 output)."""

    shard: int
    rows_scanned: int
    rows_matched: int
    sums: dict[str, float]
    mins: dict[str, float]
    maxs: dict[str, float]


@dataclass(frozen=True)
class KernelResult:
    """Final result of a simulated kernel execution.

    Wraps the combined :class:`ScanResult` with the per-shard partials
    (useful for asserting the reduction is exact and for inspecting load
    balance across SMs).
    """

    result: ScanResult
    partials: tuple[ShardPartial, ...]

    @property
    def num_shards(self) -> int:
        return len(self.partials)


def _shard_bounds(num_rows: int, n_shards: int) -> list[tuple[int, int]]:
    """Contiguous near-equal row shards, one per simulated SM."""
    if n_shards < 1:
        raise DeviceError(f"n_shards must be >= 1, got {n_shards}")
    edges = np.linspace(0, num_rows, n_shards + 1).astype(int)
    return [(int(edges[i]), int(edges[i + 1])) for i in range(n_shards)]


def _scan_shard(
    table: FactTable,
    decomposition: QueryDecomposition,
    shard_idx: int,
    lo: int,
    hi: int,
) -> ShardPartial:
    """Steps 2+3 for one shard: predicate scan, conjunction, reduction."""
    mask = np.ones(hi - lo, dtype=bool)
    for pred in decomposition.predicates:
        cond = pred.condition
        if cond.is_text:
            raise TranslationError(
                f"kernel received untranslated text predicate on {pred.column!r}; "
                "the scheduler must route the query through the translation "
                "partition first"
            )
        col = table.column(pred.column)[lo:hi]
        if cond.is_range:
            assert cond.lo is not None and cond.hi is not None
            mask &= (col >= cond.lo) & (col < cond.hi)
        else:
            mask &= np.isin(col, np.asarray(cond.codes, dtype=col.dtype))

    matched = int(np.count_nonzero(mask))
    sums: dict[str, float] = {}
    mins: dict[str, float] = {}
    maxs: dict[str, float] = {}
    for measure in decomposition.data_columns:
        vals = table.column(measure)[lo:hi][mask]
        sums[measure] = float(vals.sum()) if matched else 0.0
        mins[measure] = float(vals.min()) if matched else float("inf")
        maxs[measure] = float(vals.max()) if matched else float("-inf")
    return ShardPartial(
        shard=shard_idx,
        rows_scanned=hi - lo,
        rows_matched=matched,
        sums=sums,
        mins=mins,
        maxs=maxs,
    )


def combine_partials(
    decomposition: QueryDecomposition,
    partials: tuple[ShardPartial, ...],
    bytes_read: int,
) -> ScanResult:
    """Step 4: host-side final aggregation of the per-SM partials."""
    agg = decomposition.query.agg
    rows = sum(p.rows_matched for p in partials)
    values: dict[str, float] = {}
    if agg == "count":
        values["count"] = float(rows)
    else:
        for measure in decomposition.data_columns:
            total = sum(p.sums[measure] for p in partials)
            if agg == "sum":
                values[measure] = total if rows else 0.0
            elif agg == "avg":
                values[measure] = total / rows if rows else float("nan")
            elif agg == "min":
                m = min(p.mins[measure] for p in partials)
                values[measure] = m if rows else float("nan")
            elif agg == "max":
                m = max(p.maxs[measure] for p in partials)
                values[measure] = m if rows else float("nan")
            else:  # pragma: no cover - Query validates agg names
                raise QueryError(f"unknown aggregate {agg!r}")
    return ScanResult(
        values=values,
        rows_matched=rows,
        columns_read=decomposition.columns_accessed,
        bytes_read=bytes_read,
    )


def run_query_kernel(
    table: FactTable,
    decomposition: QueryDecomposition,
    n_sm: int,
) -> KernelResult:
    """Execute a decomposed query across ``n_sm`` simulated SM shards."""
    bounds = _shard_bounds(table.num_rows, n_sm)
    partials = tuple(
        _scan_shard(table, decomposition, i, lo, hi)
        for i, (lo, hi) in enumerate(bounds)
    )
    bytes_read = sum(
        table.column_nbytes(p.column) for p in decomposition.predicates
    ) + sum(table.column_nbytes(m) for m in decomposition.data_columns)
    return KernelResult(
        result=combine_partials(decomposition, partials, int(bytes_read)),
        partials=partials,
    )
