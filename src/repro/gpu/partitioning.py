"""SM partition schemes (Figure 7 of the paper).

Fermi's concurrent-kernel execution lets the system treat one GPU as
several independent partitions, each a fixed number of SMs with its own
queue.  The paper's scheduler uses six partitions on the 14-SM C2070:
two of 1 SM, two of 2 SMs and two of 4 SMs (*"This functional
partitioning has been optimized for the Tesla C2070"*), ordered
slowest-first so cheap queries land on small partitions and the big
partitions stay free for expensive queries.

:class:`PartitionScheme` validates a partition list against a device and
exposes the orderings the scheduling algorithm iterates over.  The
ABL-PART ablation benchmark compares the paper's scheme against a
monolithic device and uniform splits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.errors import PartitionError
from repro.gpu.device import SimulatedGPU

__all__ = [
    "GPUPartition",
    "PartitionScheme",
    "paper_partition_scheme",
    "monolithic_scheme",
    "uniform_scheme",
]


@dataclass(frozen=True)
class GPUPartition:
    """One GPU partition: an index, a label and its SM count."""

    index: int
    n_sm: int

    def __post_init__(self) -> None:
        if self.index < 0:
            raise PartitionError(f"partition index must be >= 0, got {self.index}")
        if self.n_sm < 1:
            raise PartitionError(f"partition needs >= 1 SM, got {self.n_sm}")

    @property
    def name(self) -> str:
        return f"G{self.index + 1}"

    def __str__(self) -> str:
        return f"{self.name}({self.n_sm}SM)"


class PartitionScheme:
    """An ordered set of GPU partitions over one device.

    Partitions are kept in the given order, which the scheduler treats
    as slowest-first (Figure 10, step 5 iterates from :math:`Q_{G1}`
    towards :math:`Q_{G6}`).  The constructor sorts ascending by SM
    count to enforce that invariant.
    """

    def __init__(self, sm_counts: Sequence[int]):
        if not sm_counts:
            raise PartitionError("a scheme needs at least one partition")
        ordered = sorted(sm_counts)
        self.partitions: tuple[GPUPartition, ...] = tuple(
            GPUPartition(index=i, n_sm=n) for i, n in enumerate(ordered)
        )

    @property
    def sm_counts(self) -> tuple[int, ...]:
        return tuple(p.n_sm for p in self.partitions)

    @property
    def total_sms(self) -> int:
        return sum(self.sm_counts)

    def __len__(self) -> int:
        return len(self.partitions)

    def __iter__(self) -> Iterator[GPUPartition]:
        return iter(self.partitions)

    def __getitem__(self, i: int) -> GPUPartition:
        return self.partitions[i]

    def validate_for(self, device: SimulatedGPU) -> None:
        """Check the scheme fits the device's SM inventory."""
        if self.total_sms > device.num_sms:
            raise PartitionError(
                f"scheme uses {self.total_sms} SMs but device has {device.num_sms}"
            )

    def slowest_first(self) -> tuple[GPUPartition, ...]:
        """Partitions from fewest to most SMs (the step-5 search order)."""
        return self.partitions

    def fastest(self) -> GPUPartition:
        """The partition with the most SMs (:math:`T_{GPU3}`'s partition)."""
        return self.partitions[-1]

    @property
    def distinct_sm_counts(self) -> tuple[int, ...]:
        """SM counts needing a processing-time estimate (step 2)."""
        return tuple(sorted(set(self.sm_counts)))

    def __repr__(self) -> str:
        return "PartitionScheme[" + ", ".join(str(p) for p in self.partitions) + "]"


def paper_partition_scheme() -> PartitionScheme:
    """The paper's C2070 split: 2x1 SM + 2x2 SM + 2x4 SM (12 of 14 SMs)."""
    return PartitionScheme([1, 1, 2, 2, 4, 4])


def monolithic_scheme(num_sms: int = 14) -> PartitionScheme:
    """A single partition owning the whole device (eq. 15's 14-SM mode)."""
    return PartitionScheme([num_sms])


def uniform_scheme(num_partitions: int, sm_per_partition: int) -> PartitionScheme:
    """``num_partitions`` equal partitions (ablation alternative)."""
    if num_partitions < 1:
        raise PartitionError("need at least one partition")
    return PartitionScheme([sm_per_partition] * num_partitions)
