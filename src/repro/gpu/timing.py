"""GPU query-time models (eq. 13-15 of the paper).

The paper models GPU query time as a function of the *fraction of table
columns scanned* and the partition's SM count::

    T_GPU = P_GPU(C_QD / C_TOTAL, n_SM)                       (eq. 13)

with measured linear fits for the Tesla C2070 (Figure 8)::

    P_GPU|1SM  = 0.0030  * (C/C_tot) + 0.0258
    P_GPU|2SM  = 0.0015  * (C/C_tot) + 0.0130                 (eq. 14)
    P_GPU|4SM  = 0.0008  * (C/C_tot) + 0.0065
    P_GPU|14SM = 0.00021 * (C/C_tot) + 0.0020                 (eq. 15)

:class:`LinearColumnTiming` implements exactly this family (and ships
the published coefficients as :data:`TESLA_C2070_TIMING`).
:class:`BandwidthTiming` is a physically-derived alternative (bytes
scanned over per-SM memory bandwidth plus launch overhead) used by the
simulated device when no measured fit is available; the calibration
pipeline (:mod:`repro.core.calibration`) can fit a
:class:`LinearColumnTiming` from either real or simulated measurements,
which is how Figure 8 is regenerated.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.errors import DeviceError

__all__ = [
    "GPUTimingModel",
    "LinearColumnTiming",
    "BandwidthTiming",
    "OverheadTiming",
    "TESLA_C2070_TIMING",
]


class GPUTimingModel(ABC):
    """Maps (scanned-column fraction, SM count) to seconds."""

    @abstractmethod
    def query_time(self, column_fraction: float, n_sm: int) -> float:
        """Service time of one query on a partition of ``n_sm`` SMs.

        ``column_fraction`` is :math:`C_{Q_D}/C_{TOTAL}` (eq. 12/13),
        in ``(0, 1]``.
        """

    def query_time_many(
        self, column_fractions: Sequence[float] | np.ndarray, n_sm: int
    ) -> np.ndarray:
        """Batch evaluation; bit-identical to looping :meth:`query_time`.

        Subclasses with closed-form linear timing override this with a
        single vectorised pass; the default simply loops.
        """
        arr = np.asarray(column_fractions, dtype=np.float64)
        return np.fromiter(
            (self.query_time(float(f), n_sm) for f in arr),
            dtype=np.float64,
            count=arr.size,
        )

    def _check(self, column_fraction: float, n_sm: int) -> None:
        if not 0.0 < column_fraction <= 1.0:
            raise DeviceError(
                f"column fraction must be in (0, 1], got {column_fraction}"
            )
        if n_sm < 1:
            raise DeviceError(f"n_sm must be >= 1, got {n_sm}")

    def _check_many(
        self, column_fractions: Sequence[float] | np.ndarray, n_sm: int
    ) -> np.ndarray:
        arr = np.asarray(column_fractions, dtype=np.float64)
        bad = (arr <= 0.0) | (arr > 1.0)
        if arr.size and bad.any():
            raise DeviceError(
                f"column fraction must be in (0, 1], got {float(arr[bad][0])}"
            )
        if n_sm < 1:
            raise DeviceError(f"n_sm must be >= 1, got {n_sm}")
        return arr


@dataclass(frozen=True)
class LinearColumnTiming(GPUTimingModel):
    """The paper's measured model family: ``a(n_sm) * frac + b(n_sm)``.

    ``coefficients`` maps an SM count to its ``(slope, intercept)`` pair
    in seconds.  SM counts without a measured pair are interpolated by
    inverse-SM scaling from the nearest measured count (both slope and
    intercept in eq. 14 scale almost exactly as ``1/n_sm``, which is the
    physical expectation for a bandwidth-bound scan).
    """

    coefficients: Mapping[int, tuple[float, float]]

    def __post_init__(self) -> None:
        if not self.coefficients:
            raise DeviceError("need at least one (slope, intercept) pair")
        for n_sm, (a, b) in self.coefficients.items():
            if n_sm < 1 or a < 0 or b < 0:
                raise DeviceError(
                    f"invalid coefficient entry {n_sm}: ({a}, {b})"
                )

    def query_time(self, column_fraction: float, n_sm: int) -> float:
        self._check(column_fraction, n_sm)
        pair = self.coefficients.get(n_sm)
        if pair is None:
            # inverse-SM extrapolation from the nearest measured count
            nearest = min(self.coefficients, key=lambda k: abs(k - n_sm))
            a, b = self.coefficients[nearest]
            scale = nearest / n_sm
            pair = (a * scale, b * scale)
        a, b = pair
        return a * column_fraction + b

    def query_time_many(
        self, column_fractions: Sequence[float] | np.ndarray, n_sm: int
    ) -> np.ndarray:
        arr = self._check_many(column_fractions, n_sm)
        pair = self.coefficients.get(n_sm)
        if pair is None:
            nearest = min(self.coefficients, key=lambda k: abs(k - n_sm))
            a, b = self.coefficients[nearest]
            scale = nearest / n_sm
            pair = (a * scale, b * scale)
        a, b = pair
        return a * arr + b

    @property
    def measured_sm_counts(self) -> tuple[int, ...]:
        return tuple(sorted(self.coefficients))


#: Eq. 14-15: the published Tesla C2070 fits (4 GB table resident).
TESLA_C2070_TIMING = LinearColumnTiming(
    coefficients={
        1: (0.0030, 0.0258),
        2: (0.0015, 0.0130),
        4: (0.0008, 0.0065),
        14: (0.00021, 0.0020),
    }
)


@dataclass(frozen=True)
class BandwidthTiming(GPUTimingModel):
    """Physically-derived timing: scan bytes over aggregate bandwidth.

    ``time = table_bytes * column_fraction / (per_sm_bandwidth * n_sm)
    + launch_overhead``.

    Defaults approximate a C2070: 144 GB/s of global-memory bandwidth
    across 14 SMs (~10.3 GB/s per SM) and a fixed per-query overhead for
    kernel launch plus the CPU pre/post-processing steps of the
    Lauer et al. pipeline the paper adopts.
    """

    table_nbytes: float
    per_sm_bandwidth: float = 144e9 / 14
    launch_overhead: float = 2.0e-3

    def __post_init__(self) -> None:
        if self.table_nbytes <= 0:
            raise DeviceError("table_nbytes must be positive")
        if self.per_sm_bandwidth <= 0:
            raise DeviceError("per_sm_bandwidth must be positive")
        if self.launch_overhead < 0:
            raise DeviceError("launch_overhead must be >= 0")

    def query_time(self, column_fraction: float, n_sm: int) -> float:
        self._check(column_fraction, n_sm)
        scanned = self.table_nbytes * column_fraction
        return scanned / (self.per_sm_bandwidth * n_sm) + self.launch_overhead

    def query_time_many(
        self, column_fractions: Sequence[float] | np.ndarray, n_sm: int
    ) -> np.ndarray:
        arr = self._check_many(column_fractions, n_sm)
        scanned = self.table_nbytes * arr
        return scanned / (self.per_sm_bandwidth * n_sm) + self.launch_overhead


@dataclass(frozen=True)
class OverheadTiming(GPUTimingModel):
    """A base model plus a fixed per-query dispatch overhead.

    The published partition fits (eq. 14) cover the on-device scan only;
    the end-to-end per-query cost additionally includes query upload,
    result download and host pre/post-processing (steps 1 and 4 of the
    Lauer et al. pipeline).  Table 3's system-level rates imply that
    overhead dominates small queries; its value is reverse-engineered in
    EXPERIMENTS.md and injected through this wrapper so the base model
    stays exactly the paper's.
    """

    base: GPUTimingModel
    overhead: float

    def __post_init__(self) -> None:
        if self.overhead < 0:
            raise DeviceError("overhead must be >= 0")

    def query_time(self, column_fraction: float, n_sm: int) -> float:
        return self.base.query_time(column_fraction, n_sm) + self.overhead

    def query_time_many(
        self, column_fractions: Sequence[float] | np.ndarray, n_sm: int
    ) -> np.ndarray:
        return self.base.query_time_many(column_fractions, n_sm) + self.overhead
