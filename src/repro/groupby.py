"""Grouped (multi-cell) query execution — the OLAP group-by extension.

The paper's evaluation queries return a single aggregate; production
OLAP queries overwhelmingly group ("revenue BY month BY region").  All
the substrate pieces already exist — cubes *are* materialised group-bys
and the build algorithms compute full lattices — so this module adds
grouped execution over every answer path:

- :func:`groupby_from_table` — the reference path: vectorised
  filter + ``bincount`` over the group columns;
- :func:`groupby_with_cube` — the CPU path: slice the sub-cube, then
  reduce every non-grouped axis and coarsen grouped axes to the
  requested resolution (pure reshape/``bincount`` arithmetic);
- :func:`run_groupby_kernel` — the GPU path: per-SM shards produce
  dense partial group arrays, merged on the host (the Lauer et al.
  reduction generalised from scalars to group vectors).

All three produce identical cells — asserted by the integration tests.
The GPU cost model needs no extension: group columns already count into
:math:`C_{Q_D}` (see ``QueryDecomposition.columns_accessed``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.errors import CubeError, QueryError, TranslationError
from repro.gpu.kernels import _shard_bounds
from repro.olap.cube import OLAPCube
from repro.olap.subcube import spec_for_query
from repro.query.model import Query, QueryDecomposition, decompose
from repro.relational.table import FactTable

__all__ = [
    "GroupedResult",
    "groupby_from_table",
    "groupby_with_cube",
    "run_groupby_kernel",
]

#: Guard against group spaces too large to materialise densely.
MAX_GROUP_CELLS = 1 << 22


@dataclass(frozen=True)
class GroupedResult:
    """Cells of a grouped aggregation.

    ``cells`` maps a coordinate tuple (one coordinate per ``group_by``
    entry, in query order) to the aggregated value.  Only populated
    groups appear.
    """

    group_by: tuple[tuple[str, int], ...]
    cells: Mapping[tuple[int, ...], float]
    rows_matched: int

    def value_at(self, *coords: int) -> float:
        try:
            return self.cells[tuple(coords)]
        except KeyError:
            raise QueryError(f"no populated group at {coords}") from None

    @property
    def num_groups(self) -> int:
        return len(self.cells)

    def top(self, n: int = 10) -> list[tuple[tuple[int, ...], float]]:
        """Groups sorted by value, largest first."""
        return sorted(self.cells.items(), key=lambda kv: -kv[1])[:n]

    def total(self) -> float:
        """Sum of all cells (equals the ungrouped sum for sum/count)."""
        return float(sum(self.cells.values()))


def _group_setup(query: Query, hierarchies) -> tuple[list[int], int]:
    """Cardinalities of the group axes and the dense group-space size."""
    if not query.group_by:
        raise QueryError("query has no group_by; use the scalar paths")
    cards = []
    for dim, res in query.group_by:
        hierarchy = hierarchies[dim]
        cards.append(hierarchy.cardinality(res))
    size = 1
    for c in cards:
        size *= c
    if size > MAX_GROUP_CELLS:
        raise CubeError(
            f"group space of {size} cells exceeds the dense budget "
            f"({MAX_GROUP_CELLS}); group at a coarser resolution"
        )
    return cards, size


def _cells_from_dense(
    query: Query,
    cards: Sequence[int],
    sums: np.ndarray,
    counts: np.ndarray,
    mins: np.ndarray | None,
    maxs: np.ndarray | None,
) -> dict[tuple[int, ...], float]:
    populated = np.flatnonzero(counts > 0)
    cells: dict[tuple[int, ...], float] = {}
    for flat in populated:
        coords = tuple(int(c) for c in np.unravel_index(int(flat), cards))
        if query.agg == "sum":
            cells[coords] = float(sums[flat])
        elif query.agg == "count":
            cells[coords] = float(counts[flat])
        elif query.agg == "avg":
            cells[coords] = float(sums[flat] / counts[flat])
        elif query.agg == "min":
            assert mins is not None
            cells[coords] = float(mins[flat])
        else:
            assert maxs is not None
            cells[coords] = float(maxs[flat])
    return cells


# -- reference path: the fact table ----------------------------------------


def groupby_from_table(table: FactTable, query: Query) -> GroupedResult:
    """Grouped aggregation by direct table scan (the reference answer)."""
    hierarchies = table.schema.hierarchies
    decomposition = decompose(query, hierarchies)
    if decomposition.needs_translation:
        raise TranslationError("translate text conditions before grouped execution")
    cards, size = _group_setup(query, hierarchies)

    mask = table.filter_mask(decomposition)
    rows = int(np.count_nonzero(mask))
    group_coords = [
        np.asarray(table.column(col), dtype=np.intp)[mask]
        for col in decomposition.group_columns
    ]
    labels = (
        np.ravel_multi_index(group_coords, cards)
        if rows
        else np.empty(0, dtype=np.intp)
    )

    if query.agg == "count":
        values = np.ones(rows)
    else:
        values = np.asarray(table.column(query.measures[0]), dtype=np.float64)[mask]
    sums = np.bincount(labels, weights=values, minlength=size)
    counts = np.bincount(labels, minlength=size).astype(np.float64)
    mins = maxs = None
    if query.agg in ("min", "max"):
        mins = np.full(size, np.inf)
        maxs = np.full(size, -np.inf)
        np.minimum.at(mins, labels, values)
        np.maximum.at(maxs, labels, values)
    return GroupedResult(
        group_by=query.group_by,
        cells=_cells_from_dense(query, cards, sums, counts, mins, maxs),
        rows_matched=rows,
    )


# -- CPU path: the cube ------------------------------------------------------


def groupby_with_cube(cube: OLAPCube, query: Query) -> GroupedResult:
    """Grouped aggregation from a materialised cube.

    The sub-cube is selected per the query's conditions; every cell is
    then assigned a group label (its coordinate coarsened to the
    group's resolution on grouped axes) and reduced with ``bincount``.
    ``min``/``max`` need the cube's min/max components.
    """
    if query.agg != "count" and query.measures and cube.measure not in query.measures:
        raise QueryError(
            f"cube aggregates {cube.measure!r} but query asks for "
            f"{list(query.measures)}"
        )
    hierarchies = {d.name: d for d in cube.dimensions}
    cards, size = _group_setup(query, hierarchies)
    for dim, res in query.group_by:
        if dim not in hierarchies:
            raise QueryError(f"cube has no dimension {dim!r}")
        if res > cube.resolution_of(dim):
            raise QueryError(
                f"group-by needs {dim!r} at resolution {res} but the cube is "
                f"materialised at {cube.resolution_of(dim)}"
            )

    spec = spec_for_query(cube, query)

    # per-axis selected original coordinates
    axis_coords: list[np.ndarray] = []
    for extent, sel in zip(cube.shape, spec.selectors):
        if isinstance(sel, slice):
            start, stop, _ = sel.indices(extent)
            axis_coords.append(np.arange(start, stop, dtype=np.intp))
        else:
            axis_coords.append(np.asarray(sel, dtype=np.intp))

    # per-axis group labels (0 for non-grouped axes), broadcast to the
    # sub-cube shape and combined into flat group labels
    sub_shape = tuple(len(a) for a in axis_coords)
    labels = np.zeros(sub_shape, dtype=np.intp)
    stride = size
    for dim, res in query.group_by:
        axis = cube.axis_of(dim)
        card = hierarchies[dim].cardinality(res)
        stride //= card
        factor = cube.shape[axis] // hierarchies[dim].cardinality(res)
        axis_labels = axis_coords[axis] // factor
        shape = [1] * len(sub_shape)
        shape[axis] = sub_shape[axis]
        labels += axis_labels.reshape(shape) * stride

    def _select(name: str) -> np.ndarray:
        return cube._slice_component(name, spec.selectors)

    flat_labels = labels.ravel()
    sub_counts = _select("count").ravel()
    sums = np.bincount(flat_labels, weights=_select("sum").ravel(), minlength=size)
    counts = np.bincount(flat_labels, weights=sub_counts, minlength=size)
    mins = maxs = None
    if query.agg in ("min", "max"):
        occupied = sub_counts > 0
        mins = np.full(size, np.inf)
        maxs = np.full(size, -np.inf)
        np.minimum.at(mins, flat_labels[occupied], _select("min").ravel()[occupied])
        np.maximum.at(maxs, flat_labels[occupied], _select("max").ravel()[occupied])
    return GroupedResult(
        group_by=query.group_by,
        cells=_cells_from_dense(query, cards, sums, counts, mins, maxs),
        rows_matched=int(sub_counts.sum()),
    )


# -- GPU path: sharded kernel -----------------------------------------------


def run_groupby_kernel(
    table: FactTable, decomposition: QueryDecomposition, n_sm: int
) -> GroupedResult:
    """Grouped aggregation across ``n_sm`` simulated SM shards.

    Each shard produces dense partial (sum, count[, min, max]) group
    arrays; the host reduction adds/extremises them — identical
    structure to the scalar kernels, with vectors instead of scalars.
    """
    query = decomposition.query
    if decomposition.needs_translation:
        raise TranslationError("translate text conditions before grouped execution")
    hierarchies = table.schema.hierarchies
    cards, size = _group_setup(query, hierarchies)

    sums = np.zeros(size)
    counts = np.zeros(size)
    mins = np.full(size, np.inf)
    maxs = np.full(size, -np.inf)
    rows_matched = 0
    for lo, hi in _shard_bounds(table.num_rows, n_sm):
        mask = np.ones(hi - lo, dtype=bool)
        for pred in decomposition.predicates:
            cond = pred.condition
            col = table.column(pred.column)[lo:hi]
            if cond.is_range:
                mask &= (col >= cond.lo) & (col < cond.hi)
            else:
                mask &= np.isin(col, np.asarray(cond.codes, dtype=col.dtype))
        matched = int(np.count_nonzero(mask))
        rows_matched += matched
        if not matched:
            continue
        group_coords = [
            np.asarray(table.column(col), dtype=np.intp)[lo:hi][mask]
            for col in decomposition.group_columns
        ]
        labels = np.ravel_multi_index(group_coords, cards)
        if query.agg == "count":
            values = np.ones(matched)
        else:
            values = np.asarray(
                table.column(query.measures[0]), dtype=np.float64
            )[lo:hi][mask]
        sums += np.bincount(labels, weights=values, minlength=size)
        counts += np.bincount(labels, minlength=size)
        if query.agg in ("min", "max"):
            np.minimum.at(mins, labels, values)
            np.maximum.at(maxs, labels, values)
    return GroupedResult(
        group_by=query.group_by,
        cells=_cells_from_dense(query, cards, sums, counts, mins, maxs),
        rows_matched=rows_matched,
    )
