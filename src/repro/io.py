"""Persistence: save/load fact tables, cubes, pyramids and dictionaries.

A hybrid OLAP deployment pre-calculates its cube pyramid and builds its
dictionaries *once*, at database-build time (Section III-F), then
serves queries against them.  This module provides that durable layer
using NumPy's ``.npz`` container plus a JSON metadata header, so a
database directory is portable and human-inspectable:

    db/
      schema.json          dimension hierarchies, text levels, measures
      table.npz            fact-table columns
      vocabularies.json    raw strings per text column
      pyramid_<measure>.npz  cube components per pyramid level

Round-trips are exact (same dtypes, same values) — property-tested in
``tests/test_io.py``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Mapping

import numpy as np

from repro.errors import SchemaError
from repro.olap.cube import OLAPCube
from repro.olap.hierarchy import DimensionHierarchy, Level
from repro.olap.pyramid import CubePyramid, PyramidLevel
from repro.relational.generator import SyntheticDataset
from repro.relational.schema import TableSchema
from repro.relational.table import FactTable

__all__ = [
    "schema_to_dict",
    "schema_from_dict",
    "save_table",
    "load_table",
    "save_dataset",
    "load_dataset",
    "save_pyramid",
    "load_pyramid",
]


# -- schema ------------------------------------------------------------


def schema_to_dict(schema: TableSchema) -> dict:
    """JSON-serialisable description of a schema."""
    return {
        "dimensions": [
            {
                "name": d.name,
                "levels": [
                    {"name": l.name, "cardinality": l.cardinality} for l in d.levels
                ],
            }
            for d in schema.dimensions
        ],
        "measures": list(schema.measures),
        "text_levels": sorted(list(t) for t in schema.text_levels),
        "dim_dtype": np.dtype(schema.dimension_columns[0].dtype).str,
    }


def schema_from_dict(data: Mapping) -> TableSchema:
    """Inverse of :func:`schema_to_dict`."""
    try:
        dimensions = [
            DimensionHierarchy(
                d["name"],
                [Level(l["name"], int(l["cardinality"])) for l in d["levels"]],
            )
            for d in data["dimensions"]
        ]
        return TableSchema(
            dimensions=dimensions,
            measures=tuple(data["measures"]),
            text_levels=[tuple(t) for t in data["text_levels"]],
            dim_dtype=np.dtype(data["dim_dtype"]),
        )
    except (KeyError, TypeError) as exc:
        raise SchemaError(f"malformed schema document: {exc}") from exc


# -- fact tables -----------------------------------------------------------


def save_table(table: FactTable, directory: str | Path) -> Path:
    """Persist a fact table (schema.json + table.npz); returns the dir."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    (directory / "schema.json").write_text(
        json.dumps(schema_to_dict(table.schema), indent=2)
    )
    np.savez_compressed(
        directory / "table.npz",
        **{spec.name: table.column(spec.name) for spec in table.schema.columns},
    )
    return directory


def load_table(directory: str | Path) -> FactTable:
    directory = Path(directory)
    schema = schema_from_dict(json.loads((directory / "schema.json").read_text()))
    with np.load(directory / "table.npz") as data:
        columns = {name: data[name] for name in data.files}
    return FactTable(schema, columns)


# -- datasets (table + vocabularies) ----------------------------------------


def save_dataset(dataset: SyntheticDataset, directory: str | Path) -> Path:
    directory = save_table(dataset.table, directory)
    (directory / "vocabularies.json").write_text(
        json.dumps({k: list(v) for k, v in dataset.vocabularies.items()})
    )
    return directory


def load_dataset(directory: str | Path) -> SyntheticDataset:
    directory = Path(directory)
    table = load_table(directory)
    vocab_path = directory / "vocabularies.json"
    vocabularies = json.loads(vocab_path.read_text()) if vocab_path.exists() else {}
    return SyntheticDataset(table=table, vocabularies=vocabularies)


# -- pyramids ------------------------------------------------------------


def save_pyramid(pyramid: CubePyramid, directory: str | Path) -> Path:
    """Persist a materialised pyramid (one npz holding every level).

    Analytic levels cannot be saved — there is nothing durable about a
    shape; persist the configuration that generated them instead.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    arrays: dict[str, np.ndarray] = {}
    meta = {
        "measure": pyramid.measure,
        "dimensions": schema_to_dict(
            # reuse the schema serialiser for the hierarchy list
            TableSchema(pyramid.dimensions, measures=("_",))
        )["dimensions"],
        "levels": [],
    }
    for i, level in enumerate(pyramid.levels):
        if level.cube is None:
            raise SchemaError(
                f"level {level.resolutions} is analytic and cannot be persisted"
            )
        meta["levels"].append(
            {
                "resolutions": list(level.resolutions),
                "cell_nbytes": level.cell_nbytes,
                "components": list(level.cube.components),
            }
        )
        for comp in level.cube.components:
            arrays[f"level{i}__{comp}"] = level.cube.component(comp)
    path = directory / f"pyramid_{pyramid.measure}.npz"
    np.savez_compressed(path, **arrays)
    (directory / f"pyramid_{pyramid.measure}.json").write_text(json.dumps(meta, indent=2))
    return directory


def load_pyramid(directory: str | Path, measure: str) -> CubePyramid:
    directory = Path(directory)
    meta = json.loads((directory / f"pyramid_{measure}.json").read_text())
    dimensions = [
        DimensionHierarchy(
            d["name"],
            [Level(l["name"], int(l["cardinality"])) for l in d["levels"]],
        )
        for d in meta["dimensions"]
    ]
    levels = []
    with np.load(directory / f"pyramid_{measure}.npz") as data:
        for i, level_meta in enumerate(meta["levels"]):
            components = {
                comp: data[f"level{i}__{comp}"] for comp in level_meta["components"]
            }
            cube = OLAPCube(
                dimensions,
                level_meta["resolutions"],
                components,
                measure=meta["measure"],
            )
            levels.append(
                PyramidLevel(
                    resolutions=tuple(level_meta["resolutions"]),
                    cell_nbytes=int(level_meta["cell_nbytes"]),
                    cube=cube,
                )
            )
    return CubePyramid(dimensions, levels, measure=meta["measure"])
