"""Live metrics plane: registry, histograms, exposition, SLO monitoring.

Where :mod:`repro.sim.obs` answers "what happened" after a run (the
trace plane), this package answers "what is happening" while one is in
flight (the metrics plane): thread-safe counters/gauges/histograms in a
:class:`MetricsRegistry`, Prometheus text exposition over HTTP, clock-
driven JSONL snapshots, and windowed deadline-SLO burn monitoring.  See
:mod:`repro.metrics.instrument` for the family reference and
``repro.sim.validate.validate_metrics`` for the invariant family that
reconciles snapshots against the run's :class:`~repro.sim.metrics.
SystemReport` books.
"""

from repro.metrics.exporter import CONTENT_TYPE, MetricsExporter, render_prometheus
from repro.metrics.histogram import (
    CORRECTION_BUCKETS,
    DEFAULT_LATENCY_BUCKETS,
    HistogramSnapshot,
    LatencyHistogram,
    log_buckets,
)
from repro.metrics.instrument import (
    ObsMetrics,
    PoolInstruments,
    PoolMetrics,
    RollupMetrics,
    RuntimeMetrics,
    TranslatorMetrics,
)
from repro.metrics.registry import (
    Counter,
    FamilySnapshot,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
    merge_snapshots,
)
from repro.metrics.slo import SloEvent, SloMonitor
from repro.metrics.snapshots import SnapshotWriter

__all__ = [
    "CONTENT_TYPE",
    "CORRECTION_BUCKETS",
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "FamilySnapshot",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "LatencyHistogram",
    "MetricsExporter",
    "MetricsRegistry",
    "MetricsSnapshot",
    "ObsMetrics",
    "PoolInstruments",
    "PoolMetrics",
    "RollupMetrics",
    "RuntimeMetrics",
    "SloEvent",
    "SloMonitor",
    "SnapshotWriter",
    "TranslatorMetrics",
    "log_buckets",
    "merge_snapshots",
    "render_prometheus",
]
