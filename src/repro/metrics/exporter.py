"""Prometheus text exposition and the background scrape endpoint.

:func:`render_prometheus` turns a :class:`MetricsSnapshot` into the
text exposition format 0.0.4 (``# HELP`` / ``# TYPE`` headers,
cumulative ``_bucket{le=...}`` lines plus ``_sum`` / ``_count`` for
histograms).  :class:`MetricsExporter` serves it from a daemon
``ThreadingHTTPServer`` thread at ``GET /metrics``.

The handler only ever calls ``registry.collect()``, which takes the
registry lock — never the serving engine's lock — so a slow or stuck
scraper cannot stall query admission, and a scrape mid-run sees one
consistent cut of every counter.
"""

from __future__ import annotations

import math
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable

from repro.errors import MetricsError
from repro.metrics.histogram import HistogramSnapshot
from repro.metrics.registry import MetricsRegistry, MetricsSnapshot

__all__ = ["render_prometheus", "MetricsExporter", "CONTENT_TYPE"]

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _fmt_value(value: float) -> str:
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _label_str(
    names: tuple[str, ...], values: tuple[str, ...], extra: tuple[tuple[str, str], ...] = ()
) -> str:
    pairs = [f'{n}="{_escape_label(v)}"' for n, v in zip(names, values)]
    pairs += [f'{n}="{_escape_label(v)}"' for n, v in extra]
    return "{" + ",".join(pairs) + "}" if pairs else ""


def render_prometheus(snapshot: MetricsSnapshot) -> str:
    """Render a snapshot in Prometheus text exposition format 0.0.4."""
    lines: list[str] = []
    for fam in snapshot.families:
        if fam.help:
            lines.append(f"# HELP {fam.name} {_escape_help(fam.help)}")
        lines.append(f"# TYPE {fam.name} {fam.kind}")
        for key, sample in fam.items():
            if isinstance(sample, HistogramSnapshot):
                cumulative = sample.cumulative_counts()
                bucket_les = [_fmt_value(b) for b in sample.bounds] + ["+Inf"]
                for le, cum in zip(bucket_les, cumulative):
                    labels = _label_str(fam.label_names, key, extra=(("le", le),))
                    lines.append(f"{fam.name}_bucket{labels} {cum}")
                base = _label_str(fam.label_names, key)
                lines.append(f"{fam.name}_sum{base} {_fmt_value(sample.total)}")
                lines.append(f"{fam.name}_count{base} {sample.count}")
            else:
                labels = _label_str(fam.label_names, key)
                lines.append(f"{fam.name}{labels} {_fmt_value(sample)}")
    return "\n".join(lines) + "\n" if lines else ""


class _MetricsHandler(BaseHTTPRequestHandler):
    # bound via a type() subclass per exporter instance
    registry: MetricsRegistry
    now_fn: Callable[[], float]

    def do_GET(self):  # noqa: N802 - http.server API
        if self.path.split("?", 1)[0] not in ("/", "/metrics"):
            self.send_error(404, "only /metrics is served here")
            return
        body = render_prometheus(self.registry.collect(self.now_fn())).encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", CONTENT_TYPE)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format, *args):  # noqa: A002 - http.server API
        pass  # scrapes are routine; keep stderr quiet


class MetricsExporter:
    """Serve ``GET /metrics`` for one registry from a daemon thread.

    ``port=0`` asks the OS for a free port; read :attr:`port` (or
    :attr:`url`) after :meth:`start`.  The exporter is also a context
    manager: ``with MetricsExporter(reg) as exp: ...`` starts and stops
    the server around the block.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        port: int = 0,
        host: str = "127.0.0.1",
        now_fn: Callable[[], float] | None = None,
    ):
        self._registry = registry
        self._requested_port = port
        self.host = host
        self._now_fn = now_fn if now_fn is not None else (lambda: 0.0)
        self._server: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None
        self.port: int | None = None

    def start(self) -> "MetricsExporter":
        if self._server is not None:
            raise MetricsError("exporter already started")
        handler = type(
            "BoundMetricsHandler",
            (_MetricsHandler,),
            {"registry": self._registry, "now_fn": staticmethod(self._now_fn)},
        )
        self._server = ThreadingHTTPServer((self.host, self._requested_port), handler)
        self._server.daemon_threads = True
        self.port = self._server.server_address[1]
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name=f"metrics-exporter-:{self.port}",
            daemon=True,
        )
        self._thread.start()
        return self

    @property
    def url(self) -> str:
        if self.port is None:
            raise MetricsError("exporter not started")
        return f"http://{self.host}:{self.port}/metrics"

    def stop(self) -> None:
        if self._server is None:
            return
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._server = None
        self._thread = None

    def close(self) -> None:
        """Release the listening socket; safe to call repeatedly.

        The serve engine calls this from ``stop()``/``drain()`` when it
        owns the exporter, so the port is released the moment the engine
        goes down — a daemonised server thread otherwise keeps the
        socket bound for the life of the process and the next
        ``repro serve`` run in the same process fails to bind it.
        """
        self.stop()

    def __enter__(self) -> "MetricsExporter":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
