"""Fixed-bucket latency histograms with mergeable snapshots.

The serving layer needs percentiles that can be read while the run is
still in flight, merged across workers, and exposed in the Prometheus
text format.  All three needs point at the same classic design: a fixed
set of log-spaced upper bounds chosen up front, one integer counter per
bucket, and quantiles answered as *bucket bounds* rather than
interpolated values.  A ``quantile_bound(0.95)`` answer is therefore
exact in the only sense that matters operationally: the true p95 is
guaranteed to be ≤ the returned bound and > the previous bound.

Buckets use Prometheus ``le`` semantics: a bucket with upper bound ``b``
counts every observation ``x <= b`` that did not fit an earlier bucket,
and observations above the largest bound land in an implicit ``+Inf``
overflow bucket.

``LatencyHistogram`` itself is a plain mutable accumulator and is *not*
thread-safe; :class:`repro.metrics.registry.MetricsRegistry` serialises
access when histograms live inside a registry family.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from repro.errors import MetricsError

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "CORRECTION_BUCKETS",
    "log_buckets",
    "HistogramSnapshot",
    "LatencyHistogram",
]


def log_buckets(lo: float, hi: float, per_decade: int = 4) -> tuple[float, ...]:
    """Log-spaced bucket bounds from ``lo`` to ``hi`` inclusive.

    ``per_decade`` bounds per factor of ten; bounds are rounded to six
    significant digits so decade edges come out exact (``0.001`` rather
    than ``0.0010000000000000002``) and render cleanly in the exporter.
    """
    if lo <= 0 or hi <= lo:
        raise MetricsError(f"log_buckets needs 0 < lo < hi, got lo={lo} hi={hi}")
    if per_decade < 1:
        raise MetricsError(f"per_decade must be >= 1, got {per_decade}")
    steps = round(math.log10(hi / lo) * per_decade)
    if not math.isclose(lo * 10 ** (steps / per_decade), hi, rel_tol=1e-9):
        raise MetricsError(
            f"hi/lo ratio must be a whole number of steps at {per_decade}/decade"
        )
    return tuple(float(f"{lo * 10 ** (i / per_decade):.6g}") for i in range(steps + 1))


#: Default bounds for wall-clock latencies: 100 µs .. 10 s, 4 per decade.
DEFAULT_LATENCY_BUCKETS = log_buckets(1e-4, 10.0, per_decade=4)

#: Symmetric bounds for signed feedback corrections (seconds).  The
#: feedback loop shrinks as well as grows booked times, so the deltas it
#: applies straddle zero.
CORRECTION_BUCKETS = tuple(
    [-b for b in reversed(log_buckets(1e-4, 1.0, per_decade=1))]
    + [0.0]
    + list(log_buckets(1e-4, 1.0, per_decade=1))
)


@dataclass(frozen=True)
class HistogramSnapshot:
    """Immutable point-in-time copy of a histogram.

    ``counts`` has ``len(bounds) + 1`` entries; the final entry is the
    ``+Inf`` overflow bucket.  Snapshots with identical bounds form a
    commutative monoid under :meth:`merge` (and :meth:`minus` recovers
    the histogram of an interval from two cumulative snapshots, which is
    how the dashboard computes windowed p95 series).
    """

    bounds: tuple[float, ...]
    counts: tuple[int, ...]
    total: float
    count: int

    def __post_init__(self) -> None:
        # merge()/minus() zip bounds against counts; a malformed snapshot
        # (counts too short, unordered bounds — e.g. a corrupt JSONL line
        # fed through from_json) would silently truncate the zip and
        # produce garbage books.  Reject it at construction instead.
        if not self.bounds:
            raise MetricsError("histogram snapshot needs at least one bucket bound")
        if any(not math.isfinite(b) for b in self.bounds):
            raise MetricsError("bucket bounds must be finite (+Inf is implicit)")
        if any(a >= b for a, b in zip(self.bounds, self.bounds[1:])):
            raise MetricsError("bucket bounds must be strictly increasing")
        if len(self.counts) != len(self.bounds) + 1:
            raise MetricsError(
                f"histogram snapshot needs len(bounds) + 1 counts: "
                f"{len(self.bounds)} bounds but {len(self.counts)} counts"
            )
        if any(c < 0 for c in self.counts):
            raise MetricsError("bucket counts must be non-negative")
        if sum(self.counts) != self.count:
            raise MetricsError(
                f"bucket counts sum to {sum(self.counts)} but count says {self.count}"
            )

    def merge(self, other: "HistogramSnapshot") -> "HistogramSnapshot":
        if self.bounds != other.bounds:
            raise MetricsError("cannot merge histograms with different bucket bounds")
        return HistogramSnapshot(
            bounds=self.bounds,
            counts=tuple(a + b for a, b in zip(self.counts, other.counts)),
            total=self.total + other.total,
            count=self.count + other.count,
        )

    def minus(self, earlier: "HistogramSnapshot") -> "HistogramSnapshot":
        """The histogram of observations between ``earlier`` and ``self``."""
        if self.bounds != earlier.bounds:
            raise MetricsError("cannot subtract histograms with different bucket bounds")
        counts = tuple(a - b for a, b in zip(self.counts, earlier.counts))
        if any(c < 0 for c in counts) or self.count < earlier.count:
            raise MetricsError("subtrahend snapshot is not an earlier state of this one")
        return HistogramSnapshot(
            bounds=self.bounds,
            counts=counts,
            total=self.total - earlier.total,
            count=self.count - earlier.count,
        )

    def cumulative_counts(self) -> tuple[int, ...]:
        """Prometheus-style cumulative bucket counts (ending at +Inf)."""
        out, running = [], 0
        for c in self.counts:
            running += c
            out.append(running)
        return tuple(out)

    def quantile_bound(self, q: float) -> float:
        """Smallest bucket bound whose cumulative count covers quantile ``q``.

        Exact in the ``le`` sense: the true q-quantile is ≤ the returned
        bound.  Returns NaN for an empty histogram and ``inf`` when the
        quantile falls in the overflow bucket.
        """
        if not 0.0 <= q <= 1.0:
            raise MetricsError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return math.nan
        # The rank of the q-quantile is ceil(q * count), but the float
        # product can land a hair above the exact integer (0.07 * 100 ==
        # 7.000000000000001), which used to push the rank — and hence the
        # reported ``le`` bound — one bucket too high.  Snap to the
        # nearest integer first when the product is within float noise.
        product = q * self.count
        nearest = round(product)
        if nearest >= 1 and math.isclose(product, nearest, rel_tol=1e-12):
            rank = nearest
        else:
            rank = max(1, math.ceil(product))
        running = 0
        for bound, c in zip(self.bounds, self.counts):
            running += c
            if running >= rank:
                return bound
        return math.inf

    @property
    def p50(self) -> float:
        return self.quantile_bound(0.50)

    @property
    def p95(self) -> float:
        return self.quantile_bound(0.95)

    @property
    def p99(self) -> float:
        return self.quantile_bound(0.99)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else math.nan

    def to_json(self) -> dict[str, Any]:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "total": self.total,
            "count": self.count,
        }

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "HistogramSnapshot":
        return cls(
            bounds=tuple(float(b) for b in data["bounds"]),
            counts=tuple(int(c) for c in data["counts"]),
            total=float(data["total"]),
            count=int(data["count"]),
        )

    @classmethod
    def empty(cls, bounds: Sequence[float]) -> "HistogramSnapshot":
        return cls(tuple(bounds), (0,) * (len(bounds) + 1), 0.0, 0)


class LatencyHistogram:
    """Mutable fixed-bucket histogram accumulator.

    Not thread-safe on its own — callers either own the instance (one
    per worker, merged later) or go through a
    :class:`~repro.metrics.registry.MetricsRegistry` family, whose lock
    serialises :meth:`observe` and :meth:`snapshot`.
    """

    __slots__ = ("bounds", "_counts", "_total", "_count")

    def __init__(self, bounds: Iterable[float] = DEFAULT_LATENCY_BUCKETS):
        bounds = tuple(float(b) for b in bounds)
        if not bounds:
            raise MetricsError("histogram needs at least one bucket bound")
        if any(not math.isfinite(b) for b in bounds):
            raise MetricsError("bucket bounds must be finite (+Inf is implicit)")
        if any(a >= b for a, b in zip(bounds, bounds[1:])):
            raise MetricsError("bucket bounds must be strictly increasing")
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)
        self._total = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        # bisect_left finds the first bound >= value, i.e. ``le`` semantics;
        # values above the last bound land in the trailing overflow slot.
        self._counts[bisect_left(self.bounds, value)] += 1
        self._total += value
        self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def total(self) -> float:
        return self._total

    def snapshot(self) -> HistogramSnapshot:
        return HistogramSnapshot(
            bounds=self.bounds,
            counts=tuple(self._counts),
            total=self._total,
            count=self._count,
        )
