"""Bind the runtime's None-guarded hooks to a :class:`MetricsRegistry`.

The runtime (engine, pools, scheduler, feedback, translator) exposes
``None``-guarded observer slots in the style of :mod:`repro.sim.obs`:
with nothing attached every hook site is a single ``is not None`` check.
This module provides the objects that fill those slots, each a thin
adapter that looks up its instrument families once at construction and
then only does counter/gauge/histogram updates on the hot path.

:class:`RuntimeMetrics` owns the engine-level families and doubles as
the scheduler's ``metrics_observer`` (it speaks the same
``on_estimated`` / ``on_decision`` protocol as
:class:`~repro.sim.obs.TraceCollector`, so tracing and metering can be
attached simultaneously) and supplies ``on_feedback`` for the
:class:`~repro.core.feedback.FeedbackController`.  :class:`PoolMetrics`
fans one set of labelled families out to per-pool bound adapters, and
:class:`TranslatorMetrics` meters dictionary lookups.

Metric family reference (all prefixed ``repro_``):

====================================  =========  ==================  =============================
family                                kind       labels              meaning
====================================  =========  ==================  =============================
queries_submitted_total               counter    —                   offered to the scheduler
queries_admitted_total                counter    —                   accepted (got a ticket)
queries_rejected_total                counter    —                   shed by admission control
queries_completed_total               counter    target              finished with a record
queries_failed_total                  counter    stage               errored in translation/service
in_flight_queries                     gauge      —                   admitted minus finished
query_latency_seconds                 histogram  target              end-to-end (submit→finish)
stage_latency_seconds                 histogram  stage               per-stage service time
scheduler_estimates_total             counter    —                   Figure-10 step-2 estimates
scheduler_decisions_total             counter    branch              Figure-10 branch taken
scheduler_batch_size                  histogram  —                   queries per schedule_batch call
feedback_bias_ratio                   gauge      queue               measured/estimated ratio
feedback_correction_seconds           histogram  queue               signed applied deltas
pool_queue_depth                      gauge      pool                tasks waiting
pool_busy_workers                     gauge      pool                tasks in service
pool_wait_seconds                     histogram  pool                queue wait per task
pool_service_seconds                  histogram  pool                service time per task
pool_tasks_total                      counter    pool, outcome       ok/failed completions
translation_lookups_total             counter    result              dictionary hits/misses
translation_seconds                   histogram  —                   wall time per translate()
rollup_hits_total                     counter    —                   answered from the rollup cache
rollup_misses_total                   counter    —                   fell through to the scheduler
rollup_materializations_total         counter    —                   cuboids installed in the catalog
rollup_hit_latency_seconds            histogram  —                   wall time to answer a cache hit
adapt_model_epoch                     gauge      —                   live estimator model version
adapt_refits_total                    counter    family, outcome     recalibration attempts by result
adapt_reconfigurations_total          counter    action              capacity controller actions
spans_recorded_total                  counter    —                   spans buffered by the tracer
spans_dropped_total                   counter    —                   spans lost to the buffer bound
span_traces_sampled_total             counter    outcome             head-sampling decisions by outcome
====================================  =========  ==================  =============================
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.metrics.histogram import CORRECTION_BUCKETS
from repro.metrics.registry import MetricsRegistry
from repro.sim.obs import classify_branch

if TYPE_CHECKING:
    from repro.core.feedback import FeedbackStats
    from repro.core.partitions import PartitionQueue
    from repro.core.scheduler import QueryEstimates, ScheduleDecision
    from repro.query.model import Query
    from repro.sim.metrics import QueryRecord

__all__ = [
    "RuntimeMetrics",
    "PoolMetrics",
    "PoolInstruments",
    "TranslatorMetrics",
    "RollupMetrics",
    "AdaptMetrics",
    "ObsMetrics",
]


class RuntimeMetrics:
    """Engine-level instruments plus the scheduler/feedback observer."""

    def __init__(self, registry: MetricsRegistry):
        self.registry = registry
        self.submitted = registry.counter(
            "repro_queries_submitted_total",
            "Queries offered to the scheduler (admitted or not).",
        )
        self.admitted = registry.counter(
            "repro_queries_admitted_total", "Queries accepted for execution."
        )
        self.rejected = registry.counter(
            "repro_queries_rejected_total", "Queries shed by admission control."
        )
        self.completed = registry.counter(
            "repro_queries_completed_total",
            "Queries that finished with a record, by placement target.",
            labels=("target",),
        )
        self.failed = registry.counter(
            "repro_queries_failed_total",
            "Queries whose execution raised, by failing stage.",
            labels=("stage",),
        )
        self.in_flight = registry.gauge(
            "repro_in_flight_queries", "Admitted queries not yet finished."
        )
        self.e2e_latency = registry.histogram(
            "repro_query_latency_seconds",
            "End-to-end latency (submit to finish), by placement target.",
            labels=("target",),
        )
        self.stage_latency = registry.histogram(
            "repro_stage_latency_seconds",
            "Realised service time per pipeline stage.",
            labels=("stage",),
        )
        self.estimates = registry.counter(
            "repro_scheduler_estimates_total",
            "Figure-10 step-2 estimate computations.",
        )
        self.decisions = registry.counter(
            "repro_scheduler_decisions_total",
            "Placement decisions by Figure-10 branch.",
            labels=("branch",),
        )
        self.batch_size = registry.histogram(
            "repro_scheduler_batch_size",
            "Queries handed to one schedule_batch admission pass.",
            buckets=(1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0),
        )
        self.bias_ratio = registry.gauge(
            "repro_feedback_bias_ratio",
            "Running measured/estimated ratio per partition queue "
            "(1.0 = estimates unbiased).",
            labels=("queue",),
        )
        self.correction = registry.histogram(
            "repro_feedback_correction_seconds",
            "Signed booked-time corrections applied by the feedback loop.",
            labels=("queue",),
            buckets=CORRECTION_BUCKETS,
        )

    # -- scheduler metrics_observer protocol (mirrors TraceCollector) ------

    def on_batch(self, n: int, now: float) -> None:
        self.batch_size.observe(float(n))

    def on_estimated(
        self, query: "Query", est: "QueryEstimates", deadline: float, now: float
    ) -> None:
        self.estimates.inc()

    def on_decision(
        self,
        decision: "ScheduleDecision",
        candidates: Sequence[tuple["PartitionQueue", float]],
        now: float,
    ) -> None:
        branch = classify_branch(candidates, decision.deadline, decision.target)
        self.decisions.inc(branch=branch)

    # -- feedback metrics_observer (plain callable) ------------------------

    def on_feedback(
        self,
        queue_name: str,
        query_id: int | None,
        measured: float,
        estimated: float,
        applied: float,
        stats: "FeedbackStats",
    ) -> None:
        self.bias_ratio.set(stats.bias_ratio, queue=queue_name)
        self.correction.observe(applied, queue=queue_name)

    # -- engine lifecycle helpers ------------------------------------------

    def on_submitted(self) -> None:
        self.submitted.inc()

    def on_rejected(self) -> None:
        self.rejected.inc()

    def on_admitted(self, in_flight: int) -> None:
        self.admitted.inc()
        self.in_flight.set(in_flight)

    def on_stage(self, stage: str, seconds: float) -> None:
        self.stage_latency.observe(seconds, stage=stage)

    def on_completed(self, record: "QueryRecord", in_flight: int) -> None:
        self.completed.inc(target=record.target)
        self.e2e_latency.observe(record.response_time, target=record.target)
        self.in_flight.set(in_flight)

    def on_failed(self, stage: str, in_flight: int) -> None:
        self.failed.inc(stage=stage)
        self.in_flight.set(in_flight)


class PoolInstruments:
    """One pool's view of the shared :class:`PoolMetrics` families.

    Fills the ``WorkerPool.metrics`` slot; every method is called with
    the engine lock held, so the depth/busy arguments are consistent.
    """

    __slots__ = ("_families", "_pool")

    def __init__(self, families: "PoolMetrics", pool: str):
        self._families = families
        self._pool = pool

    def on_submitted(self, queue_depth: int) -> None:
        self._families.queue_depth.set(queue_depth, pool=self._pool)

    def on_started(self, waited: float, queue_depth: int, busy: int) -> None:
        self._families.queue_depth.set(queue_depth, pool=self._pool)
        self._families.busy_workers.set(busy, pool=self._pool)
        self._families.wait.observe(waited, pool=self._pool)

    def on_finished(
        self, service_time: float, failed: bool, queue_depth: int, busy: int
    ) -> None:
        self._families.queue_depth.set(queue_depth, pool=self._pool)
        self._families.busy_workers.set(busy, pool=self._pool)
        self._families.service.observe(service_time, pool=self._pool)
        self._families.tasks.inc(pool=self._pool, outcome="failed" if failed else "ok")


class PoolMetrics:
    """Labelled worker-pool families, fanned out per pool via ``for_pool``."""

    def __init__(self, registry: MetricsRegistry):
        self.queue_depth = registry.gauge(
            "repro_pool_queue_depth", "Tasks waiting in the pool queue.", labels=("pool",)
        )
        self.busy_workers = registry.gauge(
            "repro_pool_busy_workers", "Tasks currently in service.", labels=("pool",)
        )
        self.wait = registry.histogram(
            "repro_pool_wait_seconds", "Queue wait per task.", labels=("pool",)
        )
        self.service = registry.histogram(
            "repro_pool_service_seconds", "Service time per task.", labels=("pool",)
        )
        self.tasks = registry.counter(
            "repro_pool_tasks_total",
            "Tasks completed by the pool, by outcome.",
            labels=("pool", "outcome"),
        )

    def for_pool(self, name: str) -> PoolInstruments:
        return PoolInstruments(self, name)


class RollupMetrics:
    """Rollup-cache tier counters and hit latency.

    Fills the ``RollupRouter.metrics`` slot (duck-typed there so
    :mod:`repro.olap.rollup` keeps no import on this package).  The hit
    latency is *real* wall time for the cuboid projection — it is
    independent of any injected engine clock, since the whole point of
    the tier is the physical microseconds a hit costs.
    """

    def __init__(self, registry: MetricsRegistry):
        self.hits = registry.counter(
            "repro_rollup_hits_total",
            "Queries answered from the materialized rollup cache.",
        )
        self.misses = registry.counter(
            "repro_rollup_misses_total",
            "Queries that missed the cache and went to the scheduler.",
        )
        self.materializations = registry.counter(
            "repro_rollup_materializations_total",
            "Cuboids materialized into the rollup catalog.",
        )
        self.hit_latency = registry.histogram(
            "repro_rollup_hit_latency_seconds",
            "Wall time to answer a query from a materialized cuboid.",
        )

    def on_hit(self, seconds: float) -> None:
        self.hits.inc()
        self.hit_latency.observe(seconds)

    def on_miss(self) -> None:
        self.misses.inc()

    def on_materialized(self) -> None:
        self.materializations.inc()


class AdaptMetrics:
    """Adapt-plane instruments: model epochs, refits, reconfigurations.

    Fills the :class:`~repro.adapt.plane.AdaptivePlane` metrics slot
    (duck-typed there so :mod:`repro.adapt` keeps no import on this
    package).  The epoch gauge is published at construction — scrapes
    of an adaptive run always carry ``repro_adapt_model_epoch``, even
    before the first refit.
    """

    def __init__(self, registry: MetricsRegistry):
        self.model_epoch = registry.gauge(
            "repro_adapt_model_epoch",
            "Version of the model bundle currently answering estimates.",
        )
        self.refits = registry.counter(
            "repro_adapt_refits_total",
            "Online recalibration attempts, by model family and outcome.",
            labels=("family", "outcome"),
        )
        self.reconfigurations = registry.counter(
            "repro_adapt_reconfigurations_total",
            "Capacity-controller reconfigurations, by action.",
            labels=("action",),
        )
        self.model_epoch.set(0)

    def on_epoch(self, version: int) -> None:
        self.model_epoch.set(version)

    def on_refit_outcome(self, family: str, outcome: str) -> None:
        self.refits.inc(family=family, outcome=outcome)

    def on_reconfig(self, action: str) -> None:
        self.reconfigurations.inc(action=action)


class TranslatorMetrics:
    """Dictionary lookup counters and translate-call latency.

    Fills the ``TranslationService.metrics`` slot (duck-typed there so
    the text layer keeps no import on this package).
    """

    def __init__(self, registry: MetricsRegistry):
        self.lookups = registry.counter(
            "repro_translation_lookups_total",
            "Dictionary literal lookups, by result.",
            labels=("result",),
        )
        self.latency = registry.histogram(
            "repro_translation_seconds", "Wall time per translate() call."
        )

    def on_translated(self, lookups: int, seconds: float) -> None:
        if lookups:
            self.lookups.inc(lookups, result="hit")
        self.latency.observe(seconds)

    def on_miss(self, seconds: float) -> None:
        self.lookups.inc(result="miss")
        self.latency.observe(seconds)


class ObsMetrics:
    """Span-plane health instruments.

    Fills the :class:`~repro.obs.span.SpanTracer` ``metrics`` slot
    (duck-typed there so :mod:`repro.obs` stays stdlib-pure).  The
    tracer always invokes these *outside* its buffer lock, keeping that
    lock strictly leaf-level.
    """

    def __init__(self, registry: MetricsRegistry):
        self.recorded = registry.counter(
            "repro_spans_recorded_total",
            "Spans appended to the tracer's bounded buffer.",
        )
        self.dropped = registry.counter(
            "repro_spans_dropped_total",
            "Spans discarded because the buffer bound was reached.",
        )
        self.sampled = registry.counter(
            "repro_span_traces_sampled_total",
            "Head-sampling decisions, by outcome.",
            labels=("outcome",),
        )

    def on_span(self) -> None:
        self.recorded.inc()

    def on_dropped(self) -> None:
        self.dropped.inc()

    def on_sampled(self, sampled: bool) -> None:
        self.sampled.inc(outcome="sampled" if sampled else "unsampled")
