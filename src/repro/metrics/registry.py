"""Thread-safe metrics registry: counters, gauges, labelled families.

One :class:`MetricsRegistry` holds every instrument for a run.  All
mutation and collection goes through a single registry :class:`RLock`,
so a scrape (``collect``) observes a consistent cut without ever taking
the serving engine's lock — the exporter thread and the worker threads
only ever contend on this one small lock, for the duration of a dict
update (the "scrape-safe under the engine lock discipline" requirement).

Families are identified by a Prometheus-compatible name and a fixed
tuple of label names; samples within a family are keyed by the tuple of
label *values*.  Registration is idempotent: asking for an existing name
with the same kind and labels returns the existing family, while a
conflicting re-registration raises :class:`~repro.errors.MetricsError`.
This lets independent subsystems (engine, pools, translator, SLO
monitor) wire themselves to one registry without coordination.
"""

from __future__ import annotations

import json
import re
import threading
from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Sequence

from repro.errors import MetricsError
from repro.metrics.histogram import (
    DEFAULT_LATENCY_BUCKETS,
    HistogramSnapshot,
    LatencyHistogram,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "FamilySnapshot",
    "MetricsSnapshot",
    "MetricsRegistry",
    "merge_snapshots",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


class _Instrument:
    """Shared plumbing for one labelled metric family."""

    kind = "untyped"

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        help: str,
        label_names: Sequence[str],
    ):
        self._registry = registry
        self.name = name
        self.help = help
        self.label_names = tuple(label_names)
        self._samples: dict[tuple[str, ...], Any] = {}

    def _key(self, labels: Mapping[str, Any]) -> tuple[str, ...]:
        if set(labels) != set(self.label_names):
            raise MetricsError(
                f"{self.name}: expected labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[n]) for n in self.label_names)

    def label_sets(self) -> tuple[tuple[str, ...], ...]:
        with self._registry._lock:
            return tuple(sorted(self._samples))

    def _signature(self) -> tuple:
        return (type(self), self.label_names)


class Counter(_Instrument):
    """Monotonically increasing count (events, queries, lookups)."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise MetricsError(f"{self.name}: counters cannot decrease ({amount})")
        key = self._key(labels)
        with self._registry._lock:
            self._samples[key] = self._samples.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        key = self._key(labels)
        with self._registry._lock:
            return self._samples.get(key, 0.0)


class Gauge(_Instrument):
    """Instantaneous value that can go both ways (depth, in-flight)."""

    kind = "gauge"

    def set(self, value: float, **labels: Any) -> None:
        key = self._key(labels)
        with self._registry._lock:
            self._samples[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        key = self._key(labels)
        with self._registry._lock:
            self._samples[key] = self._samples.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: Any) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: Any) -> float:
        key = self._key(labels)
        with self._registry._lock:
            return self._samples.get(key, 0.0)


class Histogram(_Instrument):
    """Family of fixed-bucket latency histograms, one per label set."""

    kind = "histogram"

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        help: str,
        label_names: Sequence[str],
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ):
        super().__init__(registry, name, help, label_names)
        self.buckets = tuple(float(b) for b in buckets)

    def observe(self, value: float, **labels: Any) -> None:
        key = self._key(labels)
        with self._registry._lock:
            hist = self._samples.get(key)
            if hist is None:
                hist = self._samples[key] = LatencyHistogram(self.buckets)
            hist.observe(value)

    def snapshot(self, **labels: Any) -> HistogramSnapshot:
        key = self._key(labels)
        with self._registry._lock:
            hist = self._samples.get(key)
            if hist is None:
                return HistogramSnapshot.empty(self.buckets)
            return hist.snapshot()

    def _signature(self) -> tuple:
        return (type(self), self.label_names, self.buckets)


@dataclass(frozen=True)
class FamilySnapshot:
    """Immutable copy of one family: name, kind, and all its samples."""

    name: str
    kind: str
    help: str
    label_names: tuple[str, ...]
    samples: Mapping[tuple[str, ...], float | HistogramSnapshot]

    def _key(self, labels: Mapping[str, Any]) -> tuple[str, ...]:
        if set(labels) != set(self.label_names):
            raise MetricsError(
                f"{self.name}: expected labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[n]) for n in self.label_names)

    def value(self, **labels: Any) -> float:
        sample = self.samples.get(self._key(labels))
        if sample is None:
            return 0.0
        if isinstance(sample, HistogramSnapshot):
            raise MetricsError(f"{self.name} is a histogram; use .histogram()")
        return sample

    def histogram(self, **labels: Any) -> HistogramSnapshot | None:
        sample = self.samples.get(self._key(labels))
        if sample is not None and not isinstance(sample, HistogramSnapshot):
            raise MetricsError(f"{self.name} is not a histogram family")
        return sample

    def total(self) -> float:
        """Sum of all scalar samples (counters/gauges) across label sets."""
        return sum(
            v for v in self.samples.values() if not isinstance(v, HistogramSnapshot)
        )

    def items(self) -> list[tuple[tuple[str, ...], float | HistogramSnapshot]]:
        return sorted(self.samples.items())

    def to_json(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "kind": self.kind,
            "help": self.help,
            "label_names": list(self.label_names),
            "samples": [
                {
                    "labels": dict(zip(self.label_names, key)),
                    "value": val.to_json() if isinstance(val, HistogramSnapshot) else val,
                }
                for key, val in self.items()
            ],
        }

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "FamilySnapshot":
        """Rebuild a family from :meth:`to_json` output (wire/JSONL form).

        Histogram samples are recognised structurally (a dict value) and
        revalidated by :class:`~repro.metrics.histogram.
        HistogramSnapshot`'s constructor, so a corrupt line raises
        :class:`~repro.errors.MetricsError` instead of deserialising into
        a snapshot that zips wrongly later.
        """
        label_names = tuple(str(n) for n in data["label_names"])
        kind = str(data["kind"])
        samples: dict[tuple[str, ...], float | HistogramSnapshot] = {}
        for entry in data["samples"]:
            labels = entry["labels"]
            if set(labels) != set(label_names):
                raise MetricsError(
                    f"{data['name']}: sample labels {tuple(sorted(labels))} "
                    f"do not match label names {label_names}"
                )
            key = tuple(str(labels[n]) for n in label_names)
            value = entry["value"]
            if isinstance(value, Mapping):
                if kind != "histogram":
                    raise MetricsError(
                        f"{data['name']}: histogram sample in a {kind} family"
                    )
                samples[key] = HistogramSnapshot.from_json(value)
            else:
                if kind == "histogram":
                    raise MetricsError(
                        f"{data['name']}: scalar sample in a histogram family"
                    )
                samples[key] = float(value)
        return cls(
            name=str(data["name"]),
            kind=kind,
            help=str(data.get("help", "")),
            label_names=label_names,
            samples=samples,
        )


@dataclass(frozen=True)
class MetricsSnapshot:
    """A consistent cut of every family in a registry at one instant."""

    time: float
    families: tuple[FamilySnapshot, ...]

    def family(self, name: str) -> FamilySnapshot | None:
        for fam in self.families:
            if fam.name == name:
                return fam
        return None

    def value(self, name: str, **labels: Any) -> float:
        fam = self.family(name)
        if fam is None:
            raise MetricsError(f"no metric family named {name!r} in snapshot")
        return fam.value(**labels)

    def histogram(self, name: str, **labels: Any) -> HistogramSnapshot | None:
        fam = self.family(name)
        if fam is None:
            raise MetricsError(f"no metric family named {name!r} in snapshot")
        return fam.histogram(**labels)

    def to_json(self) -> dict[str, Any]:
        return {
            "time": self.time,
            "families": [fam.to_json() for fam in self.families],
        }

    def to_json_line(self) -> str:
        return json.dumps(self.to_json(), sort_keys=True)

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "MetricsSnapshot":
        return cls(
            time=float(data["time"]),
            families=tuple(
                FamilySnapshot.from_json(fam) for fam in data["families"]
            ),
        )

    @classmethod
    def from_json_line(cls, line: str) -> "MetricsSnapshot":
        return cls.from_json(json.loads(line))


def merge_snapshots(snapshots: Sequence[MetricsSnapshot]) -> MetricsSnapshot:
    """Fold per-worker snapshots into one fleet-wide view, count-exactly.

    Families are matched by name across the inputs (a family missing
    from some snapshots contributes nothing for them — the identity of
    the fold).  Scalar samples add per label key: exact for counters,
    and the natural reading for the additive gauges the engines export
    (in-flight, queue depth); ratio-style gauges (hit rates, burn rates)
    remain per-shard concepts and should be recomputed from the merged
    counters rather than read off the merged snapshot.  Histograms merge
    bucket-by-bucket via :meth:`HistogramSnapshot.merge`, which raises
    :class:`~repro.errors.MetricsError` on mismatched bucket grids —
    misconfigured shards cannot silently blend.  The merged time is the
    newest input time.
    """
    if not snapshots:
        raise MetricsError("merge_snapshots needs at least one snapshot")
    by_name: dict[str, list[FamilySnapshot]] = {}
    for snap in snapshots:
        for fam in snap.families:
            by_name.setdefault(fam.name, []).append(fam)
    families: list[FamilySnapshot] = []
    for name in sorted(by_name):
        fams = by_name[name]
        first = fams[0]
        merged: dict[tuple[str, ...], float | HistogramSnapshot] = {}
        for fam in fams:
            if fam.kind != first.kind or fam.label_names != first.label_names:
                raise MetricsError(
                    f"cannot merge family {name!r}: "
                    f"{first.kind}{first.label_names} vs "
                    f"{fam.kind}{fam.label_names}"
                )
            for key, value in fam.samples.items():
                current = merged.get(key)
                if current is None:
                    merged[key] = value
                elif isinstance(current, HistogramSnapshot) != isinstance(
                    value, HistogramSnapshot
                ):
                    raise MetricsError(
                        f"cannot merge family {name!r}: sample {key} is a "
                        "histogram in one snapshot and a scalar in another"
                    )
                elif isinstance(current, HistogramSnapshot):
                    merged[key] = current.merge(value)
                else:
                    merged[key] = current + value
        families.append(
            FamilySnapshot(
                name=first.name,
                kind=first.kind,
                help=first.help,
                label_names=first.label_names,
                samples=merged,
            )
        )
    return MetricsSnapshot(
        time=max(s.time for s in snapshots), families=tuple(families)
    )


class MetricsRegistry:
    """Thread-safe home for every instrument of one run.

    The registry lock is deliberately the *only* lock in this module and
    is never held while calling out to user code, so instrumented hot
    paths pay one uncontended lock acquisition plus a dict update per
    event, and a concurrent scrape can never deadlock the engine.
    """

    def __init__(self):
        self._lock = threading.RLock()
        self._families: dict[str, _Instrument] = {}

    def counter(self, name: str, help: str = "", labels: Sequence[str] = ()) -> Counter:
        return self._register(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", labels: Sequence[str] = ()) -> Gauge:
        return self._register(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        return self._register(Histogram, name, help, labels, buckets=tuple(buckets))

    def _register(
        self,
        cls: type,
        name: str,
        help: str,
        labels: Sequence[str],
        **extra: Any,
    ) -> Any:
        if not _NAME_RE.match(name):
            raise MetricsError(f"invalid metric name {name!r}")
        labels = tuple(labels)
        for label in labels:
            if not _LABEL_RE.match(label) or label.startswith("__"):
                raise MetricsError(f"invalid label name {label!r} for {name}")
        candidate = cls(self, name, help, labels, **extra)
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                if existing._signature() != candidate._signature():
                    raise MetricsError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}{existing.label_names} and cannot be "
                        f"re-registered as {candidate.kind}{labels}"
                    )
                return existing
            self._families[name] = candidate
            return candidate

    def get(self, name: str) -> _Instrument | None:
        with self._lock:
            return self._families.get(name)

    def __contains__(self, name: str) -> bool:
        return self.get(name) is not None

    def collect(self, now: float = 0.0) -> MetricsSnapshot:
        """Snapshot every family under the registry lock (one consistent cut)."""
        with self._lock:
            families = []
            for name in sorted(self._families):
                fam = self._families[name]
                samples = {
                    key: (
                        val.snapshot() if isinstance(val, LatencyHistogram) else val
                    )
                    for key, val in fam._samples.items()
                }
                families.append(
                    FamilySnapshot(
                        name=fam.name,
                        kind=fam.kind,
                        help=fam.help,
                        label_names=fam.label_names,
                        samples=samples,
                    )
                )
        return MetricsSnapshot(time=now, families=tuple(families))
