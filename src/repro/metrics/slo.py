"""Windowed deadline-SLO monitoring with threshold-crossing events.

The paper's time constraint ``T_C`` (Section IV) is a *per-query*
deadline; an operator watching a live system cares about the *rate* at
which those deadlines are met over a recent window.  :class:`SloMonitor`
keeps a sliding window of (finish time, met?) observations, computes the
windowed hit rate and its **burn rate** — the fraction of the error
budget being consumed, ``(1 - hit_rate) / (1 - target)`` — and emits a
:class:`SloEvent` whenever the hit rate crosses the target in either
direction (``breach`` going under, ``recover`` coming back).

A burn rate of 1.0 means the service is exactly consuming its budget;
above 1.0 the SLO will be missed if the window is representative.  With
``target=1.0`` there is no error budget, so any miss burns infinitely.
"""

from __future__ import annotations

import math
import threading
from collections import deque
from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import MetricsError
from repro.metrics.registry import MetricsRegistry

__all__ = ["SloEvent", "SloMonitor"]


@dataclass(frozen=True)
class SloEvent:
    """One threshold crossing: the hit rate moved across the target."""

    kind: str  # "breach" | "recover"
    time: float
    hit_rate: float
    burn_rate: float
    window_count: int

    def to_json(self) -> dict:
        return {
            "kind": self.kind,
            "time": self.time,
            "hit_rate": self.hit_rate,
            "burn_rate": self.burn_rate,
            "window_count": self.window_count,
        }


class SloMonitor:
    """Track windowed deadline-hit-rate burn against a target.

    ``observe(met, now)`` is called once per completed query (the serve
    engine does this under its own lock; the monitor's internal lock
    makes standalone use safe too).  When a ``registry`` is given the
    monitor publishes ``repro_slo_target``, ``repro_slo_hit_rate`` and
    ``repro_slo_burn_rate`` gauges plus a ``repro_slo_events_total``
    counter labelled by crossing kind, so the scrape endpoint carries
    the SLO state alongside the raw latency histograms.
    """

    def __init__(
        self,
        target: float = 0.9,
        window: float = 60.0,
        registry: Optional[MetricsRegistry] = None,
        on_event: Optional[Callable[[SloEvent], None]] = None,
    ):
        if not 0.0 < target <= 1.0:
            raise MetricsError(f"SLO target must be in (0, 1], got {target}")
        if window <= 0:
            raise MetricsError(f"SLO window must be positive, got {window}")
        self.target = float(target)
        self.window = float(window)
        self.on_event = on_event
        self.events: list[SloEvent] = []
        self._lock = threading.Lock()
        self._observations: deque[tuple[float, bool]] = deque()
        self._hits = 0
        self._breached = False
        self._ever_observed = False
        self._hit_gauge = self._burn_gauge = self._event_counter = None
        if registry is not None:
            registry.gauge(
                "repro_slo_target", "Deadline hit-rate target for the SLO monitor."
            ).set(self.target)
            self._hit_gauge = registry.gauge(
                "repro_slo_hit_rate", "Windowed deadline hit rate."
            )
            self._burn_gauge = registry.gauge(
                "repro_slo_burn_rate",
                "Fraction of the SLO error budget being consumed "
                "((1 - hit_rate) / (1 - target)).",
            )
            self._event_counter = registry.counter(
                "repro_slo_events_total",
                "SLO threshold crossings observed.",
                labels=("kind",),
            )
            self._hit_gauge.set(1.0)
            self._burn_gauge.set(0.0)

    def observe(self, met: bool, now: float) -> Optional[SloEvent]:
        """Record one query outcome; return a crossing event if one fired."""
        with self._lock:
            self._observations.append((now, bool(met)))
            if met:
                self._hits += 1
            self._ever_observed = True
            hit_rate, burn, event = self._advance_locked(now)
        return self._publish(hit_rate, burn, event)

    def tick(self, now: float, in_flight: int = 0) -> Optional[SloEvent]:
        """Advance the window without an observation (a heartbeat).

        The window used to slide only on :meth:`observe`, so a wedged
        system — queries in flight but none completing — kept exporting
        its last healthy burn rate forever.  A periodic ``tick`` expires
        old observations and refreshes the gauges; when the window
        empties *while work is still in flight* the hit rate drops to
        0.0 (silence under load is the worst miss), which latches a
        breach.  An idle empty window stays healthy: before the first
        observation or with ``in_flight == 0`` there is nothing to miss.
        """
        with self._lock:
            self._prune(now)
            starved = not self._observations and self._ever_observed and in_flight > 0
            if starved:
                hit_rate = 0.0
                burn = self._burn_locked(hit_rate)
                event = None
                if not self._breached:
                    self._breached = True
                    event = SloEvent("breach", now, hit_rate, burn, 0)
                    self.events.append(event)
            else:
                hit_rate, burn, event = self._advance_locked(now)
        return self._publish(hit_rate, burn, event)

    def _advance_locked(self, now: float) -> tuple[float, float, Optional[SloEvent]]:
        self._prune(now)
        hit_rate = self._hit_rate_locked()
        burn = self._burn_locked(hit_rate)
        event = None
        if not self._breached and hit_rate < self.target:
            self._breached = True
            event = SloEvent("breach", now, hit_rate, burn, len(self._observations))
        elif self._breached and hit_rate >= self.target:
            self._breached = False
            event = SloEvent("recover", now, hit_rate, burn, len(self._observations))
        if event is not None:
            self.events.append(event)
        return hit_rate, burn, event

    def _publish(
        self, hit_rate: float, burn: float, event: Optional[SloEvent]
    ) -> Optional[SloEvent]:
        if self._hit_gauge is not None:
            self._hit_gauge.set(hit_rate)
            self._burn_gauge.set(burn)
        if event is not None:
            if self._event_counter is not None:
                self._event_counter.inc(kind=event.kind)
            if self.on_event is not None:
                self.on_event(event)
        return event

    def _prune(self, now: float) -> None:
        cutoff = now - self.window
        while self._observations and self._observations[0][0] < cutoff:
            _, was_met = self._observations.popleft()
            if was_met:
                self._hits -= 1

    def _hit_rate_locked(self) -> float:
        n = len(self._observations)
        return self._hits / n if n else 1.0

    def _burn_locked(self, hit_rate: float) -> float:
        budget = 1.0 - self.target
        missing = 1.0 - hit_rate
        if budget <= 0.0:
            return 0.0 if missing <= 0.0 else math.inf
        return missing / budget

    @property
    def hit_rate(self) -> float:
        with self._lock:
            return self._hit_rate_locked()

    @property
    def burn_rate(self) -> float:
        with self._lock:
            return self._burn_locked(self._hit_rate_locked())

    @property
    def breached(self) -> bool:
        with self._lock:
            return self._breached

    @property
    def window_count(self) -> int:
        with self._lock:
            return len(self._observations)
