"""Periodic JSONL metric snapshots driven by the run's own clock.

A wall-clock timer thread would be wrong here twice over: under
:class:`~repro.serve.clock.FakeClock` a sleeping thread *advances* the
clock (sleeps are how tests fast-forward time), and in simulated time
there is no wall clock at all.  So snapshots are **tick-driven**: the
engine calls :meth:`SnapshotWriter.tick` with the current clock reading
at every state transition it already observes (arrivals, completions,
samples), and the writer emits a snapshot whenever a full interval has
elapsed since the previous one.  Under ``FakeClock`` the cadence is a
pure function of the event times, which is what makes the snapshot
tests deterministic.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Union

from repro.errors import MetricsError
from repro.metrics.registry import MetricsRegistry, MetricsSnapshot

__all__ = ["SnapshotWriter"]


class SnapshotWriter:
    """Collect registry snapshots on an interval grid, optionally to JSONL.

    Snapshots land in the in-memory :attr:`snapshots` list (for the live
    dashboard and end-of-run validation) and, when ``path`` is given,
    are appended to a JSONL file one ``MetricsSnapshot.to_json()`` object
    per line.  The grid is anchored at the first tick: with
    ``interval=1.0`` and a first tick at ``t=0.2``, snapshots fall due at
    0.2, 1.2, 2.2, ...  A tick that jumps several intervals writes a
    single snapshot (the current state), not one per missed slot.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        path: Union[str, Path, None] = None,
        interval: float = 1.0,
    ):
        if interval <= 0:
            raise MetricsError(f"snapshot interval must be positive, got {interval}")
        self._registry = registry
        self.path = Path(path) if path is not None else None
        self.interval = float(interval)
        self.snapshots: list[MetricsSnapshot] = []
        self._lock = threading.Lock()
        self._next_due: float | None = None
        if self.path is not None:
            # truncate up front so a rerun does not append to stale data
            self.path.write_text("")

    def tick(self, now: float) -> MetricsSnapshot | None:
        """Record a snapshot if an interval has elapsed; else do nothing."""
        with self._lock:
            if self._next_due is None:
                self._next_due = now
            if now < self._next_due:
                return None
            while self._next_due <= now:
                self._next_due += self.interval
            return self._write_locked(now)

    def write(self, now: float) -> MetricsSnapshot:
        """Force a snapshot regardless of the grid (e.g. the final drain)."""
        with self._lock:
            if self._next_due is None or self._next_due <= now:
                self._next_due = now + self.interval
            return self._write_locked(now)

    def _write_locked(self, now: float) -> MetricsSnapshot:
        snapshot = self._registry.collect(now)
        self.snapshots.append(snapshot)
        if self.path is not None:
            with self.path.open("a", encoding="utf-8") as fh:
                fh.write(snapshot.to_json_line() + "\n")
        return snapshot
