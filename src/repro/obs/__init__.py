"""repro.obs — distributed span tracing across both planes and the fleet.

The third observability plane.  :mod:`repro.sim.obs` answers *what
happened* to a query (typed lifecycle events), :mod:`repro.metrics`
answers *how much* (counters/histograms); this package answers *where
the time went*, end to end, across process boundaries:

* :mod:`repro.obs.span` — :class:`Span`, :class:`SpanTracer`
  (deterministic seeded head-sampling, thread-safe bounded buffer,
  W3C-traceparent-style context propagation), :func:`stitch`.
* :mod:`repro.obs.hooks` — adapters plugging the tracer into the
  existing None-guarded observer slots (scheduler, pools, rollup,
  translator).
* :mod:`repro.obs.export` — Perfetto/Chrome trace-event JSON export
  (one track per partition/pool/shard) plus the CI schema check.
* :mod:`repro.obs.fileio` — crash-safe (tempfile + ``os.replace``)
  trace-artifact writes, shared with the lifecycle-trace plane.

Stdlib-only and dependency-free: the engines import this package,
never the reverse, and ``repro.sim.validate``'s ``spans`` family
re-derives the determinism contract independently rather than
importing it.
"""

from .export import (
    check_trace_document,
    check_trace_file,
    to_chrome_trace,
    write_trace,
)
from .fileio import atomic_write_lines, atomic_write_text
from .hooks import PoolSpans, RollupSpans, SchedulerSpans, TranslatorSpans
from .span import (
    Span,
    SpanTracer,
    format_traceparent,
    head_sampled,
    parse_traceparent,
    stitch,
    trace_id_for,
)

__all__ = [
    "PoolSpans",
    "RollupSpans",
    "SchedulerSpans",
    "Span",
    "SpanTracer",
    "TranslatorSpans",
    "atomic_write_lines",
    "atomic_write_text",
    "check_trace_document",
    "check_trace_file",
    "format_traceparent",
    "head_sampled",
    "parse_traceparent",
    "stitch",
    "to_chrome_trace",
    "trace_id_for",
    "write_trace",
]
