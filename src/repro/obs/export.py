"""Perfetto / Chrome trace-event export for span buffers.

Spans serialize to the Chrome trace-event JSON format (the
``{"traceEvents": [...]}`` envelope with complete ``"X"`` events),
which ``ui.perfetto.dev`` and ``chrome://tracing`` both open directly.
The mapping:

* **process** (clock domain: frontdoor, shard-0, ..., or ``main``) →
  trace-event ``pid``, named via an ``"M"`` ``process_name`` metadata
  event.  Cross-process clock bases need not be aligned: Perfetto
  renders each pid's events on its own timeline, and causality comes
  from the shared ``trace_id``/span ids in ``args``, not from
  timestamp comparison.
* **track** (partition pool, shard lane, scheduler, wire) →
  ``tid`` within the process, named via ``thread_name`` — one lane per
  partition/pool/shard exactly as the dashboards slice them.
* span ``start``/``duration`` (seconds) → ``ts``/``dur`` in
  microseconds, rebased so each process's earliest span sits at 0.

:func:`check_trace_file` is the schema gate CI runs against exported
files: envelope shape, required keys, types, and per-process metadata
coverage.
"""

from __future__ import annotations

import json
from typing import Any, Iterable, Mapping

from .fileio import atomic_write_text
from .span import Span

__all__ = [
    "check_trace_document",
    "check_trace_file",
    "to_chrome_trace",
    "write_trace",
]

_MICRO = 1_000_000.0


def _pid_tid_maps(
    spans: list[Span],
) -> tuple[dict[str, int], dict[tuple[str, str], int]]:
    pids: dict[str, int] = {}
    tids: dict[tuple[str, str], int] = {}
    for span in spans:
        if span.process not in pids:
            pids[span.process] = len(pids) + 1
        key = (span.process, span.track)
        if key not in tids:
            tids[key] = sum(1 for k in tids if k[0] == span.process) + 1
    return pids, tids


def to_chrome_trace(spans: Iterable[Span]) -> dict[str, Any]:
    """Render spans as a Chrome trace-event document (JSON-ready dict)."""
    ordered = sorted(spans, key=lambda s: (s.process, s.track, s.start, s.span_id))
    pids, tids = _pid_tid_maps(ordered)
    # rebase per process: monotonic bases differ across processes and
    # microsecond timestamps should start near zero for the viewer
    base = {
        process: min(s.start for s in ordered if s.process == process)
        for process in pids
    }
    events: list[dict[str, Any]] = []
    for process, pid in pids.items():
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": process},
            }
        )
    for (process, track), tid in tids.items():
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pids[process],
                "tid": tid,
                "args": {"name": track},
            }
        )
    for span in ordered:
        args: dict[str, Any] = {
            "trace_id": span.trace_id,
            "span_id": span.span_id,
            "status": span.status,
        }
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        if span.query_id is not None:
            args["query_id"] = span.query_id
        args.update(span.attributes)
        events.append(
            {
                "name": span.name,
                "cat": span.name.split(".", 1)[0],
                "ph": "X",
                "pid": pids[span.process],
                "tid": tids[(span.process, span.track)],
                "ts": (span.start - base[span.process]) * _MICRO,
                "dur": max(0.0, span.duration) * _MICRO,
                "args": args,
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_trace(path: str, spans: Iterable[Span]) -> int:
    """Export spans to ``path`` as Perfetto-openable JSON (atomic write).

    Returns the number of ``"X"`` span events written.
    """
    document = to_chrome_trace(spans)
    atomic_write_text(path, json.dumps(document, indent=1, sort_keys=True))
    return sum(1 for e in document["traceEvents"] if e["ph"] == "X")


def check_trace_document(document: Mapping[str, Any]) -> list[str]:
    """Validate a trace-event document; returns problems (empty = valid)."""
    problems: list[str] = []
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["top-level traceEvents missing or not a list"]
    named_pids: set[int] = set()
    for i, event in enumerate(events):
        if not isinstance(event, Mapping):
            problems.append(f"event[{i}] is not an object")
            continue
        ph = event.get("ph")
        if ph not in ("X", "M"):
            problems.append(f"event[{i}] has unsupported ph {ph!r}")
            continue
        for key in ("name", "pid", "tid"):
            if key not in event:
                problems.append(f"event[{i}] missing {key!r}")
        if ph == "M":
            if event.get("name") == "process_name":
                named_pids.add(event.get("pid"))
            continue
        for key in ("ts", "dur"):
            value = event.get(key)
            if not isinstance(value, (int, float)):
                problems.append(f"event[{i}] {key!r} is not numeric")
            elif value < 0:
                problems.append(f"event[{i}] {key!r} is negative")
        args = event.get("args")
        if not isinstance(args, Mapping) or "trace_id" not in args:
            problems.append(f"event[{i}] args missing trace_id")
    span_pids = {
        e.get("pid")
        for e in events
        if isinstance(e, Mapping) and e.get("ph") == "X"
    }
    for pid in sorted(span_pids - named_pids, key=str):
        problems.append(f"pid {pid} has spans but no process_name metadata")
    return problems


def check_trace_file(path: str) -> list[str]:
    """Schema-check an exported trace file (CI's Perfetto gate)."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, ValueError) as exc:
        return [f"unreadable trace file: {exc}"]
    if not isinstance(document, Mapping):
        return ["top-level document is not an object"]
    return check_trace_document(document)
