"""Crash-safe file output for trace artifacts.

Observability files are read by other tools (Perfetto, jq, the CI
greps); a run killed mid-write must never leave a torn half-file that
those readers then trust.  :func:`atomic_write_lines` gets the classic
guarantee from the POSIX toolbox: write everything to a temporary file
*in the target directory* (so the final rename is same-filesystem and
atomic), flush + fsync, then :func:`os.replace` into place.  Readers
observe either the complete previous file or the complete new one —
never a prefix.

Stdlib-only; both :mod:`repro.obs.export` and
``repro.sim.obs.TraceCollector.write_jsonl`` write through here.
"""

from __future__ import annotations

import os
import tempfile
from typing import Callable, Iterable, TextIO

__all__ = ["atomic_write_lines", "atomic_write_text"]


def atomic_write_lines(
    path: str | os.PathLike[str],
    lines: Iterable[str],
    *,
    writer: Callable[[TextIO, str], None] | None = None,
) -> int:
    """Write ``lines`` (newline appended to each) to ``path`` atomically.

    Returns the number of lines written.  ``writer`` exists for tests:
    it receives ``(handle, line)`` per line and may raise to simulate a
    crash mid-write — the guarantee under test is that ``path`` is then
    left untouched (and the temp file cleaned up).
    """
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    count = 0
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            for line in lines:
                if writer is not None:
                    writer(handle, line)
                else:
                    handle.write(line)
                    handle.write("\n")
                count += 1
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    return count


def atomic_write_text(path: str | os.PathLike[str], text: str) -> None:
    """Atomic whole-file variant (single pre-rendered payload)."""
    atomic_write_lines(path, [text.rstrip("\n")] if text else [])
