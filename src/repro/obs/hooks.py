"""Adapters between engine observability slots and a :class:`SpanTracer`.

Each class here speaks one of the existing None-guarded duck-typed
hook protocols (scheduler observer, pool instrument, rollup metrics,
translator metrics) and turns its callbacks into stage spans under the
query's open root.  They hold no state beyond the tracer reference, so
attaching them changes nothing about scheduling — the same discipline
as :mod:`repro.metrics.instrument`.

``repro.obs`` stays import-pure (stdlib only), so anything that needs
domain knowledge — the Figure-10 branch classifier lives in
:mod:`repro.sim.obs` — is *injected* by the engine that wires the
adapter, never imported from here.
"""

from __future__ import annotations

from typing import Any, Callable

from .span import SpanTracer

__all__ = ["PoolSpans", "RollupSpans", "SchedulerSpans", "TranslatorSpans"]


class SchedulerSpans:
    """``BaseScheduler.span_observer`` adapter.

    Records ``scheduler.estimate`` and ``scheduler.decision`` as point
    spans (zero duration at the scheduling instant — the scheduler's
    own compute time is part of the admission stage, not a queue) and
    annotates the root with the Figure-10 branch and the step-3
    candidate count.  ``classify`` is the injected branch classifier
    (``repro.sim.obs.classify_branch``); without it the branch
    attribute is simply omitted.
    """

    def __init__(
        self,
        tracer: SpanTracer,
        classify: Callable[..., str] | None = None,
    ):
        self.tracer = tracer
        self.classify = classify

    def on_estimated(self, query: Any, est: Any, deadline: float, now: float) -> None:
        attrs: dict[str, Any] = {
            "deadline": deadline,
            "gpu_classes": len(est.t_gpu),
            "needs_translation": bool(est.t_trans > 0.0),
        }
        if est.t_cpu is not None:
            attrs["t_cpu"] = est.t_cpu
        self.tracer.record(
            query.query_id,
            "scheduler.estimate",
            now,
            now,
            track="scheduler",
            **attrs,
        )

    def on_decision(self, decision: Any, response: Any, now: float) -> None:
        query_id = decision.query.query_id
        attrs: dict[str, Any] = {
            "target": decision.target.name,
            "candidates": len(response),
            "estimated_response": decision.estimated_response,
            "meets_deadline": decision.meets_deadline,
        }
        if self.classify is not None:
            attrs["branch"] = self.classify(
                response, decision.deadline, decision.target
            )
        self.tracer.record(
            query_id, "scheduler.decision", now, now, track="scheduler", **attrs
        )
        # the root carries the decision too, so a stitched fleet view
        # can attribute the trace without descending into point spans
        root_attrs = {"target": attrs["target"], "candidates": attrs["candidates"]}
        if "branch" in attrs:
            root_attrs["branch"] = attrs["branch"]
        self.tracer.annotate(query_id, **root_attrs)


class PoolSpans:
    """``WorkerPool.spans`` adapter: one ``on_task(task)`` per finished
    task, recorded from inside the pool's finish block (the only place
    ``arrived``/``started``/``finished`` are all stamped).

    Emits ``queue.wait`` ``[arrived, started]`` and ``pool.service``
    ``[started, finished]`` on the pool's own track.  Maintenance tasks
    (negative query ids — the rollup materialiser) have no root and
    no-op inside the tracer.
    """

    def __init__(self, tracer: SpanTracer, pool_name: str):
        self.tracer = tracer
        self.pool_name = str(pool_name)

    def on_task(self, task: Any) -> None:
        query_id = task.query_id
        if task.started is None or task.finished is None:
            return
        self.tracer.record(
            query_id,
            "queue.wait",
            task.arrived,
            task.started,
            track=self.pool_name,
        )
        self.tracer.record(
            query_id,
            "pool.service",
            task.started,
            task.finished,
            track=self.pool_name,
            status="error" if task.error is not None else "ok",
            pool=self.pool_name,
        )


class RollupSpans:
    """Rollup-tier adapter: a cache hit is a complete trace by itself.

    The engine calls :meth:`on_hit` *before* opening a scheduling root
    (hits never reach steps 1-6), so this adapter opens the root,
    records the ``rollup.hit`` lookup span, and closes the root — the
    whole single-span tree that a hit's timeline amounts to.
    """

    def __init__(self, tracer: SpanTracer, root_name: str = "serve.query"):
        self.tracer = tracer
        self.root_name = str(root_name)

    def on_hit(self, query_id: int, now: float, elapsed: float, source: str) -> None:
        if self.tracer.open(query_id, self.root_name, start=now) is None:
            return
        self.tracer.record(
            query_id,
            "rollup.hit",
            now,
            now + elapsed,
            track="rollup",
            source=source,
        )
        self.tracer.close(
            query_id, end=now + elapsed, status="ok", branch="cache-hit"
        )


class TranslatorSpans:
    """``TranslationService.spans`` adapter: annotates the root with the
    realised translation cost (the wait+service interval itself is the
    Q_TRANS pool's ``queue.wait``/``pool.service`` pair — the
    translator runs inside that pool in the serve plane)."""

    def __init__(self, tracer: SpanTracer):
        self.tracer = tracer

    def on_translated(self, query_id: int, lookups: int, seconds: float) -> None:
        self.tracer.annotate(
            query_id, translation_lookups=lookups, translation_seconds=seconds
        )
