"""Distributed span tracing: the causal timeline the trace plane lacks.

:mod:`repro.sim.obs` records *what happened* to a query (typed
lifecycle events); :mod:`repro.metrics` records *how much* (counters
and histograms).  Neither answers the fleet-scale question "where did
this one query's time go" once a submission crosses the process
boundary — front door to shard, shard to partition pool.  This module
adds that third plane:

* :class:`Span` — one named interval ``[start, end]`` on a trace,
  with a parent link, a process identity (clock domain), a track (the
  partition/pool lane it renders on), attributes, and a status.
* :class:`SpanTracer` — the per-process recorder: deterministic seeded
  head-sampling (:func:`head_sampled` — same seed, same rate, same
  ``query_id`` ⇒ same decision in *every* process, run after run), a
  thread-safe bounded buffer, and an active-context table keyed by
  ``query_id`` so instrumentation sites scattered across threads all
  parent under the query's root span without passing handles around.
* :func:`format_traceparent` / :func:`parse_traceparent` — a
  W3C-traceparent-style context field (``00-<trace>-<span>-01``)
  threaded through :mod:`repro.fleet.protocol` query frames, so a
  shard's spans parent correctly under the front door's root.
* :func:`stitch` — merge per-process buffers by ``trace_id`` and flag
  (never drop) trees left partial by a crashed shard.

Everything here is stdlib-only and imports nothing from the rest of
the package: the engines depend on the tracer, never the reverse.

Lock ordering: the tracer's buffer lock is **leaf-level**.  Tracer
methods are called with the engine lock held and never call out to
engine, pool, registry, or catalog code while holding the buffer lock
(the optional metrics hook fires after release), so no lock can ever
be acquired under it.

Determinism contract (relied on by ``repro.sim.validate``'s ``spans``
family, which re-derives it independently): ``trace_id`` is the first
16 hex digits of ``blake2b("{seed}:{query_id}")`` and the sampling
decision is ``blake2b("{seed}:span-sample:{query_id}")``'s leading
32 bits, scaled to [0, 1), compared against the rate.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from hashlib import blake2b
from typing import Any, Callable, Iterable, Mapping

__all__ = [
    "Span",
    "SpanTracer",
    "format_traceparent",
    "head_sampled",
    "parse_traceparent",
    "stitch",
    "trace_id_for",
]

#: salt that keeps the sampling hash independent of the trace-id hash —
#: otherwise low-rate sampling would bias which trace ids can appear
_SAMPLE_SALT = "span-sample"

#: spans a tracer buffers before counting drops (per process)
DEFAULT_MAX_SPANS = 65_536


def trace_id_for(seed: int, query_id: int) -> str:
    """Deterministic 64-bit trace id (16 hex chars) for one query."""
    return blake2b(f"{seed}:{query_id}".encode(), digest_size=8).hexdigest()


def head_sampled(seed: int, sample_rate: float, query_id: int) -> bool:
    """The head-sampling decision: pure function of (seed, rate, id).

    Every process of a fleet evaluates this identically, so the front
    door and its shards never disagree about which queries are traced,
    and two runs over the same workload sample byte-identical trace-id
    sets.
    """
    if sample_rate >= 1.0:
        return True
    if sample_rate <= 0.0:
        return False
    digest = blake2b(
        f"{seed}:{_SAMPLE_SALT}:{query_id}".encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest[:4], "big") / 2**32 < sample_rate


def format_traceparent(trace_id: str, span_id: str, sampled: bool = True) -> str:
    """W3C-style context field: ``00-<trace_id>-<span_id>-<flags>``."""
    return f"00-{trace_id}-{span_id}-{'01' if sampled else '00'}"


def parse_traceparent(value: str) -> tuple[str, str, bool]:
    """Inverse of :func:`format_traceparent`; raises ``ValueError``."""
    parts = str(value).split("-")
    if len(parts) != 4 or parts[0] != "00":
        raise ValueError(f"malformed traceparent {value!r}")
    version, trace_id, span_id, flags = parts
    if not trace_id or not span_id:
        raise ValueError(f"malformed traceparent {value!r}")
    return trace_id, span_id, flags == "01"


@dataclass
class Span:
    """One named interval on a trace.

    ``start``/``end`` are monotonic readings in the *recording
    process's* clock domain (``process`` names that domain — timestamps
    are only comparable between spans with equal ``process``).
    ``track`` is the display lane: one per partition/pool/shard, the
    unit the Perfetto export maps to a thread timeline.
    """

    trace_id: str
    span_id: str
    parent_id: str | None
    name: str
    start: float
    end: float
    process: str = "main"
    track: str = "main"
    status: str = "ok"
    query_id: int | None = None
    attributes: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_dict(self) -> dict[str, Any]:
        """Wire/JSON form (the ``spans`` protocol op ships these)."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "process": self.process,
            "track": self.track,
            "status": self.status,
            "query_id": self.query_id,
            "attributes": dict(self.attributes),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Span":
        return cls(
            trace_id=str(data["trace_id"]),
            span_id=str(data["span_id"]),
            parent_id=(
                None if data.get("parent_id") is None else str(data["parent_id"])
            ),
            name=str(data["name"]),
            start=float(data["start"]),
            end=float(data["end"]),
            process=str(data.get("process", "main")),
            track=str(data.get("track", "main")),
            status=str(data.get("status", "ok")),
            query_id=(
                None if data.get("query_id") is None else int(data["query_id"])
            ),
            attributes=dict(data.get("attributes", {})),
        )


@dataclass
class _Active:
    """Per-query open root: the parent every stage span attaches under."""

    trace_id: str
    span_id: str
    parent_id: str | None
    name: str
    start: float
    track: str
    attributes: dict[str, Any]


class SpanTracer:
    """Per-process span recorder with deterministic head-sampling.

    Parameters
    ----------
    sample_rate:
        Fraction of queries traced, decided per ``query_id`` by
        :func:`head_sampled` — deterministic, not random.
    seed:
        Sampling/trace-id seed.  A fleet must use one seed everywhere
        (the front door samples; shards adopt via traceparent).
    process:
        This tracer's clock-domain/process label (``"frontdoor"``,
        ``"shard-0"``, ...).
    clock:
        Monotonic time source.  Engines re-bind this to their injected
        clock via :meth:`bind_clock`, so serve-plane span timestamps
        share the report/trace timebase (and ``FakeClock`` runs are
        deterministic).  Defaults to :func:`time.monotonic`.
    max_spans:
        Buffer bound; spans past it are counted in :attr:`dropped`,
        never silently lost from the books.

    ``metrics`` is an optional duck-typed hook (see
    :class:`repro.metrics.instrument.ObsMetrics`) following the same
    ``None``-guarded discipline as every other observability slot; it
    is always invoked *outside* the buffer lock.
    """

    def __init__(
        self,
        sample_rate: float = 1.0,
        seed: int = 2012,
        *,
        process: str = "main",
        clock: Callable[[], float] | None = None,
        max_spans: int = DEFAULT_MAX_SPANS,
    ):
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(f"sample_rate must be in [0, 1], got {sample_rate}")
        if max_spans < 1:
            raise ValueError(f"max_spans must be >= 1, got {max_spans}")
        self.sample_rate = float(sample_rate)
        self.seed = int(seed)
        self.process = str(process)
        self.max_spans = int(max_spans)
        self.metrics = None
        self._clock: Callable[[], float] = (
            clock if clock is not None else time.monotonic
        )
        self._lock = threading.Lock()  # LEAF lock: never call out under it
        self._spans: list[Span] = []
        self._active: dict[int, _Active] = {}
        self._adopted: dict[int, tuple[str, str]] = {}
        self._seq: dict[tuple[str, str], int] = {}
        self.dropped = 0
        self.seen = 0
        self.sampled_count = 0

    # -- clock ---------------------------------------------------------------

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Adopt an engine's clock domain (injected ``Clock``-backed)."""
        self._clock = clock

    def now(self) -> float:
        return self._clock()

    # -- sampling ------------------------------------------------------------

    def sampled(self, query_id: int) -> bool:
        """This query's head-sampling decision (books one ``seen``)."""
        decision = head_sampled(self.seed, self.sample_rate, query_id)
        with self._lock:
            self.seen += 1
            if decision:
                self.sampled_count += 1
        metrics = self.metrics
        if metrics is not None:
            metrics.on_sampled(decision)
        return decision

    def trace_id_for(self, query_id: int) -> str:
        return trace_id_for(self.seed, query_id)

    # -- context -------------------------------------------------------------

    def adopt(self, query_id: int, traceparent: str) -> None:
        """Adopt an upstream context: the next :meth:`open` for this
        query joins the remote trace (and is force-sampled — the
        upstream head decision travels with the frame)."""
        trace_id, parent_id, sampled = parse_traceparent(traceparent)
        if not sampled:
            return
        with self._lock:
            self._adopted[query_id] = (trace_id, parent_id)

    def context(self, query_id: int) -> tuple[str, str] | None:
        """``(trace_id, root_span_id)`` of the query's open root, if any."""
        with self._lock:
            active = self._active.get(query_id)
            if active is None:
                return None
            return active.trace_id, active.span_id

    def traceparent(self, query_id: int) -> str | None:
        """The context field to thread through an outbound frame."""
        ctx = self.context(query_id)
        if ctx is None:
            return None
        return format_traceparent(ctx[0], ctx[1])

    # -- recording -----------------------------------------------------------

    def _next_span_id(self, trace_id: str, name: str) -> str:
        # deterministic per (trace, process, name): the n-th occurrence
        # always hashes to the same id, so identically-clocked runs
        # produce identical buffers regardless of thread interleaving
        key = (trace_id, name)
        n = self._seq.get(key, 0)
        self._seq[key] = n + 1
        return blake2b(
            f"{trace_id}:{self.process}:{name}:{n}".encode(), digest_size=8
        ).hexdigest()

    def open(
        self,
        query_id: int,
        name: str,
        *,
        start: float | None = None,
        track: str | None = None,
        **attributes: Any,
    ) -> str | None:
        """Open the query's root span; returns its id, or ``None`` when
        the query is not sampled (every later call for it no-ops).

        An adopted context (see :meth:`adopt`) overrides sampling and
        parents the root under the upstream span.
        """
        when = self.now() if start is None else start
        with self._lock:
            adopted = self._adopted.pop(query_id, None)
        if adopted is not None:
            trace_id, parent_id = adopted
        else:
            if not self.sampled(query_id):
                return None
            trace_id, parent_id = self.trace_id_for(query_id), None
        with self._lock:
            if query_id in self._active:  # resubmitted id: keep the first
                return self._active[query_id].span_id
            span_id = self._next_span_id(trace_id, name)
            self._active[query_id] = _Active(
                trace_id=trace_id,
                span_id=span_id,
                parent_id=parent_id,
                name=name,
                start=when,
                track=self.process if track is None else track,
                attributes=dict(attributes),
            )
        return span_id

    def record(
        self,
        query_id: int,
        name: str,
        start: float,
        end: float,
        *,
        track: str | None = None,
        status: str = "ok",
        **attributes: Any,
    ) -> str | None:
        """Record one finished stage span under the query's open root.

        No-ops (returns ``None``) when the query has no open root —
        that is the entire sampling fast path for unsampled traffic.
        """
        dropped = False
        with self._lock:
            active = self._active.get(query_id)
            if active is None:
                return None
            if len(self._spans) >= self.max_spans:
                self.dropped += 1
                dropped = True
                span_id = None
            else:
                span_id = self._next_span_id(active.trace_id, name)
                self._spans.append(
                    Span(
                        trace_id=active.trace_id,
                        span_id=span_id,
                        parent_id=active.span_id,
                        name=name,
                        start=start,
                        end=end,
                        process=self.process,
                        track=self.process if track is None else track,
                        status=status,
                        query_id=query_id,
                        attributes=dict(attributes),
                    )
                )
        metrics = self.metrics
        if metrics is not None:
            if dropped:
                metrics.on_dropped()
            else:
                metrics.on_span()
        return span_id

    def annotate(self, query_id: int, **attributes: Any) -> None:
        """Merge attributes into the query's root span (no-op unless open)."""
        with self._lock:
            active = self._active.get(query_id)
            if active is not None:
                active.attributes.update(attributes)

    def close(
        self,
        query_id: int,
        *,
        end: float | None = None,
        status: str = "ok",
        **attributes: Any,
    ) -> str | None:
        """Close the query's root span and append it to the buffer.

        Idempotent: a second close (or a close for an unsampled query)
        is a no-op, so error paths may close unconditionally.
        """
        when = self.now() if end is None else end
        dropped = False
        with self._lock:
            active = self._active.pop(query_id, None)
            if active is None:
                return None
            if len(self._spans) >= self.max_spans:
                self.dropped += 1
                dropped = True
                span_id = None
            else:
                span_id = active.span_id
                attrs = dict(active.attributes)
                attrs.update(attributes)
                self._spans.append(
                    Span(
                        trace_id=active.trace_id,
                        span_id=active.span_id,
                        parent_id=active.parent_id,
                        name=active.name,
                        start=active.start,
                        end=when,
                        process=self.process,
                        track=active.track,
                        status=status,
                        query_id=query_id,
                        attributes=attrs,
                    )
                )
        metrics = self.metrics
        if metrics is not None:
            if dropped:
                metrics.on_dropped()
            else:
                metrics.on_span()
        return span_id

    def close_all(self, *, end: float | None = None, status: str = "abandoned") -> int:
        """Close every open root (engine stop/truncation path)."""
        when = self.now() if end is None else end
        with self._lock:
            open_ids = list(self._active)
        for query_id in open_ids:
            self.close(query_id, end=when, status=status)
        return len(open_ids)

    # -- the buffer ----------------------------------------------------------

    def spans(self) -> tuple[Span, ...]:
        """A stable snapshot of the buffer (emission order)."""
        with self._lock:
            return tuple(self._spans)

    def drain(self) -> tuple[Span, ...]:
        """Pop the buffer (the ``spans`` wire op and fleet gather path)."""
        with self._lock:
            spans, self._spans = tuple(self._spans), []
            return spans

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def open_count(self) -> int:
        with self._lock:
            return len(self._active)

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"SpanTracer({self.process!r}, rate={self.sample_rate}, "
                f"seed={self.seed}, {len(self._spans)} spans, "
                f"{len(self._active)} open, dropped={self.dropped})"
            )


def stitch(
    spans: Iterable[Span], crashed: Iterable[int] = ()
) -> tuple[Span, ...]:
    """Merge per-process span buffers into one fleet-wide, flagged set.

    Spans are grouped by ``trace_id`` and ordered deterministically
    (trace, process, start, span id).  A trace whose ``wire.roundtrip``
    span targeted a shard in ``crashed`` lost that shard's subtree with
    the process; its root is re-stamped ``status="partial"`` so the
    incomplete tree is *flagged*, never silently dropped — the
    ``spans`` validation family requires exactly this marking.
    """
    crashed_ids = {int(c) for c in crashed}
    merged = sorted(
        spans, key=lambda s: (s.trace_id, s.process, s.start, s.span_id)
    )
    if crashed_ids:
        severed = {
            s.trace_id
            for s in merged
            if s.name == "wire.roundtrip"
            and s.attributes.get("shard") in crashed_ids
        }
        for s in merged:
            if s.trace_id in severed and s.parent_id is None:
                s.status = "partial"
    return tuple(merged)
