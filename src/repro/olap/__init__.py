"""MOLAP substrate: dense multi-resolution OLAP cubes and their processing.

This package implements the multidimensional side of the hybrid OLAP
system: dimension hierarchies (:mod:`repro.olap.hierarchy`), dense cubes
(:mod:`repro.olap.cube`), sub-cube extraction and the eq.-3 size law
(:mod:`repro.olap.subcube`), the multi-resolution cube pyramid of
Figure 1 (:mod:`repro.olap.pyramid`), chunked/compressed storage
(:mod:`repro.olap.chunks`), the group-by lattice
(:mod:`repro.olap.lattice`), cube-construction algorithms
(:mod:`repro.olap.buildalgs`), the multi-process aggregation engine that
stands in for the paper's OpenMP implementation
(:mod:`repro.olap.parallel`), the bandwidth benchmark behind Figure 3
(:mod:`repro.olap.bandwidth`) and the materialized-rollup answer cache
that serves covered queries without touching the scheduler
(:mod:`repro.olap.rollup`).
"""

from repro.olap.hierarchy import DimensionHierarchy, Level
from repro.olap.buildalgs import (
    array_based_cube,
    buc_cube,
    full_cube_reference,
    pipesort_cube,
    plan_pipelines,
    project_coordinates,
)
from repro.olap.cube import OLAPCube, AggregateOp
from repro.olap.subcube import subcube_size_mb, subcube_size_bytes, SubcubeSpec
from repro.olap.pyramid import CubePyramid, PyramidLevel, PyramidGroup
from repro.olap.chunks import ChunkedCube
from repro.olap.lattice import CubeLattice
from repro.olap.parallel import ParallelAggregator
from repro.olap.rollup import (
    ROLLUP_TARGET,
    AdmissionPolicy,
    CuboidSpec,
    MaterialisedCuboid,
    RollupCatalog,
    RollupExecutor,
    RollupRouter,
)

__all__ = [
    "ROLLUP_TARGET",
    "AdmissionPolicy",
    "CuboidSpec",
    "MaterialisedCuboid",
    "RollupCatalog",
    "RollupExecutor",
    "RollupRouter",
    "DimensionHierarchy",
    "Level",
    "OLAPCube",
    "AggregateOp",
    "SubcubeSpec",
    "subcube_size_mb",
    "subcube_size_bytes",
    "CubePyramid",
    "PyramidLevel",
    "PyramidGroup",
    "ChunkedCube",
    "CubeLattice",
    "ParallelAggregator",
    "array_based_cube",
    "buc_cube",
    "full_cube_reference",
    "pipesort_cube",
    "plan_pipelines",
    "project_coordinates",
]
