"""The aggregation-bandwidth benchmark behind Figures 3-5.

The paper derived its CPU performance model by benchmarking cube
processing over sub-cube sizes from 1 MB to 32 GB and fitting the
eq.-4 piecewise family to the measurements (Section III-D).  This
module is that benchmark: it times thread-parallel reductions over
dense arrays of swept sizes and emits ``(size_mb, seconds, GB/s)``
rows, which :func:`repro.core.calibration.fit_piecewise_cpu` turns into
a :class:`~repro.core.perfmodel.CPUPerfModel` — the exact pipeline that
produced eq. 7 and eq. 10.

On this machine the absolute numbers differ from the 2010 dual-Xeon
testbed (EXPERIMENTS.md records both); the *shape* — bandwidth rising
with threads and flattening once cube size exceeds cache (Figure 3), a
power-law small-size regime crossing into a linear streaming regime
(Figures 4-5) — is what the reproduction checks.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import CalibrationError
from repro.olap.parallel import ParallelAggregator
from repro.units import MB, bandwidth_gbps

__all__ = ["BandwidthPoint", "BandwidthSweep", "run_bandwidth_sweep", "DEFAULT_SIZES_MB"]

#: A laptop-friendly slice of the paper's 1 MB - 32 GB sweep.
DEFAULT_SIZES_MB: tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256)


@dataclass(frozen=True)
class BandwidthPoint:
    """One measurement: processing an ``size_mb`` sub-cube."""

    size_mb: float
    num_threads: int
    seconds: float
    checksum: float

    @property
    def gbps(self) -> float:
        """Achieved processing bandwidth (the Figure-3 ordinate)."""
        return bandwidth_gbps(self.size_mb * MB, self.seconds)


@dataclass(frozen=True)
class BandwidthSweep:
    """All points of one sweep, ready for model fitting."""

    points: tuple[BandwidthPoint, ...]

    def for_threads(self, num_threads: int) -> tuple[BandwidthPoint, ...]:
        return tuple(p for p in self.points if p.num_threads == num_threads)

    def sizes_mb(self, num_threads: int) -> list[float]:
        return [p.size_mb for p in self.for_threads(num_threads)]

    def times(self, num_threads: int) -> list[float]:
        return [p.seconds for p in self.for_threads(num_threads)]

    def bandwidths(self, num_threads: int) -> list[float]:
        return [p.gbps for p in self.for_threads(num_threads)]

    @property
    def thread_counts(self) -> tuple[int, ...]:
        return tuple(sorted({p.num_threads for p in self.points}))


def _measure_once(array: np.ndarray, aggregator: ParallelAggregator) -> tuple[float, float]:
    start = time.perf_counter()
    value = aggregator.reduce_array(array, "add")
    elapsed = time.perf_counter() - start
    return elapsed, value


def run_bandwidth_sweep(
    sizes_mb: Sequence[float] = DEFAULT_SIZES_MB,
    thread_counts: Sequence[int] = (1, 4, 8),
    repeats: int = 3,
    seed: int = 2012,
) -> BandwidthSweep:
    """Measure cube-processing time across sizes and thread counts.

    Each size allocates one float64 array of exactly ``size_mb`` MB
    (the sub-cube payload), warms it, and takes the best of ``repeats``
    timed parallel reductions (minimum over repeats is the standard
    bandwidth-benchmark estimator — it rejects scheduler noise, which
    only ever adds time).  The checksum keeps the reduction honest: the
    compiler/runtime cannot elide work whose result is compared.
    """
    if repeats < 1:
        raise CalibrationError(f"repeats must be >= 1, got {repeats}")
    if not sizes_mb:
        raise CalibrationError("need at least one size")
    rng = np.random.default_rng(seed)
    points: list[BandwidthPoint] = []
    for size_mb in sizes_mb:
        n = max(1, int(size_mb * MB) // 8)
        array = rng.random(n)
        expected = float(array.sum())
        for num_threads in thread_counts:
            aggregator = ParallelAggregator(num_threads=num_threads)
            best = float("inf")
            checksum = 0.0
            for _ in range(repeats):
                elapsed, value = _measure_once(array, aggregator)
                if not np.isclose(value, expected, rtol=1e-9):
                    raise CalibrationError(
                        f"parallel reduction produced {value}, expected {expected}"
                    )
                if elapsed < best:
                    best = elapsed
                    checksum = value
            points.append(
                BandwidthPoint(
                    size_mb=float(size_mb),
                    num_threads=num_threads,
                    seconds=best,
                    checksum=checksum,
                )
            )
        del array
    return BandwidthSweep(points=tuple(points))
