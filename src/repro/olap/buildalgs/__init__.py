"""Host-side cube-construction algorithms (Section II-A related work).

The paper's CPU OLAP partition answers queries from a pre-built MOLAP
cube; this package provides the three classic ways to build that cube
on the host, plus a brute-force oracle they are all verified against:

* :func:`~repro.olap.buildalgs.reference.full_cube_reference` — the
  definitionally-correct materializer (one scan per cuboid);
* :func:`~repro.olap.buildalgs.arraybased.array_based_cube` — Zhao,
  Deshpande & Naughton's array-based simultaneous aggregation (dense
  NumPy base cuboid + smallest-parent axis sums over the
  :class:`~repro.olap.lattice.CubeLattice`);
* :func:`~repro.olap.buildalgs.buc.buc_cube` — Beyer & Ramakrishnan's
  Bottom-Up Cube, recursive partitioning with anti-monotone iceberg
  pruning;
* :func:`~repro.olap.buildalgs.pipesort.pipesort_cube` — Agarwal et
  al.'s PipeSort, one sorted scan per pipeline of a minimum prefix-chain
  cover of the lattice (:func:`~repro.olap.buildalgs.pipesort.plan_pipelines`).

**The shared cuboid-dict contract.**  Every builder has the signature
``build(table, measure, resolutions, min_support=1)`` where ``table``
is a :class:`~repro.relational.table.FactTable`, ``measure`` names the
aggregated column, and ``resolutions`` maps each participating
dimension name to the resolution level to group at.  The result is one
dictionary per cuboid, keyed by the ``frozenset`` of its grouped
dimension names (``frozenset()`` is the apex/grand total)::

    {frozenset({"date", "store"}): {(year, region): sum_of_measure, ...},
     frozenset({"date"}):          {(year,): ..., ...},
     frozenset():                  {(): grand_total}}

Cell keys are coordinate tuples ordered by **sorted dimension name**
(never by algorithm-internal sort order), so cuboid dictionaries from
different builders compare equal directly.  ``min_support`` is the
iceberg threshold: a cell is emitted iff at least that many fact rows
fall into it (``min_support=1`` keeps every non-empty cell; ``< 1``
raises :class:`~repro.errors.CubeError`).  All 2^N cuboid keys are
always present, even when pruning leaves a cuboid with no qualifying
cells.
"""

from repro.olap.buildalgs.arraybased import array_based_cube
from repro.olap.buildalgs.buc import buc_cube
from repro.olap.buildalgs.pipesort import pipesort_cube, plan_pipelines
from repro.olap.buildalgs.reference import full_cube_reference, project_coordinates

__all__ = [
    "array_based_cube",
    "buc_cube",
    "full_cube_reference",
    "pipesort_cube",
    "plan_pipelines",
    "project_coordinates",
]
