"""Array-based simultaneous aggregation (Zhao, Deshpande & Naughton).

The MOLAP-native construction algorithm the paper's CPU side builds on:
materialise the **base cuboid** as a dense NumPy array with one
vectorised ``bincount`` pass over the fact table, then derive every
coarser cuboid from its *smallest parent* along the minimum-size
spanning tree of the group-by lattice (:class:`repro.olap.lattice.CubeLattice`)
— each derivation is a single axis-sum over an already-dense array, so
no cuboid ever touches the fact table twice.

Dense arrays are converted to the shared sparse cell dictionaries by a
cache-conscious chunked traversal: the count array is re-stored as a
:class:`repro.olap.chunks.ChunkedCube` and cells are emitted chunk by
chunk, so the scan walks memory in contiguous blocks (the access
pattern Sirin & Ailamaki's micro-architectural OLAP analysis shows
dominates aggregation throughput) and sparse chunks surface their
occupied cells directly from their compressed offsets.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping

import numpy as np

from repro.olap.buildalgs.reference import CuboidDict, check_build_args, project_coordinates
from repro.olap.chunks import ChunkedCube, DenseChunk
from repro.olap.lattice import CubeLattice

if TYPE_CHECKING:  # avoid a hard olap -> relational dependency
    from repro.relational.table import FactTable

__all__ = ["array_based_cube"]

#: Default chunk extent per axis for the dense -> sparse traversal.
DEFAULT_CHUNK_EXTENT = 64


def _emit_cells(
    sums: np.ndarray,
    counts: np.ndarray,
    min_support: int,
    chunk_extent: int,
) -> dict[tuple[int, ...], float]:
    """Occupied cells of one dense cuboid, via chunked traversal."""
    if sums.ndim == 0:  # the apex: a single scalar cell
        return {(): float(sums)} if counts >= min_support else {}

    chunk_shape = tuple(min(chunk_extent, extent) for extent in counts.shape)
    chunked = ChunkedCube.from_dense(counts, chunk_shape)
    cells: dict[tuple[int, ...], float] = {}
    for chunk in chunked.iter_chunks():
        starts = tuple(i * c for i, c in zip(chunk.index, chunk_shape))
        if isinstance(chunk, DenseChunk):
            local = np.nonzero(chunk.data >= min_support)
        else:
            keep = chunk.values >= min_support
            local = np.unravel_index(chunk.offsets[keep], chunk.shape)
        if not local[0].size:
            continue
        global_idx = tuple(axis + start for axis, start in zip(local, starts))
        keys = np.column_stack(global_idx).tolist()
        for key, value in zip(keys, sums[global_idx].tolist()):
            cells[tuple(key)] = value
    return cells


def array_based_cube(
    table: "FactTable",
    measure: str,
    resolutions: Mapping[str, int],
    min_support: int = 1,
    chunk_extent: int = DEFAULT_CHUNK_EXTENT,
) -> CuboidDict:
    """Full/iceberg cube via dense-array simultaneous aggregation.

    One ``bincount`` pass over the fact table builds the dense base
    cuboid (sum and count arrays); every coarser cuboid is then a
    single axis-sum over its smallest parent along the minimum-size
    spanning tree, so the fact table is scanned exactly once.

    Parameters
    ----------
    table:
        The fact table to cube.
    measure:
        Measure column summed per cell.
    resolutions:
        Dimension name -> resolution index; the keys are the dimension
        set of the lattice.
    min_support:
        Iceberg threshold; see
        :func:`~repro.olap.buildalgs.reference.check_build_args`.
    chunk_extent:
        Per-axis block size of the chunked dense-to-sparse traversal
        that emits occupied cells.

    Returns
    -------
    CuboidDict
        Same shape as
        :func:`~repro.olap.buildalgs.reference.full_cube_reference`,
        cell-for-cell identical to it.

    Raises
    ------
    CubeError, SchemaError
        As documented on
        :func:`~repro.olap.buildalgs.reference.check_build_args`.
    """
    names = check_build_args(table, measure, resolutions, min_support)
    values = np.asarray(table.column(measure), dtype=np.float64)
    if not names:
        total = float(values.sum())
        return {frozenset(): {(): total} if len(table) >= min_support else {}}

    schema = table.schema
    dims = [schema.dimension(name) for name in names]
    shape = tuple(d.cardinality(resolutions[d.name]) for d in dims)
    size = int(np.prod(shape))

    # one pass over the fact table: the dense base cuboid (sum + count)
    coords = project_coordinates(table, names, resolutions)
    if len(table):
        flat = np.ravel_multi_index(tuple(coords.T), shape)
    else:
        flat = np.empty(0, dtype=np.intp)
    base_sum = np.bincount(flat, weights=values, minlength=size).reshape(shape)
    base_count = np.bincount(flat, minlength=size).reshape(shape)

    # every other cuboid: axis-sum from its smallest parent
    lattice = CubeLattice(dims, [resolutions[d.name] for d in dims])
    dense: dict[frozenset, tuple[np.ndarray, np.ndarray]] = {
        lattice.base: (base_sum, base_count)
    }
    for cuboid, parent in lattice.computation_order():
        if parent is None:
            continue
        dropped = next(iter(parent - cuboid))
        axis = sorted(parent).index(dropped)
        parent_sum, parent_count = dense[parent]
        dense[cuboid] = (parent_sum.sum(axis=axis), parent_count.sum(axis=axis))

    return {
        cuboid: _emit_cells(s, c, min_support, chunk_extent)
        for cuboid, (s, c) in dense.items()
    }
