"""Bottom-Up Cube construction (Beyer & Ramakrishnan's BUC).

BUC computes the cube lattice from the apex downward: aggregate the
current partition, then — for each dimension not yet bound — sort the
partition on that dimension and recurse into each coordinate group.
Because every recursive call narrows the row set, the iceberg condition
``COUNT(*) >= min_support`` is *anti-monotone*: a group that fails it
cannot contain any qualifying finer cell, so the whole subtree is
pruned before it is ever materialised.  With ``min_support=1`` no
pruning fires and BUC emits the ordinary full cube.

The pruning hook is exposed (``prune``) so variants — iceberg
conditions on other monotone predicates, sampling-based estimates — can
reuse the partition recursion unchanged.
"""

from __future__ import annotations

from itertools import combinations
from typing import TYPE_CHECKING, Callable, Mapping

import numpy as np

from repro.olap.buildalgs.reference import CuboidDict, check_build_args, project_coordinates

if TYPE_CHECKING:  # avoid a hard olap -> relational dependency
    from repro.relational.table import FactTable

__all__ = ["buc_cube"]

#: A pruning hook: (partition row indices, measure values) -> keep subtree?
PruneHook = Callable[[np.ndarray, np.ndarray], bool]


def buc_cube(
    table: "FactTable",
    measure: str,
    resolutions: Mapping[str, int],
    min_support: int = 1,
    prune: PruneHook | None = None,
) -> CuboidDict:
    """Full/iceberg cube via bottom-up recursive partitioning.

    Aggregates the current partition, then sorts it on each unbound
    dimension and recurses into the coordinate groups; subtrees whose
    partition fails the (anti-monotone) iceberg condition are pruned
    before they are materialised.

    Parameters
    ----------
    table:
        The fact table to cube.
    measure:
        Measure column summed per cell.
    resolutions:
        Dimension name -> resolution index; the keys are the dimension
        set of the lattice.
    min_support:
        Iceberg threshold; see
        :func:`~repro.olap.buildalgs.reference.check_build_args`.
    prune:
        Optional replacement for the default support test
        ``partition_size >= min_support``.  Called with the partition's
        row indices and the full measure array; returning ``False``
        prunes the subtree.  Must be anti-monotone (a superset of a
        rejected partition is also rejected) for the output to equal
        the exact iceberg cube.

    Returns
    -------
    CuboidDict
        Same shape as
        :func:`~repro.olap.buildalgs.reference.full_cube_reference`.
        Every cuboid key is present even when pruning empties its cell
        dictionary.

    Raises
    ------
    CubeError, SchemaError
        As documented on
        :func:`~repro.olap.buildalgs.reference.check_build_args`.
    """
    names = check_build_args(table, measure, resolutions, min_support)
    values = np.asarray(table.column(measure), dtype=np.float64)
    coords = project_coordinates(table, names, resolutions)
    num_dims = len(names)

    if prune is None:
        def prune(idx: np.ndarray, _vals: np.ndarray) -> bool:
            return idx.size >= min_support

    # Every cuboid key exists up front: pruning may empty a cuboid's
    # cell dictionary but never removes the cuboid from the result.
    cube: CuboidDict = {
        frozenset(combo): {} for k in range(num_dims + 1)
        for combo in combinations(names, k)
    }

    def recurse(idx: np.ndarray, first_dim: int, bound: tuple[tuple[int, int], ...]) -> None:
        # bound holds (dimension index, coordinate) pairs in increasing
        # dimension index == sorted-name order, the canonical key order.
        cuboid = frozenset(names[d] for d, _ in bound)
        key = tuple(coord for _, coord in bound)
        cube[cuboid][key] = float(values[idx].sum())

        for d in range(first_dim, num_dims):
            column = coords[idx, d]
            order = np.argsort(column, kind="stable")
            sorted_column = column[order]
            # group boundaries: positions where the coordinate changes
            cuts = np.flatnonzero(np.diff(sorted_column)) + 1
            for group in np.split(order, cuts):
                if prune(group, values[idx[group]]):
                    coord = int(column[group[0]])
                    recurse(idx[group], d + 1, bound + ((d, coord),))

    all_rows = np.arange(len(table))
    if prune(all_rows, values):
        recurse(all_rows, 0, ())
    return cube
