"""Top-down PipeSort construction (Agarwal et al.'s sort-based method).

PipeSort exploits that one sorted run of the data computes a whole
*pipeline* of cuboids at once: with rows ordered by ``(d1, d2, ..., dk)``
every prefix ``(d1..dL)`` groups into contiguous runs, so the cuboids
``{}, {d1}, {d1,d2}, ... {d1..dk}`` all fall out of a single scan.
Covering the 2^n-cuboid lattice therefore reduces to a **minimum path
cover** of the lattice by prefix chains.

:func:`plan_pipelines` builds that cover from the symmetric chain
decomposition of the Boolean lattice (de Bruijn / Tengbergen / Kruyswijk
construction): exactly ``C(n, n // 2)`` chains — provably minimal, since
each chain holds at most one cuboid of the largest rank — each extended
downward into a concrete sort order.  :func:`pipesort_cube` then
executes one :func:`numpy.lexsort` + prefix-scan per pipeline.
"""

from __future__ import annotations

from itertools import combinations
from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

from repro.errors import CubeError
from repro.olap.buildalgs.reference import CuboidDict, check_build_args, project_coordinates

if TYPE_CHECKING:  # avoid a hard olap -> relational dependency
    from repro.relational.table import FactTable

__all__ = ["pipesort_cube", "plan_pipelines"]


def plan_pipelines(names: Sequence[str]) -> list[tuple[str, ...]]:
    """Minimum prefix-chain cover of the cuboid lattice over ``names``.

    The result depends only on the *set* of names: names are sorted
    internally, the full sort order ``tuple(sorted(names))`` always
    comes first, and the remaining pipelines follow in
    (length-descending, lexicographic) order.

    Parameters
    ----------
    names:
        The dimension names spanning the lattice; order is irrelevant,
        duplicates are rejected.

    Returns
    -------
    list[tuple[str, ...]]
        Sort orders such that every one of the ``2^n`` cuboids is a
        prefix of at least one order, using the provably minimal
        ``C(n, n // 2)`` pipelines (symmetric chain decomposition).

    Raises
    ------
    CubeError
        If ``names`` contains duplicates.
    """
    ordered = sorted(names)
    if len(set(ordered)) != len(ordered):
        raise CubeError(f"duplicate dimension names: {list(names)}")

    # Symmetric chain decomposition, chains represented as (order, lo):
    # the chain's cuboids are the prefixes of ``order`` with lengths
    # lo .. len(order).
    chains: list[tuple[tuple[str, ...], int]] = [((), 0)]
    for name in ordered:
        grown: list[tuple[tuple[str, ...], int]] = []
        for order, lo in chains:
            # extend the chain's top set by the new element
            grown.append((order + (name,), lo))
            if len(order) > lo:
                # the sibling chain: every set except the old top,
                # each augmented with the new element
                grown.append((order[:lo] + (name,) + order[lo:-1], lo + 1))
        chains = grown

    return sorted((order for order, _ in chains), key=lambda o: (-len(o), o))


def pipesort_cube(
    table: "FactTable",
    measure: str,
    resolutions: Mapping[str, int],
    min_support: int = 1,
) -> CuboidDict:
    """Full/iceberg cube via sorted pipeline scans.

    Each pipeline from :func:`plan_pipelines` sorts the projected
    coordinates once (:func:`numpy.lexsort`) and aggregates every
    still-uncomputed prefix cuboid from the contiguous runs of that
    sorted order.

    Parameters
    ----------
    table:
        The fact table to cube.
    measure:
        Measure column summed per cell.
    resolutions:
        Dimension name -> resolution index; the keys are the dimension
        set of the lattice.
    min_support:
        Iceberg threshold; see
        :func:`~repro.olap.buildalgs.reference.check_build_args`.

    Returns
    -------
    CuboidDict
        Same shape as
        :func:`~repro.olap.buildalgs.reference.full_cube_reference`,
        cell-for-cell identical to it.

    Raises
    ------
    CubeError, SchemaError
        As documented on
        :func:`~repro.olap.buildalgs.reference.check_build_args`.
    """
    names = check_build_args(table, measure, resolutions, min_support)
    values = np.asarray(table.column(measure), dtype=np.float64)
    num_rows = len(table)

    cube: CuboidDict = {
        frozenset(combo): {} for k in range(len(names) + 1)
        for combo in combinations(names, k)
    }
    if num_rows == 0:
        return cube

    column_of = {
        name: project_coordinates(table, [name], resolutions)[:, 0] for name in names
    }

    done: set[frozenset] = set()
    for order in plan_pipelines(names):
        if all(frozenset(order[:length]) in done for length in range(len(order) + 1)):
            continue
        columns = [column_of[name] for name in order]
        # lexsort's last key is primary, so reverse: d1 is the major key
        perm = np.lexsort(tuple(reversed(columns))) if columns else np.arange(num_rows)
        sorted_columns = [col[perm] for col in columns]
        sorted_values = values[perm]

        changed = np.zeros(max(num_rows - 1, 0), dtype=bool)
        run_change: list[np.ndarray] = []
        for col in sorted_columns:  # cumulative change marks per prefix length
            changed = changed | (col[1:] != col[:-1])
            run_change.append(changed.copy())

        for length in range(len(order), -1, -1):
            cuboid = frozenset(order[:length])
            if cuboid in done:
                continue
            done.add(cuboid)
            if length == 0:
                if num_rows >= min_support:
                    cube[cuboid][()] = float(values.sum())
                continue
            starts = np.concatenate(([0], np.flatnonzero(run_change[length - 1]) + 1))
            sums = np.add.reduceat(sorted_values, starts)
            counts = np.diff(np.append(starts, num_rows))
            # canonical key order is sorted dimension name, which may
            # differ from this pipeline's sort order
            key_order = sorted(range(length), key=lambda i: order[i])
            keys = np.column_stack([sorted_columns[i][starts] for i in key_order])
            keep = counts >= min_support
            cells = cube[cuboid]
            for key, total in zip(keys[keep].tolist(), sums[keep].tolist()):
                cells[tuple(key)] = total
    return cube
