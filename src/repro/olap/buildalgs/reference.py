"""Brute-force full-cube reference — the correctness oracle.

:func:`full_cube_reference` materialises every cuboid of the group-by
lattice (Section II-A, Gray et al.'s CUBE operator) by re-scanning the
fact table once per cuboid and accumulating cells in plain Python
dictionaries.  It is deliberately the slowest possible implementation:
no shared computation, no planning, no vectorised inner loop — just the
definition of the full cube, written down.  The three real construction
algorithms (:mod:`~repro.olap.buildalgs.arraybased`,
:mod:`~repro.olap.buildalgs.buc`, :mod:`~repro.olap.buildalgs.pipesort`)
are cross-checked against it cell-for-cell.

All builders share one output contract (see the package docstring):
``frozenset(dimension names) -> {coordinate tuple -> sum}``, with
coordinates ordered by **sorted dimension name** and an optional
iceberg condition ``COUNT(*) >= min_support`` applied per cell.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

from repro.errors import CubeError
from repro.query.model import dimension_column

if TYPE_CHECKING:  # avoid a hard olap -> relational dependency
    from repro.relational.table import FactTable

__all__ = ["full_cube_reference", "project_coordinates"]

#: The cuboid-dictionary type every builder returns.
CuboidDict = dict


def check_build_args(
    table: "FactTable",
    measure: str,
    resolutions: Mapping[str, int],
    min_support: int,
) -> list[str]:
    """Validate the shared builder arguments; return sorted dimension names.

    Every construction algorithm calls this first, so the four builders
    accept and reject exactly the same inputs.

    Parameters
    ----------
    table:
        The fact table to cube.
    measure:
        Name of the measure column to aggregate (``SUM`` per cell).
    resolutions:
        Mapping of dimension name to resolution index; its keys define
        the dimension set the lattice is built over.
    min_support:
        The iceberg threshold of Beyer & Ramakrishnan's BUC paper: a
        cell survives iff at least ``min_support`` fact rows fall into
        it.  ``min_support=1`` (the default everywhere) keeps every
        non-empty cell, i.e. the ordinary full cube.

    Returns
    -------
    list[str]
        The dimension names in sorted order — the canonical coordinate
        order of every cell key the builders emit.

    Raises
    ------
    CubeError
        If ``min_support < 1`` or a resolution is out of range.
    SchemaError
        If a dimension or the measure is not in ``table``'s schema.
    """
    if min_support < 1:
        raise CubeError(f"min_support must be >= 1, got {min_support}")
    schema = table.schema
    names = sorted(resolutions)
    for name in names:
        schema.dimension(name).check_resolution(resolutions[name])
    table.column(measure)  # raises SchemaError for unknown measures
    return names


def project_coordinates(
    table: "FactTable",
    dimensions: Sequence[str],
    resolutions: Mapping[str, int],
) -> np.ndarray:
    """Per-row coordinates of ``dimensions`` at the requested resolutions.

    Parameters
    ----------
    dimensions:
        Dimension names to project, in the desired column order
        (callers pass sorted names for the canonical cell-key order).
    resolutions:
        Mapping of dimension name to the resolution index whose level
        column is read; may contain extra keys.

    Returns
    -------
    numpy.ndarray
        An ``(num_rows, len(dimensions))`` int64 array whose column
        ``i`` is the fact-table dimension column of ``dimensions[i]``
        at level ``resolutions[dimensions[i]]`` — the projection every
        construction algorithm groups by.
    """
    if not dimensions:
        return np.empty((len(table), 0), dtype=np.int64)
    schema = table.schema
    cols = []
    for name in dimensions:
        dim = schema.dimension(name)
        level = dim.level(dim.check_resolution(resolutions[name]))
        cols.append(
            np.asarray(table.column(dimension_column(name, level.name)), dtype=np.int64)
        )
    return np.column_stack(cols)


def full_cube_reference(
    table: "FactTable",
    measure: str,
    resolutions: Mapping[str, int],
    min_support: int = 1,
) -> CuboidDict:
    """The full (or iceberg) cube by definition: one scan per cuboid.

    Every subset of the dimension set becomes a cuboid; every cuboid is
    computed independently by a row-at-a-time Python accumulation over
    the projected coordinates.  Cells whose row count falls below
    ``min_support`` are dropped after aggregation (the iceberg
    condition applied exactly, with no pruning shortcuts to trust).

    Parameters
    ----------
    table:
        The fact table to cube.
    measure:
        Measure column summed per cell.
    resolutions:
        Dimension name -> resolution index; the keys are the dimension
        set of the lattice.
    min_support:
        Iceberg threshold; see :func:`check_build_args`.

    Returns
    -------
    CuboidDict
        ``frozenset(dimension names) -> {coordinate tuple -> sum}``
        with one entry per subset of the dimension set, coordinates in
        sorted-name order.

    Raises
    ------
    CubeError, SchemaError
        As documented on :func:`check_build_args`.
    """
    names = check_build_args(table, measure, resolutions, min_support)
    values = np.asarray(table.column(measure), dtype=np.float64).tolist()

    cube: CuboidDict = {}
    for k in range(len(names) + 1):
        for combo in itertools.combinations(names, k):
            coords = project_coordinates(table, combo, resolutions)
            sums: dict[tuple[int, ...], float] = {}
            counts: dict[tuple[int, ...], int] = {}
            for key, value in zip(map(tuple, coords.tolist()), values):
                sums[key] = sums.get(key, 0.0) + value
                counts[key] = counts.get(key, 0) + 1
            cube[frozenset(combo)] = {
                key: total
                for key, total in sums.items()
                if counts[key] >= min_support
            }
    return cube
