"""Chunked cube storage with chunk-offset compression.

Zhao, Deshpande & Naughton [20] — the array-based MOLAP substrate the
paper builds on — store cubes as same-sized n-dimensional chunks
(matched to the I/O block size) and compress any chunk whose fill ratio
drops below 40 % using *chunk-offset compression*: the chunk is stored
as ``(offset, value)`` pairs, where the offset is the cell's position in
the chunk's own row-major order.

:class:`ChunkedCube` implements that layout over an in-memory dense
array: regular chunk grid, per-chunk dense/compressed decision at the
40 % threshold, aggregation without decompression, and exact round-trip
back to the dense array (property-tested).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.errors import CubeError

__all__ = ["DenseChunk", "CompressedChunk", "ChunkedCube", "ZHAO_FILL_THRESHOLD"]

#: Zhao et al.'s compression threshold: chunks < 40 % full are compressed.
ZHAO_FILL_THRESHOLD: float = 0.40


@dataclass(frozen=True)
class DenseChunk:
    """A fully materialised chunk."""

    index: tuple[int, ...]
    data: np.ndarray

    @property
    def nbytes(self) -> int:
        return int(self.data.nbytes)

    @property
    def fill_ratio(self) -> float:
        return float(np.count_nonzero(self.data)) / self.data.size if self.data.size else 0.0

    def sum(self) -> float:
        return float(self.data.sum())

    def to_dense(self) -> np.ndarray:
        return self.data


@dataclass(frozen=True)
class CompressedChunk:
    """Chunk-offset compression: (row-major offset, value) pairs.

    Offsets are relative to the chunk's own shape, exactly as in [20]
    (so a chunk decompresses without knowing its position in the cube).
    """

    index: tuple[int, ...]
    shape: tuple[int, ...]
    offsets: np.ndarray  # int64, sorted ascending
    values: np.ndarray  # float64

    def __post_init__(self) -> None:
        if self.offsets.shape != self.values.shape or self.offsets.ndim != 1:
            raise CubeError("offsets and values must be equal-length 1-D arrays")
        size = int(np.prod(self.shape))
        if self.offsets.size and (
            self.offsets.min() < 0 or self.offsets.max() >= size
        ):
            raise CubeError("offsets out of range for chunk shape")
        if self.offsets.size > 1 and not np.all(np.diff(self.offsets) > 0):
            raise CubeError("offsets must be strictly increasing")

    @property
    def nbytes(self) -> int:
        return int(self.offsets.nbytes + self.values.nbytes)

    @property
    def fill_ratio(self) -> float:
        size = int(np.prod(self.shape))
        return self.offsets.size / size if size else 0.0

    def sum(self) -> float:
        return float(self.values.sum())

    def to_dense(self) -> np.ndarray:
        dense = np.zeros(int(np.prod(self.shape)))
        dense[self.offsets] = self.values
        return dense.reshape(self.shape)


class ChunkedCube:
    """A dense cube re-stored as a regular grid of (possibly compressed) chunks.

    Parameters
    ----------
    shape:
        Logical cube shape.
    chunk_shape:
        Chunk extent per axis; the grid is regular, with edge chunks
        clipped (the paper's substrate pads to equal blocks on disk; in
        memory clipping is equivalent and wastes nothing).
    chunks:
        The chunk objects, keyed by grid index.
    """

    def __init__(
        self,
        shape: tuple[int, ...],
        chunk_shape: tuple[int, ...],
        chunks: dict[tuple[int, ...], DenseChunk | CompressedChunk],
    ):
        if len(shape) != len(chunk_shape):
            raise CubeError("shape and chunk_shape rank mismatch")
        if any(s < 1 for s in shape) or any(c < 1 for c in chunk_shape):
            raise CubeError("shape and chunk_shape must be positive")
        self.shape = tuple(int(s) for s in shape)
        self.chunk_shape = tuple(int(c) for c in chunk_shape)
        self._chunks = dict(chunks)

    # -- construction ------------------------------------------------------

    @classmethod
    def from_dense(
        cls,
        array: np.ndarray,
        chunk_shape: Sequence[int],
        fill_threshold: float = ZHAO_FILL_THRESHOLD,
    ) -> "ChunkedCube":
        """Chunk a dense array, compressing sparse chunks.

        A chunk is compressed when its nonzero fill ratio is below
        ``fill_threshold`` *and* compression actually shrinks it (the
        16-bytes-per-cell pair format can exceed the dense 8 bytes/cell
        for fill ratios above 50 % — [20]'s threshold keeps compression
        strictly profitable).
        """
        if array.ndim != len(chunk_shape):
            raise CubeError(
                f"array rank {array.ndim} != chunk rank {len(chunk_shape)}"
            )
        if not 0.0 <= fill_threshold <= 1.0:
            raise CubeError(f"fill_threshold must be in [0, 1], got {fill_threshold}")
        array = np.asarray(array, dtype=np.float64)
        chunk_shape = tuple(int(c) for c in chunk_shape)
        grid = [range(0, s, c) for s, c in zip(array.shape, chunk_shape)]
        chunks: dict[tuple[int, ...], DenseChunk | CompressedChunk] = {}
        for starts in itertools.product(*grid):
            index = tuple(s // c for s, c in zip(starts, chunk_shape))
            slicer = tuple(
                slice(start, min(start + c, s))
                for start, c, s in zip(starts, chunk_shape, array.shape)
            )
            block = np.ascontiguousarray(array[slicer])
            nnz = int(np.count_nonzero(block))
            fill = nnz / block.size if block.size else 0.0
            if fill < fill_threshold:
                flat = block.ravel()
                offsets = np.flatnonzero(flat).astype(np.int64)
                chunks[index] = CompressedChunk(
                    index=index,
                    shape=block.shape,
                    offsets=offsets,
                    values=flat[offsets].astype(np.float64),
                )
            else:
                chunks[index] = DenseChunk(index=index, data=block)
        return cls(array.shape, chunk_shape, chunks)

    # -- access ------------------------------------------------------------

    @property
    def grid_shape(self) -> tuple[int, ...]:
        return tuple(-(-s // c) for s, c in zip(self.shape, self.chunk_shape))

    @property
    def num_chunks(self) -> int:
        return len(self._chunks)

    def chunk_at(self, index: tuple[int, ...]) -> DenseChunk | CompressedChunk:
        try:
            return self._chunks[tuple(index)]
        except KeyError:
            raise CubeError(f"no chunk at grid index {index}") from None

    def iter_chunks(self) -> Iterator[DenseChunk | CompressedChunk]:
        return iter(self._chunks.values())

    @property
    def num_compressed(self) -> int:
        return sum(1 for c in self._chunks.values() if isinstance(c, CompressedChunk))

    @property
    def nbytes(self) -> int:
        """Stored payload (the quantity compression reduces)."""
        return sum(c.nbytes for c in self._chunks.values())

    @property
    def dense_nbytes(self) -> int:
        """What the same cube costs fully dense."""
        return int(np.prod(self.shape)) * 8

    @property
    def compression_ratio(self) -> float:
        """dense / stored; > 1 means compression helped."""
        stored = self.nbytes
        return self.dense_nbytes / stored if stored else float("inf")

    # -- whole-cube operations -----------------------------------------------

    def sum(self) -> float:
        """Total over all cells — computed without decompressing."""
        return float(sum(c.sum() for c in self._chunks.values()))

    # -- sub-cube aggregation ------------------------------------------------

    def sum_range(self, ranges: Sequence[tuple[int, int]]) -> float:
        """Sum over the half-open hyper-rectangle ``ranges``.

        Only chunks overlapping the query box are touched (the chunked
        layout's point: I/O proportional to the sub-cube, Figure 2's
        "area of limited search").  Dense chunks are sliced; compressed
        chunks are filtered by decoding their offsets to chunk-local
        coordinates — never fully decompressed.
        """
        if len(ranges) != len(self.shape):
            raise CubeError(
                f"need {len(self.shape)} ranges, got {len(ranges)}"
            )
        for (lo, hi), extent in zip(ranges, self.shape):
            if not (0 <= lo <= hi <= extent):
                raise CubeError(f"range ({lo}, {hi}) invalid for extent {extent}")

        total = 0.0
        for index, chunk in self._chunks.items():
            starts = tuple(i * c for i, c in zip(index, self.chunk_shape))
            shape = (
                chunk.data.shape
                if isinstance(chunk, DenseChunk)
                else chunk.shape
            )
            # chunk-local overlap with the query box
            local = []
            empty = False
            for (lo, hi), start, extent in zip(ranges, starts, shape):
                l = max(lo - start, 0)
                h = min(hi - start, extent)
                if l >= h:
                    empty = True
                    break
                local.append((l, h))
            if empty:
                continue
            if isinstance(chunk, DenseChunk):
                slicer = tuple(slice(l, h) for l, h in local)
                total += float(chunk.data[slicer].sum())
            else:
                if not chunk.offsets.size:
                    continue
                coords = np.unravel_index(chunk.offsets, shape)
                mask = np.ones(chunk.offsets.shape, dtype=bool)
                for axis, (l, h) in enumerate(local):
                    mask &= (coords[axis] >= l) & (coords[axis] < h)
                total += float(chunk.values[mask].sum())
        return total

    def to_dense(self) -> np.ndarray:
        """Exact reconstruction of the original dense array."""
        out = np.zeros(self.shape)
        for index, chunk in self._chunks.items():
            starts = tuple(i * c for i, c in zip(index, self.chunk_shape))
            block = chunk.to_dense()
            slicer = tuple(
                slice(start, start + extent)
                for start, extent in zip(starts, block.shape)
            )
            out[slicer] = block
        return out

    def __repr__(self) -> str:
        return (
            f"ChunkedCube({self.shape}, chunks={self.num_chunks} "
            f"({self.num_compressed} compressed), ratio={self.compression_ratio:.2f}x)"
        )
