"""Dense MOLAP cubes.

An :class:`OLAPCube` materialises one measure of a fact table as a dense
N-dimensional array at a chosen resolution per dimension.  Cells hold
pre-aggregated *components* — ``sum`` and ``count`` always, optionally
``min``/``max`` — from which any of the query aggregates (sum, count,
avg, min, max) can be answered over any sub-cube without rescanning the
fact table.  Sum/count/min/max are all *decomposable* aggregates, so a
coarser cube is an exact roll-up of a finer one (:meth:`rollup`), which
is how the multi-resolution pyramid of Figure 1 is built from a single
base cube.

Construction from a fact table is fully vectorised:
``np.ravel_multi_index`` flattens row coordinates and ``np.bincount``
accumulates, following the array-based aggregation idiom of Zhao,
Deshpande & Naughton [20] (the algorithm the paper's MOLAP side builds
on).
"""

from __future__ import annotations

from enum import Enum
from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

from repro.errors import CubeError, DimensionError, QueryError
from repro.olap.hierarchy import DimensionHierarchy

if TYPE_CHECKING:  # avoid a hard olap -> relational dependency
    from repro.relational.table import FactTable

__all__ = ["OLAPCube", "AggregateOp"]


class AggregateOp(str, Enum):
    """Aggregates answerable from cube components."""

    SUM = "sum"
    COUNT = "count"
    AVG = "avg"
    MIN = "min"
    MAX = "max"

    @property
    def components(self) -> tuple[str, ...]:
        """Cube components needed to answer this aggregate."""
        return {
            AggregateOp.SUM: ("sum",),
            AggregateOp.COUNT: ("count",),
            AggregateOp.AVG: ("sum", "count"),
            AggregateOp.MIN: ("min",),
            AggregateOp.MAX: ("max",),
        }[self]


class OLAPCube:
    """A dense cube of one measure at fixed per-dimension resolutions.

    Parameters
    ----------
    dimensions:
        The dimension hierarchies, in axis order.
    resolutions:
        Resolution index per dimension (the cube's level).
    components:
        Mapping of component name (``"sum"``, ``"count"``, ``"min"``,
        ``"max"``) to a dense array of shape
        ``tuple(card(dim_i, res_i))``.
    measure:
        Name of the measure this cube aggregates.
    """

    def __init__(
        self,
        dimensions: Sequence[DimensionHierarchy],
        resolutions: Sequence[int],
        components: Mapping[str, np.ndarray],
        measure: str = "value",
    ):
        if len(dimensions) != len(resolutions):
            raise CubeError("dimensions and resolutions must have equal length")
        if not dimensions:
            raise CubeError("a cube needs at least one dimension")
        self.dimensions = tuple(dimensions)
        self.resolutions = tuple(
            d.check_resolution(r) for d, r in zip(dimensions, resolutions)
        )
        self.measure = measure
        expected_shape = tuple(
            d.cardinality(r) for d, r in zip(self.dimensions, self.resolutions)
        )
        if "sum" not in components or "count" not in components:
            raise CubeError("cube needs at least 'sum' and 'count' components")
        self._components: dict[str, np.ndarray] = {}
        for name, arr in components.items():
            if name not in ("sum", "count", "min", "max"):
                raise CubeError(f"unknown cube component {name!r}")
            arr = np.asarray(arr)
            if arr.shape != expected_shape:
                raise CubeError(
                    f"component {name!r} has shape {arr.shape}, expected {expected_shape}"
                )
            self._components[name] = np.ascontiguousarray(arr, dtype=np.float64)
        self.shape = expected_shape

    # -- construction ------------------------------------------------------

    @classmethod
    def from_fact_table(
        cls,
        table: "FactTable",
        measure: str,
        resolutions: Sequence[int] | None = None,
        with_minmax: bool = False,
        max_cells: int = 1 << 27,
    ) -> "OLAPCube":
        """Aggregate a fact table into a dense cube.

        ``resolutions`` defaults to the finest level of every dimension
        (the base cube, from which coarser pyramid levels roll up).
        ``max_cells`` fails fast on cubes too large to materialise — in
        the hybrid system such resolutions are precisely the ones served
        by the GPU from the raw fact table (Figure 1, level M).
        """
        schema = table.schema
        dims = schema.dimensions
        if resolutions is None:
            resolutions = [d.finest_resolution for d in dims]
        if len(resolutions) != len(dims):
            raise CubeError(
                f"expected {len(dims)} resolutions, got {len(resolutions)}"
            )
        shape = tuple(d.cardinality(r) for d, r in zip(dims, resolutions))
        n_cells = int(np.prod([int(s) for s in shape], dtype=object))
        if n_cells > max_cells:
            raise CubeError(
                f"dense cube at resolutions {tuple(resolutions)} would have "
                f"{n_cells} cells (> max_cells={max_cells}); this resolution "
                "belongs to the GPU side of the hybrid system"
            )
        coords = []
        for d, r in zip(dims, resolutions):
            level = d.level(r)
            coords.append(np.asarray(table.column(f"{d.name}__{level.name}"), dtype=np.intp))
        values = np.asarray(table.column(measure), dtype=np.float64)

        flat = np.ravel_multi_index(coords, shape) if len(table) else np.empty(0, dtype=np.intp)
        size = int(np.prod(shape))
        sums = np.bincount(flat, weights=values, minlength=size).reshape(shape)
        counts = np.bincount(flat, minlength=size).astype(np.float64).reshape(shape)
        components: dict[str, np.ndarray] = {"sum": sums, "count": counts}
        if with_minmax:
            mins = np.full(size, np.inf)
            maxs = np.full(size, -np.inf)
            np.minimum.at(mins, flat, values)
            np.maximum.at(maxs, flat, values)
            components["min"] = mins.reshape(shape)
            components["max"] = maxs.reshape(shape)
        return cls(dims, resolutions, components, measure=measure)

    def ingest(self, table: "FactTable", measure: str | None = None) -> int:
        """Incrementally fold another batch of fact rows into the cube.

        OLAP deployments append sales continuously; rebuilding the
        pyramid per batch would rescan everything.  Sum/count (and
        min/max when present) are all mergeable, so ingesting a batch
        is another ``bincount`` accumulated in place.  Returns the row
        count ingested.  ``ingest`` on a cube built from table A with
        table B's rows equals a fresh build over A+B (tested).
        """
        measure = measure or self.measure
        schema = table.schema
        by_name = {d.name: d for d in schema.dimensions}
        coords = []
        for d, r in zip(self.dimensions, self.resolutions):
            if d.name not in by_name or by_name[d.name] != d:
                raise CubeError(
                    f"table schema does not carry cube dimension {d.name!r}"
                )
            level = d.level(r)
            coords.append(
                np.asarray(table.column(f"{d.name}__{level.name}"), dtype=np.intp)
            )
        values = np.asarray(table.column(measure), dtype=np.float64)
        if len(table) == 0:
            return 0
        flat = np.ravel_multi_index(coords, self.shape)
        size = self.num_cells
        self._components["sum"] += np.bincount(
            flat, weights=values, minlength=size
        ).reshape(self.shape)
        self._components["count"] += (
            np.bincount(flat, minlength=size).astype(np.float64).reshape(self.shape)
        )
        if "min" in self._components:
            mins = self._components["min"].ravel()
            np.minimum.at(mins, flat, values)
            self._components["min"] = mins.reshape(self.shape)
        if "max" in self._components:
            maxs = self._components["max"].ravel()
            np.maximum.at(maxs, flat, values)
            self._components["max"] = maxs.reshape(self.shape)
        return len(table)

    def rollup(self, target_resolutions: Sequence[int]) -> "OLAPCube":
        """Exact roll-up to coarser resolutions (pyramid construction).

        Each axis is reshaped into ``(coarse, fanout)`` blocks and
        reduced: sums and counts add; min/max take extrema.  The result
        is identical to aggregating the fact table directly at the
        target resolutions, which the tests assert.
        """
        if len(target_resolutions) != len(self.dimensions):
            raise CubeError("target_resolutions length mismatch")
        factors = []
        for d, cur, tgt in zip(self.dimensions, self.resolutions, target_resolutions):
            d.check_resolution(tgt)
            if tgt > cur:
                raise CubeError(
                    f"cannot roll up dimension {d.name!r} from resolution {cur} "
                    f"to finer resolution {tgt}"
                )
            factors.append(d.cardinality(cur) // d.cardinality(tgt))

        def _reduce(arr: np.ndarray, how: str) -> np.ndarray:
            for axis, factor in enumerate(factors):
                if factor == 1:
                    continue
                shp = arr.shape
                new_shape = shp[:axis] + (shp[axis] // factor, factor) + shp[axis + 1:]
                blocked = arr.reshape(new_shape)
                if how == "add":
                    arr = blocked.sum(axis=axis + 1)
                elif how == "min":
                    arr = blocked.min(axis=axis + 1)
                else:
                    arr = blocked.max(axis=axis + 1)
            return arr

        components = {
            "sum": _reduce(self._components["sum"], "add"),
            "count": _reduce(self._components["count"], "add"),
        }
        if "min" in self._components:
            components["min"] = _reduce(self._components["min"], "min")
        if "max" in self._components:
            components["max"] = _reduce(self._components["max"], "max")
        return OLAPCube(self.dimensions, target_resolutions, components, measure=self.measure)

    # -- introspection -------------------------------------------------------

    @property
    def components(self) -> tuple[str, ...]:
        return tuple(self._components)

    def component(self, name: str) -> np.ndarray:
        try:
            return self._components[name]
        except KeyError:
            raise CubeError(
                f"cube has no {name!r} component (has {list(self._components)}); "
                "rebuild with with_minmax=True for min/max queries"
            ) from None

    @property
    def num_cells(self) -> int:
        return int(np.prod(self.shape))

    @property
    def cell_nbytes(self) -> int:
        """:math:`E_{size}` of eq. 3: bytes per cell across components."""
        return int(sum(arr.itemsize for arr in self._components.values()))

    @property
    def nbytes(self) -> int:
        return int(sum(arr.nbytes for arr in self._components.values()))

    def resolution_of(self, dimension: str) -> int:
        for d, r in zip(self.dimensions, self.resolutions):
            if d.name == dimension:
                return r
        raise DimensionError(f"cube has no dimension {dimension!r}")

    def axis_of(self, dimension: str) -> int:
        for axis, d in enumerate(self.dimensions):
            if d.name == dimension:
                return axis
        raise DimensionError(f"cube has no dimension {dimension!r}")

    def __repr__(self) -> str:
        res = ",".join(
            f"{d.name}@{d.level(r).name}" for d, r in zip(self.dimensions, self.resolutions)
        )
        return f"OLAPCube({self.measure!r}, {self.shape}, [{res}], {self.nbytes / 2**20:.3f} MB)"

    # -- aggregation -------------------------------------------------------

    def _slice_component(
        self, name: str, selectors: Sequence[np.ndarray | slice]
    ) -> np.ndarray:
        """Sub-cube view/selection of one component.

        ``selectors`` is one slice (contiguous range) or index array
        (code set) per axis, applied with ``np.ix_``-style outer
        indexing so arbitrary combinations work.
        """
        arr = self.component(name)
        # apply axis by axis to support mixed slice / index-array selectors
        for axis, sel in enumerate(selectors):
            if isinstance(sel, slice):
                if sel == slice(None):
                    continue
                arr = arr[(slice(None),) * axis + (sel,)]
            else:
                arr = np.take(arr, sel, axis=axis)
        return arr

    def aggregate(
        self,
        selectors: Sequence[np.ndarray | slice],
        op: AggregateOp | str = AggregateOp.SUM,
    ) -> float:
        """Aggregate the sub-cube selected by ``selectors``.

        ``selectors`` must have one entry per cube axis (``slice(None)``
        for unconstrained dimensions).  ``avg`` is computed as total sum
        over total count, i.e. the row-weighted mean — identical to
        aggregating the underlying fact rows.
        """
        op = AggregateOp(op)
        if len(selectors) != len(self.shape):
            raise QueryError(
                f"need {len(self.shape)} selectors (one per axis), got {len(selectors)}"
            )
        if op is AggregateOp.SUM:
            return float(self._slice_component("sum", selectors).sum())
        if op is AggregateOp.COUNT:
            return float(self._slice_component("count", selectors).sum())
        if op is AggregateOp.AVG:
            total = float(self._slice_component("sum", selectors).sum())
            count = float(self._slice_component("count", selectors).sum())
            return total / count if count else float("nan")
        if op is AggregateOp.MIN:
            sub = self._slice_component("min", selectors)
            counts = self._slice_component("count", selectors)
            vals = sub[counts > 0]
            return float(vals.min()) if vals.size else float("nan")
        # MAX
        sub = self._slice_component("max", selectors)
        counts = self._slice_component("count", selectors)
        vals = sub[counts > 0]
        return float(vals.max()) if vals.size else float("nan")
