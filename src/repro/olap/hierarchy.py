"""Dimension hierarchies: named resolution levels along one cube dimension.

Section III-C of the paper motivates resolutions with the time dimension:
*"the resolutions in this dimension can be: years (low resolution),
months, days, hours (high resolution)"*.  A :class:`DimensionHierarchy`
is an ordered list of :class:`Level` objects, coarsest first.  Resolution
indices ``r`` are integers, ``r = 0`` being the coarsest level; eq. 2
(``R = max(r_1 .. r_N)``) then works directly on these indices.

Levels form a strict refinement chain: every level's cardinality must be
an integer multiple of its parent's (the *fan-out*), so that coordinates
can be converted between resolutions exactly.  This mirrors how MOLAP
systems roll dense cube axes up and down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.errors import DimensionError, ResolutionError

__all__ = ["Level", "DimensionHierarchy"]


@dataclass(frozen=True)
class Level:
    """One resolution level of a dimension.

    Attributes
    ----------
    name:
        Human-readable level name (``"year"``, ``"month"``, ...).
    cardinality:
        Number of distinct coordinate values at this resolution.  This is
        the extent of the cube axis for any cube materialised at this
        level.
    """

    name: str
    cardinality: int

    def __post_init__(self) -> None:
        if not self.name:
            raise DimensionError("level name must be non-empty")
        if self.cardinality < 1:
            raise DimensionError(
                f"level {self.name!r} must have cardinality >= 1, got {self.cardinality}"
            )


class DimensionHierarchy:
    """An ordered chain of :class:`Level` objects, coarsest first.

    Parameters
    ----------
    name:
        Dimension name (``"time"``, ``"store"``, ``"item"``...).
    levels:
        Levels ordered from coarsest (resolution 0) to finest.  Each
        level's cardinality must be a strict integer multiple of the
        previous one's.

    Examples
    --------
    >>> time = DimensionHierarchy("time", [
    ...     Level("year", 8), Level("month", 96), Level("day", 2880)])
    >>> time.num_levels
    3
    >>> time.fanout(1)   # months per year
    12
    >>> time.coarsen_coord(35, from_res=1, to_res=0)  # month 35 -> year 2
    2
    """

    def __init__(self, name: str, levels: Sequence[Level]):
        if not name:
            raise DimensionError("dimension name must be non-empty")
        if not levels:
            raise DimensionError(f"dimension {name!r} needs at least one level")
        levels = list(levels)
        for coarse, fine in zip(levels, levels[1:]):
            if fine.cardinality % coarse.cardinality != 0:
                raise DimensionError(
                    f"dimension {name!r}: level {fine.name!r} (cardinality "
                    f"{fine.cardinality}) does not refine level {coarse.name!r} "
                    f"(cardinality {coarse.cardinality}) by an integer fan-out"
                )
            if fine.cardinality <= coarse.cardinality:
                raise DimensionError(
                    f"dimension {name!r}: levels must strictly increase in "
                    f"cardinality ({coarse.name!r} -> {fine.name!r})"
                )
        seen: set[str] = set()
        for lvl in levels:
            if lvl.name in seen:
                raise DimensionError(f"dimension {name!r}: duplicate level {lvl.name!r}")
            seen.add(lvl.name)
        self.name = name
        self._levels: tuple[Level, ...] = tuple(levels)

    # -- introspection ------------------------------------------------

    @property
    def levels(self) -> tuple[Level, ...]:
        """All levels, coarsest first."""
        return self._levels

    @property
    def num_levels(self) -> int:
        return len(self._levels)

    @property
    def finest_resolution(self) -> int:
        """Resolution index of the finest level."""
        return len(self._levels) - 1

    def __len__(self) -> int:
        return len(self._levels)

    def __iter__(self) -> Iterator[Level]:
        return iter(self._levels)

    def __repr__(self) -> str:
        chain = " > ".join(f"{l.name}({l.cardinality})" for l in self._levels)
        return f"DimensionHierarchy({self.name!r}: {chain})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DimensionHierarchy):
            return NotImplemented
        return self.name == other.name and self._levels == other._levels

    def __hash__(self) -> int:
        return hash((self.name, self._levels))

    # -- level lookups ------------------------------------------------

    def check_resolution(self, resolution: int) -> int:
        """Validate a resolution index and return it."""
        if not 0 <= resolution < len(self._levels):
            raise ResolutionError(
                f"dimension {self.name!r} has resolutions 0..{len(self._levels) - 1}, "
                f"got {resolution}"
            )
        return resolution

    def level(self, resolution: int) -> Level:
        """The :class:`Level` at a resolution index."""
        return self._levels[self.check_resolution(resolution)]

    def resolution_of(self, level_name: str) -> int:
        """Resolution index of a named level."""
        for r, lvl in enumerate(self._levels):
            if lvl.name == level_name:
                return r
        raise ResolutionError(f"dimension {self.name!r} has no level {level_name!r}")

    def cardinality(self, resolution: int) -> int:
        """Axis extent of a cube materialised at ``resolution``."""
        return self.level(resolution).cardinality

    def fanout(self, resolution: int) -> int:
        """Children per parent cell between ``resolution-1`` and ``resolution``.

        ``fanout(0)`` is defined as the cardinality of the coarsest level
        (fan-out from a virtual "all" root).
        """
        self.check_resolution(resolution)
        if resolution == 0:
            return self._levels[0].cardinality
        return self._levels[resolution].cardinality // self._levels[resolution - 1].cardinality

    # -- coordinate conversion ----------------------------------------

    def coarsen_coord(self, coord: int, from_res: int, to_res: int) -> int:
        """Map a coordinate from a fine resolution to a coarser one."""
        self.check_resolution(from_res)
        self.check_resolution(to_res)
        if to_res > from_res:
            raise ResolutionError(
                f"coarsen_coord: target resolution {to_res} is finer than source {from_res}"
            )
        if not 0 <= coord < self.cardinality(from_res):
            raise ResolutionError(
                f"coordinate {coord} out of range for {self.name!r} at resolution {from_res}"
            )
        factor = self.cardinality(from_res) // self.cardinality(to_res)
        return coord // factor

    def refine_range(self, lo: int, hi: int, from_res: int, to_res: int) -> tuple[int, int]:
        """Map a half-open coordinate range ``[lo, hi)`` to a finer resolution.

        A range stated at a coarse resolution covers the full block of
        children at the finer one, so the refined range is exact (no
        over- or under-coverage).
        """
        self.check_resolution(from_res)
        self.check_resolution(to_res)
        if to_res < from_res:
            raise ResolutionError(
                f"refine_range: target resolution {to_res} is coarser than source {from_res}"
            )
        if not (0 <= lo <= hi <= self.cardinality(from_res)):
            raise ResolutionError(
                f"range [{lo}, {hi}) invalid for {self.name!r} at resolution {from_res}"
            )
        factor = self.cardinality(to_res) // self.cardinality(from_res)
        return lo * factor, hi * factor

    # -- convenience constructors --------------------------------------

    @classmethod
    def from_fanouts(cls, name: str, level_names: Iterable[str], fanouts: Iterable[int]) -> "DimensionHierarchy":
        """Build a hierarchy from per-level fan-outs.

        ``fanouts[0]`` is the cardinality of the coarsest level; each
        subsequent entry multiplies the cardinality.

        >>> d = DimensionHierarchy.from_fanouts("time", ["y", "m", "d"], [8, 12, 30])
        >>> [l.cardinality for l in d]
        [8, 96, 2880]
        """
        names = list(level_names)
        fans = list(fanouts)
        if len(names) != len(fans):
            raise DimensionError("level_names and fanouts must have equal length")
        card = 1
        levels = []
        for lvl_name, fan in zip(names, fans):
            if fan < 2 and card > 0 and levels:
                raise DimensionError(f"fan-out must be >= 2 between levels, got {fan}")
            if fan < 1:
                raise DimensionError(f"fan-out must be >= 1, got {fan}")
            card *= fan
            levels.append(Level(lvl_name, card))
        return cls(name, levels)

    @classmethod
    def uniform(cls, name: str, num_levels: int, fanout: int, base: int | None = None) -> "DimensionHierarchy":
        """A hierarchy with ``num_levels`` levels and a constant fan-out.

        ``base`` overrides the coarsest level's cardinality (defaults to
        ``fanout``).  Level names are ``"L0".."L{n-1}"``.
        """
        if num_levels < 1:
            raise DimensionError("num_levels must be >= 1")
        fans = [base if base is not None else fanout] + [fanout] * (num_levels - 1)
        names = [f"L{i}" for i in range(num_levels)]
        return cls.from_fanouts(name, names, fans)
