"""The group-by lattice and smallest-parent planning.

Computing the *full cube* means computing one group-by (cuboid) per
subset of the dimension set — the lattice of Gray et al. [5].  Every
cube-construction algorithm in Section II-A plans over this lattice:

* the **smallest-parent** method computes each cuboid from its cheapest
  already-computed parent (one more dimension), yielding a spanning
  tree of the lattice;
* **PipeSort** walks the lattice level by level choosing sort orders;
* the array-based algorithm derives its *minimum size spanning tree*
  from the same structure.

:class:`CubeLattice` materialises the lattice as a :mod:`networkx`
DiGraph with size estimates per cuboid (product of the grouped
dimensions' cardinalities) and provides the smallest-parent spanning
tree used by :mod:`repro.olap.buildalgs`.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Sequence

import networkx as nx

from repro.errors import CubeError
from repro.olap.hierarchy import DimensionHierarchy

__all__ = ["Cuboid", "CubeLattice"]

#: A cuboid is identified by the frozenset of grouped dimension names;
#: the empty frozenset is the apex (the grand total, "ALL").
Cuboid = frozenset


class CubeLattice:
    """The 2^N cuboid lattice over a dimension set.

    Parameters
    ----------
    dimensions:
        Dimension hierarchies (one node per subset of their names).
    resolutions:
        Resolution per dimension used for cardinality estimates
        (defaults to each dimension's finest level).

    Raises
    ------
    CubeError
        If ``dimensions`` is empty, contains duplicate names, or
        ``resolutions`` has the wrong length or an out-of-range value.

    Attributes
    ----------
    graph:
        The lattice as a :class:`networkx.DiGraph` with one node per
        cuboid (a ``frozenset`` of dimension names, with a ``size``
        estimate attached) and an edge ``parent -> child`` wherever the
        child drops exactly one grouped dimension.
    """

    def __init__(
        self,
        dimensions: Sequence[DimensionHierarchy],
        resolutions: Sequence[int] | None = None,
    ):
        if not dimensions:
            raise CubeError("lattice needs at least one dimension")
        names = [d.name for d in dimensions]
        if len(set(names)) != len(names):
            raise CubeError(f"duplicate dimension names: {names}")
        if resolutions is None:
            resolutions = [d.finest_resolution for d in dimensions]
        if len(resolutions) != len(dimensions):
            raise CubeError("resolutions length mismatch")
        self.dimensions = tuple(dimensions)
        self._card: dict[str, int] = {
            d.name: d.cardinality(d.check_resolution(r))
            for d, r in zip(dimensions, resolutions)
        }

        self.graph = nx.DiGraph()
        all_names = tuple(names)
        for k in range(len(all_names) + 1):
            for combo in itertools.combinations(all_names, k):
                node = frozenset(combo)
                self.graph.add_node(node, size=self.cuboid_size(node))
        # edges parent -> child where child drops exactly one dimension
        for node in self.graph.nodes:
            for dim in node:
                child = node - {dim}
                self.graph.add_edge(node, child)

    # -- sizes ------------------------------------------------------------

    def cuboid_size(self, cuboid: Iterable[str]) -> int:
        """Cells in a cuboid: product of grouped-dimension cardinalities.

        Parameters
        ----------
        cuboid:
            Grouped dimension names (any iterable; the empty iterable
            is the apex, whose size is 1).

        Returns
        -------
        int
            The dense cell count at this lattice's resolutions — an
            upper bound on the occupied (sparse) cell count.

        Raises
        ------
        CubeError
            If a name is not one of this lattice's dimensions.
        """
        size = 1
        for name in cuboid:
            if name not in self._card:
                raise CubeError(f"unknown dimension {name!r} in cuboid")
            size *= self._card[name]
        return size

    @property
    def base(self) -> Cuboid:
        """The finest cuboid: all dimensions grouped."""
        return frozenset(self._card)

    @property
    def apex(self) -> Cuboid:
        """The ALL cuboid (grand total)."""
        return frozenset()

    @property
    def num_cuboids(self) -> int:
        """Number of cuboids in the lattice: ``2 ** len(dimensions)``."""
        return self.graph.number_of_nodes()

    def cuboids(self) -> list[Cuboid]:
        """All cuboids, coarsest (fewest dimensions) first.

        Returns
        -------
        list[Cuboid]
            Deterministic order: ascending dimension count, then
            sorted names.  :meth:`RollupCatalog.covers
            <repro.olap.rollup.RollupCatalog.covers>` relies on this
            order to prefer the coarsest sufficient cuboid.
        """
        return sorted(self.graph.nodes, key=lambda c: (len(c), sorted(c)))

    def parents(self, cuboid: Cuboid) -> list[Cuboid]:
        """Cuboids with exactly one more grouped dimension, name-sorted."""
        return sorted(self.graph.predecessors(cuboid), key=sorted)

    def children(self, cuboid: Cuboid) -> list[Cuboid]:
        """Cuboids with exactly one fewer grouped dimension, name-sorted."""
        return sorted(self.graph.successors(cuboid), key=sorted)

    # -- planning ------------------------------------------------------------

    def smallest_parent_tree(self) -> nx.DiGraph:
        """The smallest-parent spanning tree rooted at the base cuboid.

        Every non-base cuboid is computed from its smallest parent (by
        estimated size; name-sorted tie-break keeps plans deterministic).
        The result is the *minimum size spanning tree* of [20] for the
        uniform-cost-per-cell model.

        Returns
        -------
        networkx.DiGraph
            A spanning arborescence of :attr:`graph` rooted at
            :attr:`base`: every node keeps its ``size`` attribute and
            every non-base cuboid has exactly one incoming edge from
            the parent it should be aggregated from.
        """
        tree = nx.DiGraph()
        tree.add_nodes_from(self.graph.nodes(data=True))
        for node in self.graph.nodes:
            if node == self.base:
                continue
            parent = min(
                self.parents(node), key=lambda p: (self.cuboid_size(p), sorted(p))
            )
            tree.add_edge(parent, node)
        return tree

    def computation_order(self) -> list[tuple[Cuboid, Cuboid | None]]:
        """(cuboid, source-parent) pairs in a valid computation order.

        Returns
        -------
        list[tuple[Cuboid, Cuboid | None]]
            A topological order of the smallest-parent tree.  The base
            cuboid comes first with source ``None`` (computed from the
            fact table); every other cuboid appears after the smallest
            parent it is derived from.
        """
        tree = self.smallest_parent_tree()
        order: list[tuple[Cuboid, Cuboid | None]] = [(self.base, None)]
        for node in nx.topological_sort(tree):
            if node == self.base:
                continue
            preds = list(tree.predecessors(node))
            order.append((node, preds[0]))
        return order

    def total_tree_cost(self) -> int:
        """Sum of parent sizes along the smallest-parent tree edges.

        Returns
        -------
        int
            A proxy for the cells scanned while building the full cube
            — what the minimum-size-spanning-tree construction
            minimises.
        """
        tree = self.smallest_parent_tree()
        return sum(self.cuboid_size(parent) for parent, _ in tree.edges)

    def __repr__(self) -> str:
        return (
            f"CubeLattice({len(self.dimensions)} dims, {self.num_cuboids} cuboids, "
            f"base size {self.cuboid_size(self.base)})"
        )
