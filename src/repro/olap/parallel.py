"""Multi-threaded OLAP cube aggregation — the OpenMP substitute.

The paper's first contribution is a parallel OpenMP implementation of
CPU cube processing that raised aggregation bandwidth from ~1 GB/s
(single-threaded legacy) to 15-20 GB/s on 8 cores (Figure 3).  Python
cannot host OpenMP pragmas, but the same shared-memory fork/join
structure maps onto a thread pool over NumPy slices: NumPy reductions
release the GIL, so threads genuinely stream memory in parallel, which
is the only thing that matters for a bandwidth-bound kernel (Section
III-B: *"The processing of an OLAP cube is always constrained by memory
bandwidth and not by the performance of the CPU"*).

:class:`ParallelAggregator` partitions the selected sub-cube along its
longest axis into per-thread blocks (OpenMP's static schedule), reduces
each block independently, and combines the partials — bit-identical to
the sequential result for sum/count and exact for min/max, which the
property tests assert.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.errors import CubeError, QueryError
from repro.olap.cube import AggregateOp, OLAPCube
from repro.olap.subcube import SubcubeSpec, spec_for_query
from repro.query.model import Query

__all__ = ["ParallelAggregator", "AggregationResult"]


@dataclass(frozen=True)
class AggregationResult:
    """Outcome of one parallel aggregation.

    ``bytes_streamed`` is the sub-cube payload actually reduced — the
    numerator of the Figure-3 bandwidth metric.
    """

    value: float
    num_threads: int
    num_blocks: int
    bytes_streamed: int


def _block_slices(extent: int, n_blocks: int) -> list[slice]:
    """Contiguous near-equal blocks along one axis (static schedule)."""
    edges = np.linspace(0, extent, n_blocks + 1).astype(int)
    return [slice(int(a), int(b)) for a, b in zip(edges[:-1], edges[1:]) if b > a]


class ParallelAggregator:
    """Thread-parallel sub-cube reduction over a dense cube.

    Parameters
    ----------
    num_threads:
        Worker count (the paper's 1/4/8 OpenMP threads).  1 runs the
        sequential reference path with no executor involved.
    """

    def __init__(self, num_threads: int = 1):
        if num_threads < 1:
            raise CubeError(f"num_threads must be >= 1, got {num_threads}")
        self.num_threads = num_threads

    # -- low-level: reduce one ndarray --------------------------------------

    def reduce_array(self, array: np.ndarray, how: str = "add") -> float:
        """Parallel reduction of an ndarray (sum / min / max).

        Splits along axis 0; each worker reduces its block, partials are
        combined on the caller thread (the OpenMP ``reduction`` clause).
        """
        if how not in ("add", "min", "max"):
            raise QueryError(f"unknown reduction {how!r}")
        if array.size == 0:
            if how == "add":
                return 0.0
            raise QueryError("min/max reduction of an empty selection")
        reducer = {"add": np.sum, "min": np.min, "max": np.max}[how]
        combine = {"add": sum, "min": min, "max": max}[how]
        if self.num_threads == 1 or array.ndim == 0 or array.shape[0] < self.num_threads:
            return float(reducer(array))
        blocks = _block_slices(array.shape[0], self.num_threads)
        with ThreadPoolExecutor(max_workers=self.num_threads) as pool:
            partials = list(pool.map(lambda s: float(reducer(array[s])), blocks))
        return float(combine(partials))

    # -- sub-cube aggregation ------------------------------------------------

    def _select(self, arr: np.ndarray, spec: SubcubeSpec) -> np.ndarray:
        for axis, sel in enumerate(spec.selectors):
            if isinstance(sel, slice):
                if sel != slice(None):
                    arr = arr[(slice(None),) * axis + (sel,)]
            else:
                arr = np.take(arr, sel, axis=axis)
        return arr

    def aggregate(self, cube: OLAPCube, query: Query) -> AggregationResult:
        """Answer a query from a cube with thread-parallel reduction.

        Matches :meth:`OLAPCube.aggregate` exactly; the parallel path
        only changes *how* the bytes are streamed.
        """
        spec = spec_for_query(cube, query)
        op = AggregateOp(query.agg)
        blocks = min(self.num_threads, max(1, spec.widths[0] if spec.widths else 1))

        if op in (AggregateOp.SUM, AggregateOp.COUNT):
            name = "sum" if op is AggregateOp.SUM else "count"
            sub = self._select(cube.component(name), spec)
            value = self.reduce_array(sub, "add")
        elif op is AggregateOp.AVG:
            total = self.reduce_array(self._select(cube.component("sum"), spec), "add")
            count = self.reduce_array(self._select(cube.component("count"), spec), "add")
            value = total / count if count else float("nan")
        else:
            name = "min" if op is AggregateOp.MIN else "max"
            sub = self._select(cube.component(name), spec)
            counts = self._select(cube.component("count"), spec)
            masked = sub[counts > 0]
            if masked.size == 0:
                value = float("nan")
            else:
                value = self.reduce_array(masked, "min" if op is AggregateOp.MIN else "max")

        return AggregationResult(
            value=value,
            num_threads=self.num_threads,
            num_blocks=blocks,
            bytes_streamed=spec.nbytes,
        )

    def __repr__(self) -> str:
        return f"ParallelAggregator(num_threads={self.num_threads})"
