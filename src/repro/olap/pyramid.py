"""Multi-resolution cube pyramids (Figure 1 of the paper).

A hybrid OLAP system keeps several pre-calculated cubes of the same
measure at different resolutions: coarse cubes are tiny and answer
low-resolution queries fast; fine cubes grow geometrically until they no
longer fit in memory (level *M* in Figure 1).  Queries needing still
finer resolution are answered by the GPU from the raw fact table; the
resolution where CPU cube processing and GPU raw processing break even
is level *G*.

:class:`CubePyramid` manages the level set, implements the paper's cube
selection rule (*"it is always desirable to respond to the query using a
cube with lowest possible resolution"*, Section III-C), the analytic
sub-cube size estimate the scheduler feeds to the CPU performance model,
and the level-M / level-G computations.

Levels may be *materialised* (backed by a real
:class:`~repro.olap.cube.OLAPCube`) or *analytic* (shape and cell size
only).  The evaluation's paper-scale pyramid (~32 GB / ~500 MB / ~500 KB
/ ~4 KB cubes) is analytic; laptop-scale test pyramids are materialised
and answer real queries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Mapping, Sequence

from repro.errors import CubeError, CubeNotAvailableError
from repro.olap.cube import OLAPCube
from repro.olap.hierarchy import DimensionHierarchy
from repro.olap.subcube import answer_with_cube, spec_for_query
from repro.query.model import Query
from repro.units import bytes_to_mb, fmt_bytes

if TYPE_CHECKING:  # avoid a hard olap -> relational dependency
    from repro.relational.table import FactTable

__all__ = ["PyramidLevel", "CubePyramid", "PyramidGroup"]


@dataclass(frozen=True)
class PyramidLevel:
    """One pre-calculated cube of the pyramid.

    Attributes
    ----------
    resolutions:
        Resolution index per dimension (axis order of the pyramid).
    cell_nbytes:
        :math:`E_{size}`: bytes per cell.
    cube:
        The materialised cube, or ``None`` for an analytic level.
    """

    resolutions: tuple[int, ...]
    cell_nbytes: int
    cube: OLAPCube | None = None

    @property
    def materialised(self) -> bool:
        return self.cube is not None


class CubePyramid:
    """An ordered set of pre-calculated cubes for one measure.

    Parameters
    ----------
    dimensions:
        Dimension hierarchies shared by every level (axis order).
    levels:
        The pyramid levels; stored sorted by total size ascending.
    measure:
        The measure the cubes aggregate.
    """

    def __init__(
        self,
        dimensions: Sequence[DimensionHierarchy],
        levels: Iterable[PyramidLevel],
        measure: str = "value",
    ):
        self.dimensions = tuple(dimensions)
        self.measure = measure
        lvls = list(levels)
        if not lvls:
            raise CubeError("a pyramid needs at least one level")
        for lvl in lvls:
            if len(lvl.resolutions) != len(self.dimensions):
                raise CubeError(
                    f"level resolutions {lvl.resolutions} do not match "
                    f"{len(self.dimensions)} dimensions"
                )
            for d, r in zip(self.dimensions, lvl.resolutions):
                d.check_resolution(r)
            if lvl.cube is not None and lvl.cube.resolutions != lvl.resolutions:
                raise CubeError(
                    f"materialised cube resolutions {lvl.cube.resolutions} disagree "
                    f"with level {lvl.resolutions}"
                )
        self._levels = tuple(sorted(lvls, key=lambda l: self.level_nbytes(l)))

    # -- constructors -------------------------------------------------------

    @classmethod
    def analytic(
        cls,
        dimensions: Sequence[DimensionHierarchy],
        uniform_resolutions: Iterable[int],
        cell_nbytes: int = 16,
        measure: str = "value",
    ) -> "CubePyramid":
        """Pyramid of analytic levels at uniform resolutions.

        ``cell_nbytes`` defaults to 16 (sum + count as float64), the cell
        layout of our materialised cubes.
        """
        levels = [
            PyramidLevel(
                resolutions=tuple(min(r, d.finest_resolution) for d in dimensions),
                cell_nbytes=cell_nbytes,
            )
            for r in uniform_resolutions
        ]
        return cls(dimensions, levels, measure=measure)

    @classmethod
    def from_fact_table(
        cls,
        table: "FactTable",
        measure: str,
        uniform_resolutions: Iterable[int],
        with_minmax: bool = False,
    ) -> "CubePyramid":
        """Materialise a pyramid by building the finest cube then rolling up.

        Each coarser level is an exact roll-up of the finest requested
        level (decomposable aggregates), so the fact table is scanned
        once regardless of the number of levels — the core efficiency
        argument of the array-based algorithm [20].
        """
        dims = table.schema.dimensions
        res_list = sorted(set(uniform_resolutions))
        if not res_list:
            raise CubeError("need at least one resolution")
        finest = res_list[-1]
        base_res = tuple(min(finest, d.finest_resolution) for d in dims)
        base = OLAPCube.from_fact_table(
            table, measure, resolutions=base_res, with_minmax=with_minmax
        )
        levels = []
        for r in res_list:
            target = tuple(min(r, d.finest_resolution) for d in dims)
            cube = base if target == base_res else base.rollup(target)
            levels.append(
                PyramidLevel(resolutions=target, cell_nbytes=cube.cell_nbytes, cube=cube)
            )
        return cls(dims, levels, measure=measure)

    # -- geometry ----------------------------------------------------------

    def level_shape(self, level: PyramidLevel) -> tuple[int, ...]:
        return tuple(
            d.cardinality(r) for d, r in zip(self.dimensions, level.resolutions)
        )

    def level_nbytes(self, level: PyramidLevel) -> int:
        n = level.cell_nbytes
        for extent in self.level_shape(level):
            n *= extent
        return n

    @property
    def levels(self) -> tuple[PyramidLevel, ...]:
        """Levels sorted by size, smallest (coarsest) first."""
        return self._levels

    @property
    def total_nbytes(self) -> int:
        """Memory footprint of the whole pyramid."""
        return sum(self.level_nbytes(l) for l in self._levels)

    def __repr__(self) -> str:
        sizes = ", ".join(fmt_bytes(self.level_nbytes(l)) for l in self._levels)
        return f"CubePyramid({self.measure!r}, {len(self._levels)} levels: {sizes})"

    # -- incremental maintenance ---------------------------------------------

    def ingest(self, table: "FactTable") -> int:
        """Fold a batch of new fact rows into every materialised level.

        All levels stay mutually consistent (each is updated from the
        same batch with mergeable aggregates), so queries keep selecting
        any level freely.  Raises on analytic pyramids — there is
        nothing to maintain.  Returns the rows ingested.
        """
        analytic = [l.resolutions for l in self._levels if l.cube is None]
        if analytic:
            raise CubeError(
                f"pyramid has analytic levels {analytic}; only materialised "
                "pyramids support incremental ingest"
            )
        rows = 0
        for level in self._levels:
            assert level.cube is not None
            rows = level.cube.ingest(table, self.measure)
        return rows

    # -- cube selection (Section III-C) ---------------------------------------

    def _can_answer(self, level: PyramidLevel, query: Query) -> bool:
        res_of = {d.name: r for d, r in zip(self.dimensions, level.resolutions)}
        for cond in query.conditions:
            if cond.dimension not in res_of:
                return False
            if res_of[cond.dimension] < cond.resolution:
                return False
        for dim, res in query.group_by:
            if dim not in res_of or res_of[dim] < res:
                return False
        return True

    def select_level(self, query: Query) -> PyramidLevel:
        """The smallest pre-calculated cube able to answer ``query``.

        Implements eq. 2 + the lowest-possible-resolution rule.  Raises
        :class:`CubeNotAvailableError` when every level is too coarse —
        the paper's signal that *"the query must be answered by GPU"*.
        """
        for level in self._levels:  # smallest first
            if self._can_answer(level, query):
                return level
        raise CubeNotAvailableError(
            f"no pre-calculated cube reaches resolution {query.required_resolution} "
            f"needed by {query}"
        )

    def subcube_size_mb(self, query: Query) -> float:
        """:math:`SC_{size}` (eq. 3) for the level that would answer ``query``.

        This is the quantity the scheduler feeds to the CPU performance
        model :math:`P_{CPU}(SC_{size})`.  Works for analytic levels —
        only shapes and the condition widths are needed.
        """
        level = self.select_level(query)
        widths = []
        for d, r in zip(self.dimensions, level.resolutions):
            cond = query.condition_on(d.name)
            if cond is None:
                widths.append(d.cardinality(r))
            elif cond.is_range:
                refined = cond.at_resolution(r, d)
                assert refined.lo is not None and refined.hi is not None
                widths.append(refined.hi - refined.lo)
            elif cond.is_codes:
                factor = d.cardinality(r) // d.cardinality(cond.resolution)
                widths.append(len(set(cond.codes)) * factor)
            else:
                # text condition: the CPU resolves each literal to one
                # member coordinate natively (no GPU-style translation
                # needed, Section III-F), so the width is the literal
                # count refined to the cube's resolution.
                factor = d.cardinality(r) // d.cardinality(cond.resolution)
                widths.append(len(set(cond.text_values)) * factor)
        n = level.cell_nbytes
        for w in widths:
            n *= w
        return bytes_to_mb(n)

    def answer(self, query: Query) -> float:
        """Answer a query from the selected (materialised) level."""
        level = self.select_level(query)
        if level.cube is None:
            raise CubeError(
                f"selected level {level.resolutions} is analytic; cannot answer "
                "real queries (materialise the pyramid first)"
            )
        return answer_with_cube(level.cube, query)

    def answer_grouped(self, query: Query):
        """Answer a grouped query from the selected (materialised) level.

        ``select_level`` already honours the group-by resolutions
        (``Query.required_resolution`` includes them), so the chosen
        cube is always fine enough to coarsen onto the group grid.
        """
        from repro.groupby import groupby_with_cube

        level = self.select_level(query)
        if level.cube is None:
            raise CubeError(
                f"selected level {level.resolutions} is analytic; cannot answer "
                "real queries (materialise the pyramid first)"
            )
        return groupby_with_cube(level.cube, query)

    def scanned_bytes(self, query: Query) -> int:
        """Exact bytes the aggregation streams for ``query`` (for tests)."""
        level = self.select_level(query)
        if level.cube is None:
            return int(self.subcube_size_mb(query) * 2**20)
        return spec_for_query(level.cube, query).nbytes

    # -- levels M and G (Figure 1) ----------------------------------------

    def level_m(self, memory_budget_bytes: float) -> PyramidLevel | None:
        """Level *M*: the finest level that still fits in ``memory_budget``.

        Returns ``None`` when even the coarsest cube exceeds the budget.
        The paper pre-calculates only levels up to *M*.
        """
        fitting = [l for l in self._levels if self.level_nbytes(l) <= memory_budget_bytes]
        return fitting[-1] if fitting else None

    def level_g(
        self,
        cpu_time_of_mb: Callable[[float], float],
        gpu_query_time: float,
    ) -> PyramidLevel | None:
        """Level *G*: finest level where CPU full-cube processing still
        beats the GPU's raw-table answer time.

        ``cpu_time_of_mb`` is :math:`P_{CPU}(SC_{size})` and
        ``gpu_query_time`` the GPU estimate for the query class of
        interest.  Beyond this level the GPU answers as fast as the CPU
        (Figure 1's equilibrium), so materialising finer cubes buys
        nothing.  Returns ``None`` if the GPU wins even at the coarsest
        level.
        """
        best: PyramidLevel | None = None
        for level in self._levels:
            size_mb = bytes_to_mb(self.level_nbytes(level))
            if cpu_time_of_mb(size_mb) <= gpu_query_time:
                best = level
            else:
                break
        return best


class PyramidGroup:
    """One pyramid per measure, dispatched by the query's measure.

    A production MOLAP store pre-calculates every frequently-aggregated
    measure; a query then selects the pyramid matching its measure (a
    ``count`` query can use any of them, since all share the count
    component).  The group exposes the same estimation/answer interface
    as a single :class:`CubePyramid`, so the scheduler and the system
    model work with either transparently.
    """

    def __init__(self, pyramids: Mapping[str, CubePyramid] | Sequence[CubePyramid]):
        if not isinstance(pyramids, Mapping):
            pyramids = {p.measure: p for p in pyramids}
        if not pyramids:
            raise CubeError("a pyramid group needs at least one pyramid")
        for measure, pyramid in pyramids.items():
            if pyramid.measure != measure:
                raise CubeError(
                    f"pyramid for measure {pyramid.measure!r} registered "
                    f"under {measure!r}"
                )
        self._pyramids = dict(pyramids)

    @classmethod
    def from_fact_table(
        cls,
        table: "FactTable",
        measures: Sequence[str],
        uniform_resolutions: Iterable[int],
        with_minmax: bool = False,
    ) -> "PyramidGroup":
        resolutions = list(uniform_resolutions)
        return cls(
            {
                m: CubePyramid.from_fact_table(
                    table, m, resolutions, with_minmax=with_minmax
                )
                for m in measures
            }
        )

    # -- dispatch ----------------------------------------------------------

    @property
    def measures(self) -> tuple[str, ...]:
        return tuple(sorted(self._pyramids))

    def pyramid_for(self, query: Query) -> CubePyramid:
        """The pyramid answering ``query``'s measure.

        ``count`` queries (no measure) use an arbitrary member — counts
        are identical across measures of the same fact table.
        """
        if query.agg == "count" or not query.measures:
            return next(iter(self._pyramids.values()))
        measure = query.measures[0]
        try:
            return self._pyramids[measure]
        except KeyError:
            raise CubeNotAvailableError(
                f"no pre-calculated pyramid for measure {measure!r}; "
                f"available: {self.measures}"
            ) from None

    # -- the CubePyramid interface the system consumes ---------------------

    def select_level(self, query: Query) -> PyramidLevel:
        return self.pyramid_for(query).select_level(query)

    def subcube_size_mb(self, query: Query) -> float:
        return self.pyramid_for(query).subcube_size_mb(query)

    def answer(self, query: Query) -> float:
        return self.pyramid_for(query).answer(query)

    def answer_grouped(self, query: Query):
        return self.pyramid_for(query).answer_grouped(query)

    def ingest(self, table: "FactTable") -> int:
        rows = 0
        for pyramid in self._pyramids.values():
            rows = pyramid.ingest(table)
        return rows

    @property
    def levels(self) -> tuple[PyramidLevel, ...]:
        """Union of all member levels (for materialisation checks)."""
        return tuple(l for p in self._pyramids.values() for l in p.levels)

    @property
    def total_nbytes(self) -> int:
        return sum(p.total_nbytes for p in self._pyramids.values())

    def __repr__(self) -> str:
        return f"PyramidGroup({', '.join(self.measures)})"
