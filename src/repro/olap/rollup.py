"""Materialized-rollup answer cache: routing queries around Figure 10.

The paper routes *every* query through admission, estimation, and
dispatch (Figure 10).  At serving scale, most traffic repeats a small
set of query shapes, and for those shapes the answer is a lookup in a
pre-aggregated cuboid — microseconds, not the milliseconds of a
scheduled sub-cube scan.  This module adds that tier in front of both
planes (the simulated :class:`~repro.sim.system.HybridSystem` and the
wall-clock :class:`~repro.serve.engine.ServeEngine`):

* :class:`RollupCatalog` holds materialized cuboids of the group-by
  lattice, keyed by ``frozenset(dims)`` like every builder in
  :mod:`repro.olap.buildalgs`.  Each cuboid is a dense
  :class:`~repro.olap.cube.OLAPCube` over a *subset* of the schema's
  dimensions, built from :func:`~repro.olap.buildalgs.
  project_coordinates` with all four components (sum/count/min/max) so
  any query aggregate is answerable.
* :meth:`RollupCatalog.covers` walks the :class:`~repro.olap.lattice.
  CubeLattice` coarsest-first for an ancestor cuboid whose dimensions
  ⊇ the query's condition/group-by dimensions, whose per-dimension
  resolution is at least as fine as the query needs, and whose iceberg
  threshold pruned nothing (a pruned cuboid under-counts, so it never
  serves answers).
* :class:`RollupExecutor` answers a covered query through
  :func:`~repro.olap.subcube.answer_with_cube` — the *same* aggregation
  code path the CPU pyramid uses, so hit answers match scheduler-path
  answers exactly (property-tested in
  ``tests/properties/test_prop_rollup.py``).
* :class:`AdmissionPolicy` observes the shapes of cache misses and
  plans which cuboids to materialize: frequency × cost-saved greedy
  under a byte budget.
* :class:`RollupRouter` is the façade the engines integrate: one
  ``serve()`` call per submission under the engine lock (hit → a
  zero-cost :class:`~repro.sim.metrics.QueryRecord` on the
  :data:`ROLLUP_TARGET` pseudo-partition; miss → ``None`` and the query
  flows unchanged through Figure 10), plus ``maintain()`` for
  synchronous or :class:`~repro.serve.pool.WorkerPool`-backed
  background materialization.

Cache coherence: the catalog is exact with respect to the fact rows it
has seen.  :meth:`RollupCatalog.ingest` folds a batch into every
installed cuboid (sum/count/min/max are all mergeable) and advances the
authoritative row count; iceberg cuboids (``min_support > 1``) are
dropped instead, because pruning is not incrementally maintainable.  A
cuboid whose ``built_rows`` disagrees with the catalog's row count is
*stale* and :meth:`~RollupCatalog.covers` skips it.  Lock ordering is
engine lock → catalog lock, never the reverse (see
``docs/architecture.md``).
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Mapping

import numpy as np

from repro.errors import RollupError
from repro.olap.buildalgs import project_coordinates
from repro.olap.cube import AggregateOp, OLAPCube
from repro.olap.lattice import CubeLattice, Cuboid
from repro.olap.subcube import answer_with_cube
from repro.query.model import Query
from repro.sim.metrics import QueryRecord

if TYPE_CHECKING:  # avoid a hard olap -> relational/serve dependency
    from repro.relational.table import FactTable
    from repro.serve.pool import WorkerPool

__all__ = [
    "ROLLUP_TARGET",
    "CuboidSpec",
    "MaterialisedCuboid",
    "RollupCatalog",
    "RollupExecutor",
    "AdmissionPolicy",
    "RollupRouter",
]

#: Pseudo-partition name stamped on cache-hit records.  Deliberately not
#: a real :class:`~repro.core.partitions.PartitionQueue` name: hits live
#: outside the scheduler's books, and the ``rollup`` validation family
#: asserts they never leak into them.
ROLLUP_TARGET = "Q_ROLLUP"

#: bytes per cell of a materialized cuboid (sum/count/min/max float64)
_CELL_NBYTES = 32


@dataclass(frozen=True)
class CuboidSpec:
    """What to materialize: a cuboid of the lattice at fixed resolutions.

    Parameters
    ----------
    dims:
        Grouped dimension names.  Normalised to sorted order at
        construction (with ``resolutions`` permuted alongside), so two
        specs over the same dimensions compare equal regardless of the
        order the caller wrote them in.
    resolutions:
        Resolution index per dimension, aligned with ``dims``.
    min_support:
        Iceberg threshold (Beyer & Ramakrishnan): a cell survives iff at
        least this many fact rows fall into it.  1 keeps every cell.
    """

    dims: tuple[str, ...]
    resolutions: tuple[int, ...]
    min_support: int = 1

    def __post_init__(self) -> None:
        dims = tuple(self.dims)
        resolutions = tuple(self.resolutions)
        if not dims:
            raise RollupError("a cuboid spec needs at least one dimension")
        if len(dims) != len(set(dims)):
            raise RollupError(f"duplicate dimensions in cuboid spec: {dims}")
        if len(resolutions) != len(dims):
            raise RollupError(
                f"{len(dims)} dims but {len(resolutions)} resolutions"
            )
        if self.min_support < 1:
            raise RollupError(f"min_support must be >= 1, got {self.min_support}")
        order = sorted(range(len(dims)), key=lambda i: dims[i])
        object.__setattr__(self, "dims", tuple(dims[i] for i in order))
        object.__setattr__(
            self, "resolutions", tuple(resolutions[i] for i in order)
        )

    @property
    def key(self) -> Cuboid:
        """The lattice node this spec materialises."""
        return frozenset(self.dims)

    def resolution_of(self, dimension: str) -> int:
        try:
            return self.resolutions[self.dims.index(dimension)]
        except ValueError:
            raise RollupError(
                f"cuboid spec {self.dims} has no dimension {dimension!r}"
            ) from None


@dataclass(frozen=True)
class MaterialisedCuboid:
    """One installed catalog entry: the spec, its cube, and provenance.

    ``built_rows`` is the total fact-row count the cube aggregates; the
    catalog compares it with its authoritative row count to detect stale
    entries.  ``pruned_cells`` counts cells zeroed by the iceberg
    threshold — :meth:`RollupCatalog.covers` refuses any cuboid with
    ``pruned_cells > 0``, since a pruned cell would silently under-count
    a covering answer.
    """

    spec: CuboidSpec
    cube: OLAPCube
    built_rows: int
    pruned_cells: int = 0

    @property
    def nbytes(self) -> int:
        return self.cube.nbytes

    @property
    def num_cells(self) -> int:
        return self.cube.num_cells


class RollupCatalog:
    """Materialized cuboids keyed by ``frozenset(dims)``, with coverage.

    Parameters
    ----------
    table:
        The base fact table cuboids aggregate.  Batches added later via
        :meth:`ingest` are folded into installed cuboids and remembered,
        so later :meth:`materialise` calls stay consistent.
    measure:
        The measure every cuboid aggregates.  ``count`` queries are
        answerable regardless of measure; other aggregates must match.
    lattice:
        The cuboid lattice to walk in :meth:`covers`; defaults to the
        full lattice over the table schema's dimensions at their finest
        resolutions.

    All catalog state is guarded by one internal re-entrant lock; the
    engines call in while holding the engine lock (ordering: engine →
    catalog, never the reverse).
    """

    def __init__(
        self,
        table: "FactTable",
        measure: str,
        *,
        lattice: CubeLattice | None = None,
    ):
        self._table = table
        self.measure = measure
        self._schema = table.schema
        self._dims = {d.name: d for d in self._schema.dimensions}
        table.column(measure)  # fail fast on unknown measures
        self.lattice = (
            lattice if lattice is not None else CubeLattice(self._schema.dimensions)
        )
        #: lattice walk order: coarsest (fewest dims, smallest) first —
        #: the cheapest cuboid that covers a query answers it
        self._order = tuple(self.lattice.cuboids())
        self._lock = threading.RLock()
        self._cuboids: dict[Cuboid, MaterialisedCuboid] = {}
        self._batches: list["FactTable"] = []
        self._row_count = len(table)

    # -- introspection -----------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._cuboids)

    def __contains__(self, dims: Iterable[str]) -> bool:
        with self._lock:
            return frozenset(dims) in self._cuboids

    def get(self, dims: Iterable[str]) -> MaterialisedCuboid | None:
        with self._lock:
            return self._cuboids.get(frozenset(dims))

    def cuboids(self) -> tuple[MaterialisedCuboid, ...]:
        """Installed cuboids, coarsest first (the covers() walk order)."""
        with self._lock:
            return tuple(
                self._cuboids[key] for key in self._order if key in self._cuboids
            )

    @property
    def total_nbytes(self) -> int:
        with self._lock:
            return sum(c.nbytes for c in self._cuboids.values())

    @property
    def row_count(self) -> int:
        """Authoritative fact-row count a fresh cuboid must aggregate."""
        with self._lock:
            return self._row_count

    def estimated_nbytes(self, spec: CuboidSpec) -> int:
        """Bytes a spec would occupy once materialised (dense, 4 components)."""
        cells = 1
        for name, res in zip(spec.dims, spec.resolutions):
            dim = self._dims.get(name)
            if dim is None:
                raise RollupError(f"schema has no dimension {name!r}")
            cells *= dim.cardinality(dim.check_resolution(res))
        return cells * _CELL_NBYTES

    # -- materialization ---------------------------------------------------

    def materialise(self, spec: CuboidSpec) -> MaterialisedCuboid:
        """Build (but do not install) the cuboid a spec describes.

        Pure computation with no catalog lock held — safe to run on a
        background :class:`~repro.serve.pool.WorkerPool` worker.  The
        build aggregates the base table plus every batch ingested so
        far, then applies the iceberg threshold to the merged counts.
        """
        names = list(spec.dims)
        res_map = dict(zip(spec.dims, spec.resolutions))
        dims = [self._dims[n] if n in self._dims else None for n in names]
        for n, d in zip(names, dims):
            if d is None:
                raise RollupError(f"schema has no dimension {n!r}")
        shape = tuple(
            d.cardinality(d.check_resolution(res_map[n]))
            for n, d in zip(names, dims)
        )
        size = int(np.prod(shape))
        sums = np.zeros(size)
        counts = np.zeros(size)
        mins = np.full(size, np.inf)
        maxs = np.full(size, -np.inf)
        with self._lock:
            tables = [self._table, *self._batches]
        rows = 0
        for table in tables:
            rows += len(table)
            if len(table) == 0:
                continue
            coords = project_coordinates(table, names, res_map)
            values = np.asarray(table.column(self.measure), dtype=np.float64)
            flat = np.ravel_multi_index(tuple(coords.T), shape)
            sums += np.bincount(flat, weights=values, minlength=size)
            counts += np.bincount(flat, minlength=size).astype(np.float64)
            np.minimum.at(mins, flat, values)
            np.maximum.at(maxs, flat, values)
        pruned = 0
        if spec.min_support > 1:
            kill = (counts > 0) & (counts < spec.min_support)
            pruned = int(kill.sum())
            sums[kill] = 0.0
            counts[kill] = 0.0
            mins[kill] = np.inf
            maxs[kill] = -np.inf
        cube = OLAPCube(
            [self._dims[n] for n in names],
            [res_map[n] for n in names],
            {
                "sum": sums.reshape(shape),
                "count": counts.reshape(shape),
                "min": mins.reshape(shape),
                "max": maxs.reshape(shape),
            },
            measure=self.measure,
        )
        return MaterialisedCuboid(
            spec=spec, cube=cube, built_rows=rows, pruned_cells=pruned
        )

    def install(self, cuboid: MaterialisedCuboid) -> MaterialisedCuboid:
        """Install a built cuboid (last writer wins per lattice node)."""
        with self._lock:
            self._cuboids[cuboid.spec.key] = cuboid
        return cuboid

    def materialise_and_install(self, spec: CuboidSpec) -> MaterialisedCuboid:
        return self.install(self.materialise(spec))

    # -- coherence ---------------------------------------------------------

    def drop(self, dims: Iterable[str]) -> bool:
        """Remove one cuboid; True if it was installed."""
        with self._lock:
            return self._cuboids.pop(frozenset(dims), None) is not None

    def invalidate(self) -> int:
        """Drop every cuboid (full cache flush); returns the count dropped."""
        with self._lock:
            n = len(self._cuboids)
            self._cuboids.clear()
            return n

    def ingest(self, batch: "FactTable") -> int:
        """Fold a batch of new fact rows into the catalog, exactly.

        Sum/count/min/max are mergeable, so every plain cuboid absorbs
        the batch in place and stays exact.  Iceberg cuboids are
        dropped: a cell pruned at build time may cross the threshold
        with the new rows, and the pruned rows are gone.  The batch is
        remembered so later :meth:`materialise` calls aggregate it too.
        Returns the rows ingested.
        """
        with self._lock:
            self._batches.append(batch)
            self._row_count += len(batch)
            for key in list(self._cuboids):
                entry = self._cuboids[key]
                if entry.spec.min_support > 1:
                    del self._cuboids[key]
                    continue
                entry.cube.ingest(batch, self.measure)
                self._cuboids[key] = MaterialisedCuboid(
                    spec=entry.spec,
                    cube=entry.cube,
                    built_rows=entry.built_rows + len(batch),
                    pruned_cells=entry.pruned_cells,
                )
        return len(batch)

    def mark_stale(self, new_row_count: int) -> None:
        """Declare the fact data has grown outside the catalog's view.

        Every installed cuboid whose ``built_rows`` no longer matches
        becomes stale and stops covering queries until rebuilt — the
        fail-safe coherence path when rows were added without
        :meth:`ingest`.
        """
        with self._lock:
            if new_row_count < self._row_count:
                raise RollupError(
                    f"row count cannot shrink ({self._row_count} -> "
                    f"{new_row_count}); rebuild the catalog instead"
                )
            self._row_count = new_row_count

    def read_view(self, cuboid: MaterialisedCuboid) -> MaterialisedCuboid:
        """A stable copy of a cuboid's current state, for lock-free reads.

        :meth:`ingest` folds batches into installed cubes *in place*
        (component by component, under the catalog lock), so a reader
        holding only the entry reference can see a half-refreshed cube —
        sum already advanced, count not yet — and an ``avg`` answered
        from that state is garbage.  Answer paths therefore take one
        short lock hold here to copy the component arrays (re-fetching
        the installed entry, in case a rebuild replaced it) and then
        aggregate from the copy with no lock at all.
        """
        with self._lock:
            current = self._cuboids.get(cuboid.spec.key, cuboid)
            cube = current.cube
            frozen = OLAPCube(
                list(cube.dimensions),
                list(cube.resolutions),
                {name: np.array(cube.component(name)) for name in cube.components},
                measure=cube.measure,
            )
            return MaterialisedCuboid(
                spec=current.spec,
                cube=frozen,
                built_rows=current.built_rows,
                pruned_cells=current.pruned_cells,
            )

    # -- coverage ----------------------------------------------------------

    def _needed_resolutions(self, query: Query) -> dict[str, int] | None:
        """dimension -> minimum resolution the query needs, or None.

        ``None`` means "not answerable from any cuboid": untranslated
        text conditions (the CPU rollup path has no dictionary), a
        measure mismatch, or a dimension outside the schema.
        """
        if query.needs_translation:
            return None
        if (
            query.agg != "count"
            and query.measures
            and self.measure not in query.measures
        ):
            return None
        needed: dict[str, int] = {}
        for cond in query.conditions:
            if cond.dimension not in self._dims:
                return None
            needed[cond.dimension] = max(
                needed.get(cond.dimension, 0), cond.resolution
            )
        for dim, res in query.group_by:
            if dim not in self._dims:
                return None
            needed[dim] = max(needed.get(dim, 0), res)
        return needed

    def _entry_covers(
        self, entry: MaterialisedCuboid, needed: Mapping[str, int]
    ) -> bool:
        """Spec-level coverage of one installed cuboid, exactly:

        dims ⊇ needed, per-dimension resolution fine enough, no iceberg
        pruning, and not stale.  The brute-force check the property
        tests replay against :meth:`covers`.
        """
        if entry.pruned_cells:
            return False
        if entry.built_rows != self._row_count:
            return False
        if not set(needed) <= entry.spec.key:
            return False
        return all(
            entry.spec.resolution_of(dim) >= res for dim, res in needed.items()
        )

    def covers(self, query: Query) -> MaterialisedCuboid | None:
        """The cheapest installed cuboid that can answer ``query``.

        Walks the lattice coarsest-first (fewest dimensions, smallest
        cuboid) and returns the first installed ancestor whose
        dimensions ⊇ the query's condition/group-by dimensions at
        sufficient resolution, skipping iceberg-pruned and stale
        entries.  Returns ``None`` on a miss — the query then flows
        through Figure 10 unchanged.
        """
        needed = self._needed_resolutions(query)
        if needed is None:
            return None
        op = AggregateOp(query.agg)
        with self._lock:
            for key in self._order:
                entry = self._cuboids.get(key)
                if entry is None:
                    continue
                if not self._entry_covers(entry, needed):
                    continue
                if any(
                    comp not in entry.cube.components for comp in op.components
                ):
                    continue
                return entry
        return None

    def would_cover(self, needed: Mapping[str, int]) -> bool:
        """True when some installed cuboid covers a dim→resolution shape."""
        with self._lock:
            return any(
                self._entry_covers(entry, needed)
                for entry in self._cuboids.values()
            )

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"RollupCatalog({self.measure!r}, {len(self._cuboids)} cuboids, "
                f"{self.total_nbytes / 2**20:.3f} MB, rows={self._row_count})"
            )


class RollupExecutor:
    """Answer covered queries from the catalog's cuboids.

    The answer path is :func:`~repro.olap.subcube.answer_with_cube` on
    the cuboid's dense :class:`~repro.olap.cube.OLAPCube` — byte-for-
    byte the aggregation code the CPU pyramid path runs, which is what
    makes hit answers exactly equal to scheduler-path answers.
    """

    def __init__(self, catalog: RollupCatalog):
        self.catalog = catalog

    def answer(
        self, query: Query, cuboid: MaterialisedCuboid | None = None
    ) -> float:
        """The query's aggregate from the cache; raises on a miss."""
        if cuboid is None:
            cuboid = self.catalog.covers(query)
        if cuboid is None:
            raise RollupError(
                f"no installed cuboid covers query {query.query_id} "
                f"(conditions on {[c.dimension for c in query.conditions]})"
            )
        # aggregate from a stable copy taken under the catalog lock:
        # a concurrent ingest() mutates the installed cube's components
        # in place, and reading them mid-fold tears sum against count
        stable = self.catalog.read_view(cuboid)
        return answer_with_cube(stable.cube, query)


@dataclass
class _ShapeStats:
    """Miss statistics for one observed query shape."""

    spec: CuboidSpec
    count: int = 0
    total_cost: float = 0.0

    @property
    def mean_cost(self) -> float:
        return self.total_cost / self.count if self.count else 0.0


@dataclass
class AdmissionPolicy:
    """Decide which cuboids deserve materialization: greedy under budget.

    The router reports every cache miss via :meth:`observe` (optionally
    with the scheduler's estimated service cost for that query);
    :meth:`plan` then ranks the observed shapes by
    ``frequency × cost-saved / bytes`` and picks greedily until the byte
    budget (catalog bytes included) is exhausted.  ``min_frequency``
    keeps one-off shapes from ever being materialised.
    """

    byte_budget: int
    min_frequency: int = 2
    _shapes: dict[CuboidSpec, _ShapeStats] = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock)

    @staticmethod
    def spec_for(query: Query) -> CuboidSpec | None:
        """The cuboid shape that would cover ``query``, or None.

        Text queries and fully unconstrained queries have no useful
        shape (the former need translation first; the latter are covered
        by *any* cuboid).
        """
        if query.needs_translation:
            return None
        needed: dict[str, int] = {}
        for cond in query.conditions:
            needed[cond.dimension] = max(
                needed.get(cond.dimension, 0), cond.resolution
            )
        for dim, res in query.group_by:
            needed[dim] = max(needed.get(dim, 0), res)
        if not needed:
            return None
        names = sorted(needed)
        return CuboidSpec(
            dims=tuple(names), resolutions=tuple(needed[n] for n in names)
        )

    def observe(self, query: Query, cost: float | None = None) -> None:
        """Record one cache miss (``cost`` = estimated seconds saved)."""
        spec = self.spec_for(query)
        if spec is None:
            return
        with self._lock:
            stats = self._shapes.get(spec)
            if stats is None:
                stats = self._shapes[spec] = _ShapeStats(spec=spec)
            stats.count += 1
            if cost is not None:
                stats.total_cost += cost

    def shapes(self) -> tuple[_ShapeStats, ...]:
        """Observed shapes, most frequent first (deterministic ties)."""
        with self._lock:
            return tuple(
                sorted(
                    self._shapes.values(),
                    key=lambda s: (-s.count, s.spec.dims),
                )
            )

    def plan(
        self, catalog: RollupCatalog, limit: int | None = None
    ) -> list[CuboidSpec]:
        """Specs worth materialising now, best first, within budget."""
        with self._lock:
            candidates = [
                s for s in self._shapes.values() if s.count >= self.min_frequency
            ]

        def score(stats: _ShapeStats) -> float:
            try:
                bytes_ = catalog.estimated_nbytes(stats.spec)
            except RollupError:
                # shape references dimensions outside this catalog's
                # schema; rank it last, the pick loop skips it anyway
                return float("-inf")
            saved = stats.mean_cost if stats.total_cost > 0 else 1.0
            return stats.count * saved / max(bytes_, 1)

        ranked = sorted(candidates, key=lambda s: (-score(s), s.spec.dims))
        remaining = self.byte_budget - catalog.total_nbytes
        picked: list[CuboidSpec] = []
        for stats in ranked:
            if limit is not None and len(picked) >= limit:
                break
            needed = dict(zip(stats.spec.dims, stats.spec.resolutions))
            if catalog.would_cover(needed):
                continue
            try:
                cost = catalog.estimated_nbytes(stats.spec)
            except RollupError:
                continue  # shape references dimensions outside this schema
            if cost > remaining:
                continue
            picked.append(stats.spec)
            remaining -= cost
        return picked


class RollupRouter:
    """The cache tier façade both planes integrate.

    One :meth:`serve` call per submission, made while the engine lock is
    held (catalog locking nests inside — see the lock-ordering rules in
    ``docs/architecture.md``).  A hit returns a finished, zero-cost
    :class:`~repro.sim.metrics.QueryRecord` on :data:`ROLLUP_TARGET`; a
    miss returns ``None``, feeds the :class:`AdmissionPolicy`, and the
    query proceeds through Figure 10 untouched.

    ``metrics`` is an optional
    :class:`~repro.metrics.instrument.RollupMetrics`; the engines wire
    it when a registry is attached, following the same ``None``-guarded
    hook discipline as every other observability slot.
    """

    def __init__(
        self,
        catalog: RollupCatalog,
        policy: AdmissionPolicy | None = None,
        metrics=None,
    ):
        self.catalog = catalog
        self.executor = RollupExecutor(catalog)
        self.policy = policy
        self.metrics = metrics
        #: optional :class:`repro.obs.hooks.RollupSpans`: a hit bypasses
        #: Figure 10 entirely, so the span plane needs its own callback
        #: here (with query identity) to book the single-span trace
        self.spans = None
        self.hits = 0
        self.misses = 0
        self.materialized = 0
        #: maintenance tasks carry negative ids so they can never be
        #: confused with query ids in pool histories
        self._maintenance_ids = itertools.count(-1, -1)

    # -- the hot path ------------------------------------------------------

    def serve(
        self,
        query: Query,
        query_class: str = "default",
        now: float = 0.0,
        deadline: float | None = None,
    ) -> QueryRecord | None:
        """Try to answer one query from the cache.

        Returns a completed :class:`~repro.sim.metrics.QueryRecord`
        (``submit == finish == now``: the zero-cost semantics both
        planes share) or ``None`` on a miss.  The hit-latency histogram
        observes the *real* microseconds the projection took, separate
        from the engine's injected clock.
        """
        cuboid = self.catalog.covers(query)
        if cuboid is None:
            self.misses += 1
            if self.metrics is not None:
                self.metrics.on_miss()
            if self.policy is not None:
                self.policy.observe(query)
            return None
        t0 = time.perf_counter()
        answer = self.executor.answer(query, cuboid)
        elapsed = time.perf_counter() - t0
        self.hits += 1
        if self.metrics is not None:
            self.metrics.on_hit(elapsed)
        if self.spans is not None:
            self.spans.on_hit(
                query.query_id, now, elapsed, ",".join(sorted(cuboid.dims))
            )
        return QueryRecord(
            query_id=query.query_id,
            query_class=query_class,
            target=ROLLUP_TARGET,
            submit_time=now,
            finish_time=now,
            deadline=deadline if deadline is not None else now,
            estimated_time=0.0,
            measured_time=0.0,
            translated=False,
            answer=answer,
        )

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    # -- maintenance -------------------------------------------------------

    def _install(self, cuboid: MaterialisedCuboid) -> None:
        self.catalog.install(cuboid)
        self.materialized += 1
        if self.metrics is not None:
            self.metrics.on_materialized()

    def maintain(
        self,
        pool: "WorkerPool | None" = None,
        limit: int | None = None,
    ) -> int:
        """Materialize what the policy recommends; returns the spec count.

        With ``pool=None`` the builds run synchronously.  With a
        :class:`~repro.serve.pool.WorkerPool` (a *dedicated* maintenance
        pool — never one of the engine's partition pools, whose
        histories are audited against the scheduler books) each build
        runs on a worker thread and installs under the catalog lock from
        the pool's completion callback.
        """
        if self.policy is None:
            raise RollupError("router has no AdmissionPolicy to plan with")
        specs = self.policy.plan(self.catalog, limit=limit)
        for spec in specs:
            if pool is None:
                self._install(self.catalog.materialise(spec))
            else:
                from repro.serve.pool import ServeTask

                def on_done(task) -> None:
                    if task.error is None:
                        self._install(task.result)

                pool.submit(
                    ServeTask(
                        query_id=next(self._maintenance_ids),
                        run=lambda spec=spec: self.catalog.materialise(spec),
                        on_done=on_done,
                    )
                )
        return len(specs)
