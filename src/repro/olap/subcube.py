"""Sub-cube extraction and the eq.-3 size law.

Section III-C: the cost of answering a query from a cube is driven by
the amount of cube data that must be streamed from memory — the
*sub-cube* bounded by the query's per-dimension ranges (Figure 2, "area
of limited search").  Its size is (eq. 3)::

    SC_size [MB] = E_size * prod_i width_i / 1024^2

where ``E_size`` is the cell size in bytes and ``width_i`` is the extent
of the query's condition along dimension ``i`` (``t_i - f_i``; the paper
prints the operands in the opposite order).  Dimensions without a
condition contribute their full cardinality.

This module computes the spec (which axes, which ranges, at the cube's
resolution), the size law, and executes the aggregation against a
materialised :class:`~repro.olap.cube.OLAPCube`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import QueryError, ResolutionError
from repro.olap.cube import AggregateOp, OLAPCube
from repro.query.model import Condition, Query
from repro.units import bytes_to_mb

__all__ = [
    "SubcubeSpec",
    "subcube_size_bytes",
    "subcube_size_mb",
    "spec_for_query",
    "answer_with_cube",
]


@dataclass(frozen=True)
class SubcubeSpec:
    """The selection a query induces on a cube, one selector per axis.

    ``widths[i]`` is the number of selected coordinates on axis ``i``;
    ``selectors[i]`` is either a ``slice`` (contiguous range, possibly
    full-axis) or an integer index array (translated code set).
    """

    widths: tuple[int, ...]
    selectors: tuple[object, ...]  # slice | np.ndarray per axis
    cell_nbytes: int

    @property
    def num_cells(self) -> int:
        n = 1
        for w in self.widths:
            n *= w
        return n

    @property
    def nbytes(self) -> int:
        """Bytes of cube data the aggregation must stream (eq. 3)."""
        return self.num_cells * self.cell_nbytes

    @property
    def size_mb(self) -> float:
        """:math:`SC_{size}` in MB, the argument of the CPU perf model."""
        return bytes_to_mb(self.nbytes)


def subcube_size_bytes(widths: Sequence[int], cell_nbytes: int) -> int:
    """Eq. 3 in bytes: ``E_size * prod(widths)``."""
    if cell_nbytes <= 0:
        raise QueryError(f"cell size must be positive, got {cell_nbytes}")
    n = 1
    for w in widths:
        if w <= 0:
            raise QueryError(f"sub-cube widths must be positive, got {list(widths)}")
        n *= w
    return n * cell_nbytes


def subcube_size_mb(widths: Sequence[int], cell_nbytes: int) -> float:
    """Eq. 3 as published: sub-cube size in (binary) MB."""
    return bytes_to_mb(subcube_size_bytes(widths, cell_nbytes))


def _selector_for(
    cond: Condition | None, axis_cardinality: int, cube_resolution: int, hierarchy
) -> tuple[int, object]:
    """(width, selector) for one cube axis given an optional condition."""
    if cond is None:
        return axis_cardinality, slice(None)
    if cond.is_text:
        raise QueryError(
            f"condition on {cond.dimension!r} carries untranslated text; the CPU "
            "path must resolve members before cube aggregation"
        )
    if cond.resolution > cube_resolution:
        raise ResolutionError(
            f"condition on {cond.dimension!r} needs resolution {cond.resolution} "
            f"but the cube is materialised at {cube_resolution}"
        )
    if cond.is_range:
        refined = cond.at_resolution(cube_resolution, hierarchy)
        assert refined.lo is not None and refined.hi is not None
        return refined.hi - refined.lo, slice(refined.lo, refined.hi)
    # code set: refine each code to its block of children at cube resolution
    factor = hierarchy.cardinality(cube_resolution) // hierarchy.cardinality(cond.resolution)
    codes = np.asarray(sorted(set(cond.codes)), dtype=np.intp)
    if codes.size and (codes.min() < 0 or codes.max() >= hierarchy.cardinality(cond.resolution)):
        raise QueryError(
            f"codes out of range for {cond.dimension!r} at resolution {cond.resolution}"
        )
    if factor == 1:
        return len(codes), codes
    expanded = (codes[:, None] * factor + np.arange(factor)[None, :]).ravel()
    return len(expanded), expanded


def spec_for_query(cube: OLAPCube, query: Query) -> SubcubeSpec:
    """Build the :class:`SubcubeSpec` a query induces on ``cube``.

    Conditions stated at coarser resolutions than the cube's are refined
    exactly (coarse ranges cover whole blocks of children).  Conditions
    finer than the cube's resolution are an error — the pyramid must
    pick a sufficiently fine cube first (eq. 2).
    """
    widths: list[int] = []
    selectors: list[object] = []
    for axis, (dim, res) in enumerate(zip(cube.dimensions, cube.resolutions)):
        cond = query.condition_on(dim.name)
        width, sel = _selector_for(cond, cube.shape[axis], res, dim)
        widths.append(width)
        selectors.append(sel)
    # conditions must not reference dimensions the cube lacks
    cube_dims = {d.name for d in cube.dimensions}
    for cond in query.conditions:
        if cond.dimension not in cube_dims:
            raise QueryError(
                f"query constrains dimension {cond.dimension!r} which the cube "
                f"does not have (cube dims: {sorted(cube_dims)})"
            )
    return SubcubeSpec(
        widths=tuple(widths),
        selectors=tuple(selectors),
        cell_nbytes=cube.cell_nbytes,
    )


def answer_with_cube(cube: OLAPCube, query: Query) -> float:
    """Answer a (translated) query from a materialised cube.

    Returns the aggregated value for the query's single measure.  The
    cube must materialise that measure; multi-measure queries use one
    cube per measure at the system level.
    """
    if query.agg != "count" and query.measures and cube.measure not in query.measures:
        raise QueryError(
            f"cube aggregates measure {cube.measure!r} but query asks for "
            f"{list(query.measures)}"
        )
    spec = spec_for_query(cube, query)
    return cube.aggregate(spec.selectors, AggregateOp(query.agg))
