"""The paper's Section-IV evaluation configuration, as importable presets.

The model evaluated in the paper has (Section IV):

* a GPU fact table of ~4 GB with **3 dimensions, 4 levels each**;
* CPU cube pyramid of **~32 GB, ~500 MB, ~500 KB and ~4 KB**;
* the published performance functions (eq. 7/10/14/15/17);
* a Tesla C2070 split into 6 partitions (2x1 + 2x2 + 2x4 SM).

This module reconstructs that configuration exactly at the analytic
level.  With 8-byte cells and uniform per-dimension cardinalities
8 / 40 / 400 / 1600, the pyramid levels weigh::

    8^3    * 8 B =   4.0 KB   (~4 KB)
    40^3   * 8 B = 500.0 KB   (~500 KB)
    400^3  * 8 B = 488.3 MB   (~500 MB)
    1600^3 * 8 B =  30.5 GB   (~32 GB)

Two quantities the paper *measured* but did not publish are
reverse-engineered here so the published rates of Tables 1-3 are
reproduced (full derivation in EXPERIMENTS.md):

* per-query **CPU dispatch overhead** per implementation (query parsing,
  member resolution, OpenMP region setup) — the published f_A
  extrapolates to microseconds for KB-sized cubes, while Table 1's rates
  imply a per-query floor of several ms;
* per-query **GPU dispatch overhead** (query upload, kernel launch
  across the partition, result download, host post-processing) — the
  published partition fits alone imply >500 q/s from the device, while
  the paper's GPU-only system rate is ~64-69 q/s.

The workload mix (also unpublished) is parameterised by the same
reverse-engineering: ~74 % small-cube queries, ~20 % queries sweeping
most of the ~500 MB cube, ~6-7 % sweeping the ~32 GB cube, with text
parameters on the GPU-bound classes sized so the translation partition
saturates just below the GPU's no-translation rate (the measured ~7 %
translation overhead).
"""

from __future__ import annotations


from repro.core.baselines import CPUOnlyScheduler, GPUOnlyScheduler
from repro.core.perfmodel import (
    CPUPerfModel,
    PAPER_DICT_MODEL,
    XEON_X5667_1T_LEGACY,
    XEON_X5667_4T,
    XEON_X5667_8T,
)
from repro.errors import WorkloadError
from repro.gpu.device import SimulatedGPU, TableDescriptor
from repro.gpu.partitioning import paper_partition_scheme
from repro.gpu.timing import OverheadTiming, TESLA_C2070_TIMING
from repro.olap.hierarchy import DimensionHierarchy
from repro.olap.pyramid import CubePyramid
from repro.query.workload import QueryClass, WorkloadSpec
from repro.relational.schema import TableSchema
from repro.sim.system import SystemConfig
from repro.units import GB

__all__ = [
    "paper_dimensions",
    "customer_dimension",
    "paper_schema",
    "paper_pyramid",
    "paper_device",
    "paper_dict_lengths",
    "paper_workload",
    "paper_system_config",
    "cpu_only_config",
    "gpu_only_config",
    "CPU_DISPATCH_OVERHEAD",
    "GPU_DISPATCH_OVERHEAD",
    "TABLE3_TEXT_PROB",
    "PAPER_DICT_LENGTH",
    "PAPER_CELL_NBYTES",
    "CPU_MODELS",
]

# -- reverse-engineered constants (see module docstring / EXPERIMENTS.md) --

#: Per-query CPU dispatch overhead by OpenMP thread count.  The legacy
#: single-threaded implementation pays heavy per-query bookkeeping; the
#: parallel version amortises better but adds fork/join cost per region.
CPU_DISPATCH_OVERHEAD: dict[int, float] = {1: 0.023, 4: 0.0070, 8: 0.0055}

#: Per-query GPU dispatch overhead (host preprocessing + PCIe + launch).
GPU_DISPATCH_OVERHEAD: float = 0.072

#: Fraction of hybrid-workload queries carrying a customer-name text
#: predicate (Table 3); sized so the GPU-bound query share matches the
#: paper's GPU/total rate split (~69 of ~228 q/s).
TABLE3_TEXT_PROB: float = 0.10

#: Dictionary length per text column, sized so one translated parameter
#: costs ~15.6 ms (eq. 17) and the single translation partition
#: saturates at ~64 q/s — the paper's measured GPU-with-translation rate.
PAPER_DICT_LENGTH: int = 1_130_000

#: The three CPU implementations of Tables 1-3, with their overheads.
CPU_MODELS: dict[int, CPUPerfModel] = {
    1: XEON_X5667_1T_LEGACY.with_overhead(CPU_DISPATCH_OVERHEAD[1]),
    4: XEON_X5667_4T.with_overhead(CPU_DISPATCH_OVERHEAD[4]),
    8: XEON_X5667_8T.with_overhead(CPU_DISPATCH_OVERHEAD[8]),
}

#: Pyramid cell size: the paper's cubes store one 8-byte aggregate/cell.
PAPER_CELL_NBYTES: int = 8


def paper_dimensions() -> list[DimensionHierarchy]:
    """The three cube dimensions: 4 levels, cardinalities 8/40/400/1600."""
    return [
        DimensionHierarchy.from_fanouts(f"d{i}", ["L0", "L1", "L2", "L3"], [8, 5, 10, 4])
        for i in (1, 2, 3)
    ]


def customer_dimension(name_cardinality: int = PAPER_DICT_LENGTH) -> DimensionHierarchy:
    """The text attribute the cube does *not* materialise.

    TPC-DS fact tables carry string attributes (customer/person names,
    street names...) far beyond the three cube dimensions; queries that
    filter on them can only be answered from the GPU's raw table and
    must pass through the translation partition.  The finest level's
    cardinality *is* the dictionary length :math:`D_L` of eq. 17, so
    the translation cost is physically tied to the data.
    """
    segments = 1130
    return DimensionHierarchy.from_fanouts(
        "cust", ["segment", "name"], [segments, max(2, name_cardinality // segments)]
    )


def paper_schema(dict_length: int = PAPER_DICT_LENGTH) -> TableSchema:
    """The ~4 GB GPU fact table's schema.

    3 cube dimensions x 4 levels (12 int32 columns) + the 2-level
    customer text dimension + 4 float64 measures: 88-byte rows, so the
    ~4 GB table holds ~48.8 M rows.  Text levels: the customer name
    (dictionary of ~1.13 M entries) and d3's finest level (a small
    1600-entry dictionary) — Section III-F's multiple per-column
    dictionaries.
    """
    return TableSchema(
        dimensions=[*paper_dimensions(), customer_dimension(dict_length)],
        measures=("m1", "m2", "m3", "m4"),
        text_levels=[("cust", "name"), ("d3", "L3")],
    )


def paper_pyramid(include_32gb: bool = True) -> CubePyramid:
    """The analytic CPU cube set: ~4 KB / ~500 KB / ~500 MB [/ ~32 GB]."""
    resolutions = [0, 1, 2, 3] if include_32gb else [0, 1, 2]
    return CubePyramid.analytic(
        paper_dimensions(), resolutions, cell_nbytes=PAPER_CELL_NBYTES, measure="m1"
    )


def paper_device(
    gpu_overhead: float = GPU_DISPATCH_OVERHEAD,
    table_gb: float = 4.0,
) -> SimulatedGPU:
    """A C2070 with the ~4 GB fact table resident (analytic descriptor).

    Timing = published eq. 14-15 fits + the reverse-engineered dispatch
    overhead.
    """
    schema = paper_schema()
    rows = schema.rows_for_bytes(table_gb * GB)
    device = SimulatedGPU(
        num_sms=14,
        global_memory_bytes=6 * GB,
        timing=OverheadTiming(base=TESLA_C2070_TIMING, overhead=gpu_overhead),
        name="TeslaC2070-paper",
    )
    device.load_table(TableDescriptor(schema=schema, num_rows=rows))
    return device


def paper_dict_lengths(dict_length: int = PAPER_DICT_LENGTH) -> dict[str, int]:
    """:math:`D_L` per text column = the level's member cardinality."""
    schema = paper_schema(dict_length)
    return {
        spec.name: schema.dimension(spec.dimension).cardinality(spec.resolution)
        for spec in schema.text_columns
    }


# -- workloads ------------------------------------------------------------


def _analytic_vocabularies(schema: TableSchema) -> dict[str, list[str]]:
    """Placeholder literals for analytic text conditions.

    The analytic plane times translation from dictionary *lengths*
    (``dict_lengths``), never performing lookups, so a handful of
    literals per text column is enough to generate query text
    parameters.
    """
    return {spec.name: [f"{spec.name}#{i}" for i in range(8)] for spec in schema.text_columns}


def paper_workload(
    include_500mb: bool = True,
    include_32gb: bool = False,
    text_prob: float = 0.0,
    text_as_codes: bool = False,
    seed: int = 2012,
) -> WorkloadSpec:
    """The reverse-engineered Section-IV query mix.

    * ``small``  — resolution-1 queries answered from the KB-sized cubes
      (cost = dispatch overhead);
    * ``mid``    — resolution-2 queries sweeping most of the ~500 MB
      cube (mean sub-cube ~300 MB);
    * ``fine``   — wide resolution-3 queries over the ~32 GB cube
      (Table 2 / Table 3 only); expensive enough on the CPU
      (hundreds of ms to seconds) that the hybrid scheduler routes them
      to the GPU, whose per-query cost is column-count-bound;
    * ``text_prob`` adds a customer-name predicate to that fraction of
      queries; such queries cannot be answered from the cube pyramid
      (the customer dimension is not materialised) and therefore run on
      the GPU after translation.  ``text_as_codes`` keeps the identical
      geometry but ships pre-translated codes — the "without
      translation" arm of the ~7 % overhead measurement.
    """
    if include_32gb:
        # Table-2/3 mix: weights and coverage solved from the published
        # 9 / 11 q/s CPU-only rates (EXPERIMENTS.md).
        classes = [
            QueryClass(
                "small",
                weight=0.70,
                resolution=1,
                dims_constrained=(1, 3),
                coverage=(0.1, 0.9),
                text_prob=text_prob,
                text_as_codes=text_as_codes,
            ),
            QueryClass(
                "mid",
                weight=0.06,
                resolution=2,
                dims_constrained=(3, 3),
                coverage=(0.70, 1.0),
                text_prob=text_prob,
                text_as_codes=text_as_codes,
            ),
            QueryClass(
                "fine",
                weight=0.24,
                resolution=3,
                dims_constrained=(3, 3),
                coverage=(0.40, 0.90),
                text_prob=text_prob,
                text_as_codes=text_as_codes,
            ),
        ]
    else:
        # Table-1 mix: weights and coverage solved from the published
        # 12 / 87 / 110 q/s CPU-only rates.
        classes = [
            QueryClass(
                "small",
                weight=0.80,
                resolution=1,
                dims_constrained=(1, 3),
                coverage=(0.1, 0.9),
                text_prob=text_prob,
                text_as_codes=text_as_codes,
            )
        ]
        if include_500mb:
            classes.append(
                QueryClass(
                    "mid",
                    weight=0.20,
                    resolution=2,
                    dims_constrained=(3, 3),
                    coverage=(0.70, 1.0),
                    text_prob=text_prob,
                    text_as_codes=text_as_codes,
                )
            )
    schema = paper_schema()
    return WorkloadSpec(
        dimensions=schema.dimensions,
        classes=classes,
        measures=("m1",),
        # text predicates target the big customer-name dictionary; the
        # small d3 dictionary exists for the backend ablation but does
        # not shape the Section-IV rates
        text_levels=[("cust", "name")],
        vocabularies=_analytic_vocabularies(schema),
        range_dimensions=[d.name for d in paper_dimensions()],
        seed=seed,
    )


def paper_system_config(
    threads: int = 8,
    include_32gb: bool = True,
    scheduler_factory=None,
    time_constraint: float = 0.5,
    gpu_overhead: float = GPU_DISPATCH_OVERHEAD,
    dict_length: int = PAPER_DICT_LENGTH,
    feedback_gain: float = 1.0,
    noise_sigma: float = 0.0,
    seed: int = 2012,
) -> SystemConfig:
    """The full Section-IV system at paper scale (analytic plane).

    ``threads`` selects the CPU implementation column of Tables 1-3
    (1 = sequential legacy, 4/8 = OpenMP).
    """
    if threads not in CPU_MODELS:
        raise WorkloadError(
            f"no CPU model for {threads} threads; available: {sorted(CPU_MODELS)}"
        )
    kwargs = {}
    if scheduler_factory is not None:
        kwargs["scheduler_factory"] = scheduler_factory
    return SystemConfig(
        cpu_model=CPU_MODELS[threads],
        pyramid=paper_pyramid(include_32gb=include_32gb),
        device=paper_device(gpu_overhead=gpu_overhead),
        scheme=paper_partition_scheme(),
        dict_model=PAPER_DICT_MODEL,
        dict_lengths=paper_dict_lengths(dict_length),
        time_constraint=time_constraint,
        feedback_gain=feedback_gain,
        noise_sigma=noise_sigma,
        seed=seed,
        **kwargs,
    )


def cpu_only_config(threads: int, include_32gb: bool = False, **kwargs) -> SystemConfig:
    """Tables 1-2 configuration: CPU partition only."""
    return paper_system_config(
        threads=threads,
        include_32gb=include_32gb,
        scheduler_factory=CPUOnlyScheduler,
        **kwargs,
    )


def gpu_only_config(threads: int = 8, **kwargs) -> SystemConfig:
    """GPU-only configuration (the 64 vs 69 q/s measurement)."""
    return paper_system_config(
        threads=threads,
        include_32gb=True,
        scheduler_factory=GPUOnlyScheduler,
        **kwargs,
    )
