"""Query model, textual query language and workload generation.

- :mod:`repro.query.model` — the algebraic query objects of the paper:
  per-dimension conditions :math:`C_L(f, t, r)` (eq. 1), the resolution
  law :math:`R = \\max(r_i)` (eq. 2), and the GPU decomposition
  :math:`Q_D` (eq. 11) with its column count (eq. 12) and text-condition
  count (eq. 16).
- :mod:`repro.query.parser` — a small SQL-ish text syntax for queries.
- :mod:`repro.query.workload` — synthetic query-stream generators used by
  the evaluation benchmarks.
"""

from repro.query.model import (
    Condition,
    Query,
    QueryDecomposition,
    ColumnPredicate,
    required_resolution,
)
from repro.query.parser import parse_query
from repro.query.workload import WorkloadSpec, QueryStream, ArrivalProcess

__all__ = [
    "Condition",
    "Query",
    "QueryDecomposition",
    "ColumnPredicate",
    "required_resolution",
    "parse_query",
    "WorkloadSpec",
    "QueryStream",
    "ArrivalProcess",
]
