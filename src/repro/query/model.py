"""Algebraic query model of the paper.

A query over an N-dimensional hybrid OLAP store is (eq. 1)::

    Q( C_1(f_1, t_1, r_1), ..., C_L(f_L, t_L, r_L), ..., C_N(f_N, t_N, r_N) )

where each *condition* :math:`C_L(f, t, r)` restricts dimension ``L`` to
the half-open coordinate range ``[f, t)`` at resolution ``r``.  Not every
dimension has to be constrained.  The cube resolution needed to answer
the query is :math:`R = \\max_i r_i` (eq. 2).

For GPU processing the query is *decomposed* (eq. 11) into per-column
predicates: the pair ``(dimension L, level K)`` of each condition selects
one column of the fact table (Figure 6).  The number of columns the GPU
must scan (eq. 12) is::

    C_QD = (# filtration conditions in Q_D) + (# data columns processed)

and the number of conditions whose parameters are text and must be
dictionary-translated before GPU submission is ``CDT_QD`` (eq. 16).

Conditions carry either integer coordinates (``lo``/``hi``) or string
literals (``text_values``) that the translation subsystem
(:mod:`repro.text.translator`) resolves to integer codes.  The CPU cube
path resolves strings directly against dimension member tables; only the
GPU path requires dictionary translation (Section III-F).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Iterable, Mapping, Sequence

from repro.errors import DimensionError, QueryError, ResolutionError
from repro.olap.hierarchy import DimensionHierarchy

__all__ = [
    "Condition",
    "Query",
    "ColumnPredicate",
    "QueryDecomposition",
    "required_resolution",
    "dimension_column",
]

_query_counter = itertools.count(1)


def dimension_column(dimension: str, level_name: str) -> str:
    """Canonical fact-table column name for a (dimension, level) pair.

    The GPU fact table stores one column per dimension level (Figure 6);
    this helper fixes the naming convention used across the relational
    schema, the dictionaries and the query decomposition.
    """
    return f"{dimension}__{level_name}"


@dataclass(frozen=True)
class Condition:
    """One filtration condition :math:`C_L(f, t, r)`.

    Exactly one of the two parameter forms must be present:

    * numeric: ``lo``/``hi`` — a half-open integer coordinate range
      ``[lo, hi)`` at resolution ``resolution``;
    * textual: ``text_values`` — string literals that must be translated
      to integer codes before the condition can run on the GPU.  After
      translation the resolved codes live in ``codes``.

    ``codes`` may also be set directly for point/set predicates over
    dictionary-encoded columns.
    """

    dimension: str
    resolution: int
    lo: int | None = None
    hi: int | None = None
    text_values: tuple[str, ...] = ()
    codes: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if not self.dimension:
            raise QueryError("condition dimension must be non-empty")
        if self.resolution < 0:
            raise ResolutionError(f"condition resolution must be >= 0, got {self.resolution}")
        forms = sum(
            (
                self.lo is not None or self.hi is not None,
                bool(self.text_values),
                bool(self.codes),
            )
        )
        if forms == 0:
            raise QueryError(
                f"condition on {self.dimension!r} has no parameters "
                "(need lo/hi, text_values or codes)"
            )
        if forms > 1:
            raise QueryError(
                f"condition on {self.dimension!r} mixes parameter forms "
                "(numeric range, text values and codes are mutually exclusive)"
            )
        if self.lo is not None or self.hi is not None:
            if self.lo is None or self.hi is None:
                raise QueryError(
                    f"condition on {self.dimension!r} needs both lo and hi for a range"
                )
            if self.lo < 0 or self.hi <= self.lo:
                raise QueryError(
                    f"condition on {self.dimension!r}: invalid range [{self.lo}, {self.hi})"
                )
        # normalise mutable inputs
        if not isinstance(self.text_values, tuple):
            object.__setattr__(self, "text_values", tuple(self.text_values))
        if not isinstance(self.codes, tuple):
            object.__setattr__(self, "codes", tuple(self.codes))

    # -- predicate form -------------------------------------------------

    @property
    def is_range(self) -> bool:
        return self.lo is not None

    @property
    def is_text(self) -> bool:
        """True when the condition still carries untranslated strings (eq. 16)."""
        return bool(self.text_values)

    @property
    def is_codes(self) -> bool:
        return bool(self.codes)

    # -- geometry --------------------------------------------------------

    def width(self) -> int:
        """Number of selected coordinates at ``resolution``.

        This is the per-dimension factor of the sub-cube size law (eq. 3).
        Untranslated text conditions have no defined width; translating
        them first is the caller's job.
        """
        if self.is_range:
            assert self.lo is not None and self.hi is not None
            return self.hi - self.lo
        if self.is_codes:
            return len(set(self.codes))
        raise QueryError(
            f"condition on {self.dimension!r} is untranslated text; width is undefined"
        )

    def at_resolution(self, target: int, hierarchy: DimensionHierarchy) -> "Condition":
        """Re-express a numeric range condition at a finer resolution.

        The cube chosen to answer a query is at resolution
        ``R = max(r_i)``; conditions stated at coarser levels are refined
        to ``R`` so all conditions index the same cube (Section III-C).
        """
        if hierarchy.name != self.dimension:
            raise DimensionError(
                f"hierarchy {hierarchy.name!r} does not match condition dimension "
                f"{self.dimension!r}"
            )
        if target == self.resolution:
            return self
        if not self.is_range:
            raise QueryError(
                f"cannot refine non-range condition on {self.dimension!r}; "
                "translate text/code conditions before resolution conversion"
            )
        assert self.lo is not None and self.hi is not None
        lo, hi = hierarchy.refine_range(self.lo, self.hi, self.resolution, target)
        return replace(self, resolution=target, lo=lo, hi=hi)

    def translated(self, codes: Iterable[int]) -> "Condition":
        """Return the integer-code form of a text condition.

        Used by :class:`repro.text.translator.QueryTranslator` once the
        per-column dictionary has resolved every literal.
        """
        if not self.is_text:
            raise QueryError(f"condition on {self.dimension!r} is not a text condition")
        codes = tuple(sorted(set(codes)))
        if not codes:
            raise QueryError(
                f"translation of condition on {self.dimension!r} produced no codes"
            )
        return replace(self, text_values=(), codes=codes)

    def __str__(self) -> str:
        if self.is_range:
            param = f"[{self.lo}, {self.hi})"
        elif self.is_text:
            param = "{" + ", ".join(repr(t) for t in self.text_values) + "}"
        else:
            param = "codes{" + ", ".join(map(str, self.codes)) + "}"
        return f"C_{self.dimension}(r={self.resolution}, {param})"


def required_resolution(conditions: Iterable[Condition]) -> int:
    """Eq. 2: the cube resolution needed to answer a set of conditions.

    ``R = max(r_1, ..., r_N)``; an unconstrained query (no conditions)
    needs only the coarsest cube, resolution 0.
    """
    return max((c.resolution for c in conditions), default=0)


@dataclass(frozen=True)
class Query:
    """A complete OLAP query Q (eq. 1).

    Attributes
    ----------
    conditions:
        Filtration conditions, at most one per dimension (the paper's
        eq. 1 form).  Dimensions without a condition are unconstrained.
    measures:
        Names of the data columns to aggregate (eq. 12's
        "# of data columns processed by Q_D").
    agg:
        Aggregation operator name (``"sum"``, ``"count"``, ``"avg"``,
        ``"min"``, ``"max"``).
    group_by:
        ``(dimension, resolution)`` pairs to group the result by.  The
        paper's queries return a single aggregate (empty ``group_by``);
        grouped queries return one value per coordinate combination —
        the standard OLAP group-by this library supports as an
        extension.  A grouped dimension may also carry a condition
        (filter by month range, group by month).
    query_id:
        A unique identifier assigned at construction; used by the
        scheduler and the simulator to track queries through queues.
    """

    conditions: tuple[Condition, ...]
    measures: tuple[str, ...] = ("value",)
    agg: str = "sum"
    group_by: tuple[tuple[str, int], ...] = ()
    query_id: int = field(default_factory=lambda: next(_query_counter))

    _VALID_AGGS = frozenset({"sum", "count", "avg", "min", "max"})

    def __post_init__(self) -> None:
        if not isinstance(self.conditions, tuple):
            object.__setattr__(self, "conditions", tuple(self.conditions))
        if not isinstance(self.measures, tuple):
            object.__setattr__(self, "measures", tuple(self.measures))
        if not isinstance(self.group_by, tuple):
            object.__setattr__(self, "group_by", tuple(tuple(g) for g in self.group_by))
        if self.agg not in self._VALID_AGGS:
            raise QueryError(f"unknown aggregate {self.agg!r}; expected one of "
                             f"{sorted(self._VALID_AGGS)}")
        if not self.measures and self.agg != "count":
            raise QueryError("non-count queries must name at least one measure")
        dims = [c.dimension for c in self.conditions]
        if len(dims) != len(set(dims)):
            raise QueryError(
                "eq. 1 allows at most one condition per dimension; got duplicates in "
                f"{dims}"
            )
        group_dims = [g[0] for g in self.group_by]
        if len(group_dims) != len(set(group_dims)):
            raise QueryError(f"duplicate group-by dimensions in {group_dims}")
        for dim, res in self.group_by:
            if res < 0:
                raise ResolutionError(
                    f"group-by resolution must be >= 0, got {res} for {dim!r}"
                )

    # -- structure -------------------------------------------------------

    def condition_on(self, dimension: str) -> Condition | None:
        """The condition constraining ``dimension``, or None."""
        for c in self.conditions:
            if c.dimension == dimension:
                return c
        return None

    @property
    def required_resolution(self) -> int:
        """Eq. 2 applied to this query's conditions and group-by levels.

        Grouping by a level requires a cube at least that fine, exactly
        like filtering at it.
        """
        base = required_resolution(self.conditions)
        if self.group_by:
            base = max(base, max(res for _, res in self.group_by))
        return base

    @property
    def text_conditions(self) -> tuple[Condition, ...]:
        """Conditions still carrying string literals (the CDT set, eq. 16)."""
        return tuple(c for c in self.conditions if c.is_text)

    @property
    def needs_translation(self) -> bool:
        """True if the query cannot run on the GPU without translation."""
        return any(c.is_text for c in self.conditions)

    def with_conditions(self, conditions: Iterable[Condition]) -> "Query":
        """A copy of this query with replaced conditions (same identity)."""
        return replace(self, conditions=tuple(conditions))

    def __str__(self) -> str:
        conds = ", ".join(str(c) for c in self.conditions) or "ALL"
        return f"Q#{self.query_id}({self.agg} {','.join(self.measures)} | {conds})"


@dataclass(frozen=True)
class ColumnPredicate:
    """One entry of the decomposition Q_D (eq. 11).

    Binds a condition :math:`C_L(f, t, l_K)` to the fact-table column it
    scans.  ``is_text`` records whether the predicate's parameters need
    dictionary translation (this is what eq. 16 counts).
    """

    column: str
    condition: Condition

    @property
    def is_text(self) -> bool:
        return self.condition.is_text


@dataclass(frozen=True)
class QueryDecomposition:
    """The GPU-facing decomposition :math:`Q_D` of a query (eq. 11).

    Built by :meth:`decompose`.  Exposes exactly the quantities the
    paper's GPU performance model consumes:

    * :attr:`num_filtration_conditions` and :attr:`num_data_columns`,
      whose sum is :math:`C_{Q_D}` (eq. 12);
    * :attr:`num_text_conditions` = :math:`CDT_{Q_D}` (eq. 16);
    * :attr:`text_columns`, the per-column dictionary lookups needed for
      the :math:`T_{TRANS}` upper bound (eq. 18).
    """

    query: Query
    predicates: tuple[ColumnPredicate, ...]
    data_columns: tuple[str, ...]
    group_columns: tuple[str, ...] = ()

    @property
    def num_filtration_conditions(self) -> int:
        return len(self.predicates)

    @property
    def num_data_columns(self) -> int:
        return len(self.data_columns)

    @property
    def columns_accessed(self) -> int:
        """Eq. 12: total table columns the GPU must read for this query.

        Extended for grouped queries: group-by columns must also be
        streamed, but a column shared between a filter and a group is
        read once.
        """
        distinct = {p.column for p in self.predicates} | set(self.group_columns)
        return len(distinct) + self.num_data_columns

    @property
    def text_predicates(self) -> tuple[ColumnPredicate, ...]:
        return tuple(p for p in self.predicates if p.is_text)

    @property
    def num_text_conditions(self) -> int:
        """Eq. 16: :math:`CDT_{Q_D}`."""
        return len(self.text_predicates)

    @property
    def text_columns(self) -> tuple[str, ...]:
        """Fact-table columns whose dictionaries the translator must search."""
        return tuple(p.column for p in self.text_predicates)

    @property
    def needs_translation(self) -> bool:
        return self.num_text_conditions > 0

    def column_fraction(self, total_columns: int) -> float:
        """:math:`C_{Q_D} / C_{TOTAL}` — the abscissa of eq. 13/14."""
        if total_columns <= 0:
            raise QueryError("total_columns must be positive")
        return self.columns_accessed / total_columns


def decompose(
    query: Query,
    hierarchies: Mapping[str, DimensionHierarchy],
    data_columns: Sequence[str] | None = None,
) -> QueryDecomposition:
    """Decompose a query into per-column predicates (eq. 11).

    Parameters
    ----------
    query:
        The query to decompose.
    hierarchies:
        Dimension hierarchies of the fact table, keyed by dimension name.
        Each condition's ``(dimension, resolution)`` pair selects the
        fact-table column ``{dimension}__{level_name}``.
    data_columns:
        Measure columns the query aggregates; defaults to
        ``query.measures`` (for ``count`` queries with no measures, no
        data column is read).
    """
    predicates: list[ColumnPredicate] = []
    for cond in query.conditions:
        if cond.dimension not in hierarchies:
            raise DimensionError(
                f"query condition references unknown dimension {cond.dimension!r}; "
                f"known: {sorted(hierarchies)}"
            )
        hierarchy = hierarchies[cond.dimension]
        hierarchy.check_resolution(cond.resolution)
        level = hierarchy.level(cond.resolution)
        predicates.append(
            ColumnPredicate(column=dimension_column(cond.dimension, level.name), condition=cond)
        )
    group_columns: list[str] = []
    for dim, res in query.group_by:
        if dim not in hierarchies:
            raise DimensionError(
                f"group-by references unknown dimension {dim!r}; known: "
                f"{sorted(hierarchies)}"
            )
        hierarchy = hierarchies[dim]
        hierarchy.check_resolution(res)
        group_columns.append(dimension_column(dim, hierarchy.level(res).name))
    if data_columns is None:
        data_columns = query.measures if query.agg != "count" else ()
    return QueryDecomposition(
        query=query,
        predicates=tuple(predicates),
        data_columns=tuple(data_columns),
        group_columns=tuple(group_columns),
    )


# re-export decompose through QueryDecomposition for discoverability
QueryDecomposition.decompose = staticmethod(decompose)  # type: ignore[attr-defined]
