"""A small textual query language for the hybrid OLAP system.

The paper's queries are structural objects (eq. 1); real deployments
receive them as text.  This parser accepts a compact SQL-flavoured
syntax and produces :class:`~repro.query.model.Query` objects::

    SELECT sum(sales_price)
    WHERE date.month IN [2, 10)
      AND store.city = 'Rome'
      AND item.brand IN ('BrandA', 'BrandB')

Grammar (case-insensitive keywords)::

    query      := SELECT agg [ BY column (',' column)* ] [ WHERE conjunct ]
    agg        := NAME '(' measures ')'            -- sum/count/avg/min/max
    measures   := '*' | NAME (',' NAME)*
    conjunct   := condition ( AND condition )*
    condition  := column comparator
    column     := DIM '.' LEVEL
    comparator := '=' value
                | IN '[' INT ',' INT ')'           -- half-open numeric range
                | BETWEEN INT AND INT              -- inclusive numeric range
                | IN '(' value (',' value)* ')'    -- value set
    value      := INT | STRING

String literals become untranslated text conditions (the GPU path will
dictionary-translate them); integer literals are coordinates at the
named level.  Level names are resolved to resolution indices against the
dimension hierarchies supplied by the caller, so the parser rejects
unknown dimensions/levels at parse time.
"""

from __future__ import annotations

import re
from typing import Mapping, NamedTuple

from repro.errors import ParseError
from repro.olap.hierarchy import DimensionHierarchy
from repro.query.model import Condition, Query

__all__ = ["parse_query", "tokenize"]


class Token(NamedTuple):
    kind: str
    value: str
    pos: int


_TOKEN_RE = re.compile(
    r"""
    (?P<WS>\s+)
  | (?P<STRING>'(?:[^'\\]|\\.)*')
  | (?P<INT>\d+)
  | (?P<NAME>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<OP>[()\[\],.=*])
    """,
    re.VERBOSE,
)

_KEYWORDS = {"select", "where", "and", "in", "between", "by"}


def tokenize(text: str) -> list[Token]:
    """Lexer; raises :class:`ParseError` on any unrecognised character."""
    tokens: list[Token] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if m is None:
            raise ParseError(f"unexpected character {text[pos]!r} at position {pos}")
        kind = m.lastgroup
        assert kind is not None
        value = m.group()
        if kind != "WS":
            if kind == "NAME" and value.lower() in _KEYWORDS:
                kind = value.lower().upper()  # keyword token kinds: SELECT, WHERE...
            tokens.append(Token(kind, value, pos))
        pos = m.end()
    tokens.append(Token("EOF", "", len(text)))
    return tokens


class _Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, tokens: list[Token], hierarchies: Mapping[str, DimensionHierarchy]):
        self._tokens = tokens
        self._i = 0
        self._hier = hierarchies

    # -- token plumbing --------------------------------------------------

    @property
    def _cur(self) -> Token:
        return self._tokens[self._i]

    def _advance(self) -> Token:
        tok = self._cur
        self._i += 1
        return tok

    def _expect(self, kind: str, value: str | None = None) -> Token:
        tok = self._cur
        if tok.kind != kind or (value is not None and tok.value != value):
            want = f"{kind} {value!r}" if value else kind
            raise ParseError(
                f"expected {want} at position {tok.pos}, got {tok.kind} {tok.value!r}"
            )
        return self._advance()

    def _accept(self, kind: str, value: str | None = None) -> Token | None:
        tok = self._cur
        if tok.kind == kind and (value is None or tok.value == value):
            return self._advance()
        return None

    # -- grammar ------------------------------------------------------------

    def parse(self) -> Query:
        self._expect("SELECT")
        agg, measures = self._agg()
        group_by: list[tuple[str, int]] = []
        if self._accept("BY"):
            group_by.append(self._column())
            while self._accept("OP", ","):
                group_by.append(self._column())
        conditions: list[Condition] = []
        if self._accept("WHERE"):
            conditions.append(self._condition())
            while self._accept("AND"):
                conditions.append(self._condition())
        self._expect("EOF")
        return Query(
            conditions=tuple(conditions),
            measures=measures,
            agg=agg,
            group_by=tuple(group_by),
        )

    def _agg(self) -> tuple[str, tuple[str, ...]]:
        name = self._expect("NAME").value.lower()
        self._expect("OP", "(")
        measures: list[str] = []
        if self._accept("OP", "*"):
            if name != "count":
                raise ParseError(f"'*' is only valid for count(), not {name}()")
        else:
            measures.append(self._expect("NAME").value)
            while self._accept("OP", ","):
                measures.append(self._expect("NAME").value)
        self._expect("OP", ")")
        if name == "count":
            measures = []
        return name, tuple(measures)

    def _column(self) -> tuple[str, int]:
        dim_tok = self._expect("NAME")
        self._expect("OP", ".")
        level_tok = self._expect("NAME")
        dim = dim_tok.value
        if dim not in self._hier:
            raise ParseError(
                f"unknown dimension {dim!r} at position {dim_tok.pos}; "
                f"known: {sorted(self._hier)}"
            )
        hierarchy = self._hier[dim]
        try:
            resolution = hierarchy.resolution_of(level_tok.value)
        except Exception:
            raise ParseError(
                f"dimension {dim!r} has no level {level_tok.value!r}; levels: "
                f"{[l.name for l in hierarchy.levels]}"
            ) from None
        return dim, resolution

    def _value(self) -> int | str:
        tok = self._cur
        if tok.kind == "INT":
            self._advance()
            return int(tok.value)
        if tok.kind == "STRING":
            self._advance()
            return tok.value[1:-1].replace("\\'", "'")
        raise ParseError(f"expected a value at position {tok.pos}, got {tok.value!r}")

    def _condition(self) -> Condition:
        dim, resolution = self._column()
        if self._accept("OP", "="):
            value = self._value()
            if isinstance(value, str):
                return Condition(dim, resolution, text_values=(value,))
            return Condition(dim, resolution, lo=value, hi=value + 1)
        if self._accept("BETWEEN"):
            lo = self._expect("INT")
            self._expect("AND")
            hi = self._expect("INT")
            return Condition(dim, resolution, lo=int(lo.value), hi=int(hi.value) + 1)
        if self._accept("IN"):
            if self._accept("OP", "["):
                lo = self._expect("INT")
                self._expect("OP", ",")
                hi = self._expect("INT")
                self._expect("OP", ")")
                return Condition(dim, resolution, lo=int(lo.value), hi=int(hi.value))
            self._expect("OP", "(")
            values = [self._value()]
            while self._accept("OP", ","):
                values.append(self._value())
            self._expect("OP", ")")
            kinds = {type(v) for v in values}
            if kinds == {str}:
                return Condition(dim, resolution, text_values=tuple(values))  # type: ignore[arg-type]
            if kinds == {int}:
                return Condition(dim, resolution, codes=tuple(values))  # type: ignore[arg-type]
            raise ParseError(
                f"value set for {dim!r} mixes strings and integers: {values}"
            )
        tok = self._cur
        raise ParseError(
            f"expected '=', 'IN' or 'BETWEEN' at position {tok.pos}, got {tok.value!r}"
        )


def parse_query(text: str, hierarchies: Mapping[str, DimensionHierarchy]) -> Query:
    """Parse the textual query language into a :class:`Query`.

    >>> from repro.olap.hierarchy import DimensionHierarchy
    >>> time = DimensionHierarchy.from_fanouts("date", ["year", "month"], [4, 12])
    >>> q = parse_query("SELECT sum(value) WHERE date.month IN [3, 9)", {"date": time})
    >>> str(q.conditions[0])
    'C_date(r=1, [3, 9))'
    """
    return _Parser(tokenize(text), hierarchies).parse()
