"""Synthetic query workloads.

The paper evaluates its system with a stream of queries of mixed
resolution and selectivity (Section IV): some answerable from tiny
cubes, some sweeping the ~500 MB or ~32 GB cubes, some requiring the
GPU's raw fact table, and a fraction carrying string parameters that
must be dictionary-translated.  The exact mix is not published, so the
workload is parameterised by :class:`QueryClass` weights and reverse-
engineered per experiment (see EXPERIMENTS.md).

A :class:`WorkloadSpec` draws queries from weighted classes; an
:class:`ArrivalProcess` assigns submission times (closed/saturated,
Poisson, or uniform-rate), producing a :class:`QueryStream` the
discrete-event system consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping, NamedTuple, Sequence

import numpy as np

from repro.errors import WorkloadError
from repro.olap.hierarchy import DimensionHierarchy
from repro.query.model import Condition, Query, dimension_column

__all__ = ["QueryClass", "WorkloadSpec", "ArrivalProcess", "QueryStream", "TimedQuery"]


@dataclass(frozen=True)
class QueryClass:
    """One stratum of the query mix.

    Attributes
    ----------
    name:
        Label for reporting (per-class throughput breakdowns).
    weight:
        Relative frequency of this class in the mix.
    resolution:
        Resolution of the finest condition the class generates — this
        is what eq. 2 evaluates to and thus which pyramid level (or the
        GPU) answers the query.
    dims_constrained:
        ``(min, max)`` number of dimensions to constrain (inclusive).
    coverage:
        ``(lo, hi)`` fraction of each constrained axis covered by the
        condition's range; drawn uniformly per condition.  Coverage 1.0
        with all dims constrained is a full-cube scan.
    text_prob:
        Probability that the query carries an *additional* condition on
        a text level (an IN-list of string literals).  Text predicates
        model filters on string attributes — city names, item names,
        customer names — and are what forces GPU-bound queries through
        the translation partition.  When the text level's dimension is
        absent from the CPU's cube pyramid (e.g. a customer attribute
        the cube does not materialise), such queries become GPU-only.
    text_values_per_condition:
        Number of literals in a generated text condition (an IN-list).
    text_as_codes:
        Emit text conditions as pre-translated integer code sets instead
        of raw strings.  Used by the translation-overhead experiment to
        compare identical query geometry with and without translation
        work (Section IV's ~64 vs ~69 q/s measurement).
    aggs:
        Aggregate operators to draw from, uniformly.
    """

    name: str
    weight: float
    resolution: int
    dims_constrained: tuple[int, int] = (1, 3)
    coverage: tuple[float, float] = (0.1, 0.5)
    text_prob: float = 0.0
    text_values_per_condition: int = 1
    text_as_codes: bool = False
    aggs: tuple[str, ...] = ("sum",)

    def __post_init__(self) -> None:
        if self.weight < 0:
            raise WorkloadError(f"class {self.name!r}: weight must be >= 0")
        if self.resolution < 0:
            raise WorkloadError(f"class {self.name!r}: resolution must be >= 0")
        lo, hi = self.dims_constrained
        if not (0 <= lo <= hi):
            raise WorkloadError(f"class {self.name!r}: bad dims_constrained {self.dims_constrained}")
        clo, chi = self.coverage
        if not (0.0 < clo <= chi <= 1.0):
            raise WorkloadError(f"class {self.name!r}: coverage must be in (0, 1], got {self.coverage}")
        if not 0.0 <= self.text_prob <= 1.0:
            raise WorkloadError(f"class {self.name!r}: text_prob must be in [0, 1]")
        if self.text_values_per_condition < 1:
            raise WorkloadError(f"class {self.name!r}: need >= 1 text value per condition")


class TimedQuery(NamedTuple):
    """A query with its submission time (seconds from stream start)."""

    time: float
    query: Query
    query_class: str


@dataclass(frozen=True)
class ArrivalProcess:
    """Submission-time process for a query stream.

    ``kind``:

    * ``"closed"`` — all queries available at t=0 (saturation test; the
      throughput of a saturated system is what Tables 1-3 report);
    * ``"poisson"`` — Poisson arrivals at ``rate`` queries/second;
    * ``"uniform"`` — deterministic arrivals every ``1/rate`` seconds.
    """

    kind: str = "closed"
    rate: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in ("closed", "poisson", "uniform"):
            raise WorkloadError(f"unknown arrival kind {self.kind!r}")
        if self.kind != "closed" and self.rate <= 0:
            raise WorkloadError(f"{self.kind} arrivals need a positive rate")

    def times(self, n: int, rng: np.random.Generator) -> np.ndarray:
        if n < 0:
            raise WorkloadError("n must be >= 0")
        if self.kind == "closed":
            return np.zeros(n)
        if self.kind == "uniform":
            return np.arange(n) / self.rate
        gaps = rng.exponential(1.0 / self.rate, size=n)
        return np.cumsum(gaps) - gaps[0] if n else np.zeros(0)


class QueryStream:
    """A materialised sequence of :class:`TimedQuery`."""

    def __init__(self, entries: Sequence[TimedQuery]):
        self._entries = tuple(sorted(entries, key=lambda e: e.time))

    def __iter__(self) -> Iterator[TimedQuery]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __getitem__(self, i: int) -> TimedQuery:
        return self._entries[i]

    @property
    def queries(self) -> tuple[Query, ...]:
        return tuple(e.query for e in self._entries)

    def class_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for e in self._entries:
            counts[e.query_class] = counts.get(e.query_class, 0) + 1
        return counts


class WorkloadSpec:
    """Weighted-mix query generator.

    Parameters
    ----------
    dimensions:
        The dimension hierarchies queries range over.
    classes:
        The strata of the mix (weights need not sum to 1).
    measures:
        Measure names to aggregate (one drawn per query).
    text_levels:
        ``(dimension, level_name)`` pairs that may carry string literals.
    vocabularies:
        ``column -> vocabulary`` for generating *valid* string literals
        (keys follow :func:`~repro.query.model.dimension_column`).
        Classes with ``text_prob > 0`` require vocabularies for at least
        one text level.
    range_dimensions:
        Dimension names eligible for range conditions; defaults to all.
        Restricting this keeps text-only attributes (e.g. a customer
        dimension absent from the cube pyramid) out of the structural
        part of the mix.
    seed:
        RNG seed; streams are fully deterministic given (spec, n, seed).
    """

    def __init__(
        self,
        dimensions: Sequence[DimensionHierarchy],
        classes: Sequence[QueryClass],
        measures: Sequence[str] = ("value",),
        text_levels: Sequence[tuple[str, str]] = (),
        vocabularies: Mapping[str, Sequence[str]] | None = None,
        range_dimensions: Sequence[str] | None = None,
        seed: int = 2012,
    ):
        if not dimensions:
            raise WorkloadError("workload needs at least one dimension")
        if not classes:
            raise WorkloadError("workload needs at least one query class")
        total_weight = sum(c.weight for c in classes)
        if total_weight <= 0:
            raise WorkloadError("query class weights must sum to > 0")
        if not measures:
            raise WorkloadError("workload needs at least one measure")
        self.dimensions = tuple(dimensions)
        self._by_name = {d.name: d for d in dimensions}
        self.classes = tuple(classes)
        self.measures = tuple(measures)
        self.text_levels = tuple(text_levels)
        self.vocabularies = dict(vocabularies or {})
        self.seed = seed
        self._probs = np.array([c.weight for c in classes], dtype=float) / total_weight
        if range_dimensions is None:
            self.range_dimensions: tuple[DimensionHierarchy, ...] = self.dimensions
        else:
            unknown = [n for n in range_dimensions if n not in self._by_name]
            if unknown:
                raise WorkloadError(f"unknown range dimensions: {unknown}")
            self.range_dimensions = tuple(self._by_name[n] for n in range_dimensions)

        # (dimension, resolution, column) triples available for text
        # conditions: declared text levels that have a vocabulary.
        self._text_choices: list[tuple[str, int, str]] = []
        for dim_name, level_name in self.text_levels:
            d = self._by_name.get(dim_name)
            if d is None:
                continue
            column = dimension_column(dim_name, level_name)
            if column in self.vocabularies:
                self._text_choices.append((dim_name, d.resolution_of(level_name), column))

        for cls in classes:
            deep_enough = [
                d for d in self.range_dimensions if d.finest_resolution >= cls.resolution
            ]
            if cls.dims_constrained[0] > 0 and not deep_enough:
                raise WorkloadError(
                    f"class {cls.name!r} needs resolution {cls.resolution} but no "
                    "range dimension is that deep"
                )
            if cls.text_prob > 0 and not self._text_choices:
                raise WorkloadError(
                    f"class {cls.name!r} has text_prob > 0 but no text level has a "
                    "vocabulary"
                )

    def _range_condition(
        self, d: DimensionHierarchy, resolution: int, cls: QueryClass, rng: np.random.Generator
    ) -> Condition:
        card = d.cardinality(resolution)
        frac = rng.uniform(*cls.coverage)
        width = int(np.clip(round(frac * card), 1, card))
        lo = int(rng.integers(0, card - width + 1))
        return Condition(d.name, resolution, lo=lo, hi=lo + width)

    def _text_condition(
        self,
        dim_name: str,
        resolution: int,
        column: str,
        cls: QueryClass,
        rng: np.random.Generator,
    ) -> Condition:
        vocab = self.vocabularies[column]
        k = min(cls.text_values_per_condition, len(vocab))
        codes = rng.choice(len(vocab), size=k, replace=False)
        if cls.text_as_codes:
            return Condition(dim_name, resolution, codes=tuple(int(c) for c in codes))
        return Condition(
            dim_name, resolution, text_values=tuple(vocab[int(c)] for c in codes)
        )

    # -- generation -----------------------------------------------------------

    def make_query(self, cls: QueryClass, rng: np.random.Generator) -> Query:
        """Draw one query from a class.

        Range conditions: the first constrained dimension carries the
        class resolution (so eq. 2 yields exactly ``cls.resolution``),
        the rest draw a coarser-or-equal level.  With probability
        ``cls.text_prob`` an extra text condition is appended on a text
        level of a dimension not already constrained.
        """
        eligible = [
            d for d in self.range_dimensions if d.finest_resolution >= cls.resolution
        ]
        lo, hi = cls.dims_constrained
        hi = min(hi, len(self.range_dimensions))
        n_dims = int(rng.integers(lo, hi + 1)) if hi >= lo else lo
        n_dims = max(0, min(n_dims, len(self.range_dimensions)))

        conditions: list[Condition] = []
        constrained: set[str] = set()
        if n_dims:
            # first condition: a dimension deep enough for the class
            # resolution, carrying exactly that resolution
            first = eligible[int(rng.integers(len(eligible)))]
            conditions.append(self._range_condition(first, cls.resolution, cls, rng))
            constrained.add(first.name)
            remaining = [d for d in self.range_dimensions if d.name != first.name]
            if n_dims > 1 and remaining:
                picks = rng.choice(
                    len(remaining), size=min(n_dims - 1, len(remaining)), replace=False
                )
                for idx in picks:
                    d = remaining[int(idx)]
                    resolution = min(
                        int(rng.integers(0, cls.resolution + 1)), d.finest_resolution
                    )
                    conditions.append(self._range_condition(d, resolution, cls, rng))
                    constrained.add(d.name)

        if cls.text_prob > 0 and rng.random() < cls.text_prob:
            free = [
                (dn, res, col)
                for dn, res, col in self._text_choices
                if dn not in constrained
            ]
            if free:
                dn, res, col = free[int(rng.integers(len(free)))]
                conditions.append(self._text_condition(dn, res, col, cls, rng))

        agg = cls.aggs[int(rng.integers(len(cls.aggs)))]
        measure = self.measures[int(rng.integers(len(self.measures)))]
        measures = () if agg == "count" else (measure,)
        return Query(conditions=tuple(conditions), measures=measures, agg=agg)

    def generate(self, n: int, arrivals: ArrivalProcess | None = None) -> QueryStream:
        """Generate a deterministic stream of ``n`` timed queries."""
        if n < 0:
            raise WorkloadError("n must be >= 0")
        rng = np.random.default_rng(self.seed)
        arrivals = arrivals or ArrivalProcess("closed")
        times = arrivals.times(n, rng)
        class_idx = rng.choice(len(self.classes), size=n, p=self._probs)
        entries = []
        for t, ci in zip(times, class_idx):
            cls = self.classes[int(ci)]
            entries.append(TimedQuery(float(t), self.make_query(cls, rng), cls.name))
        return QueryStream(entries)
