"""Relational substrate: columnar fact tables and synthetic data.

The GPU side of the hybrid system answers queries against a relational
fact table held in GPU global memory as one flat 1-D array of columns
(Figure 6 of the paper).  This package provides:

- :mod:`repro.relational.schema` — table schemas binding dimension
  hierarchies, per-level columns, text columns and measures;
- :mod:`repro.relational.table` — the columnar :class:`FactTable` with
  the paper's 1-D packed layout and a reference scan engine;
- :mod:`repro.relational.generator` — a TPC-DS-flavoured synthetic data
  generator (the paper evaluates translation on TPC-DS fact tables,
  which are not redistributable; see DESIGN.md §2).
"""

from repro.relational.schema import TableSchema, ColumnSpec
from repro.relational.table import FactTable, ScanResult
from repro.relational.generator import SyntheticDataset, generate_dataset, tpcds_like_schema

__all__ = [
    "TableSchema",
    "ColumnSpec",
    "FactTable",
    "ScanResult",
    "SyntheticDataset",
    "generate_dataset",
    "tpcds_like_schema",
]
