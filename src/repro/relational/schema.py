"""Fact-table schemas.

A fact table (Figure 6) has two kinds of columns:

* **dimension columns** — one per (dimension, level) pair, holding the
  integer coordinate of the row at that resolution.  Some levels are
  *text levels*: their raw values are strings (street names, city names,
  person names...) that are dictionary-encoded to integers at database
  build time (Section III-F), so the stored column is still integral.
* **data columns** — the measures that queries aggregate.

The schema also fixes :math:`C_{TOTAL}`, the total column count that
normalises the GPU performance model's abscissa :math:`C/C_{TOTAL}`
(eq. 13-14).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping, Sequence

import numpy as np

from repro.errors import DimensionError, SchemaError
from repro.olap.hierarchy import DimensionHierarchy
from repro.query.model import dimension_column

__all__ = ["ColumnSpec", "TableSchema"]


@dataclass(frozen=True)
class ColumnSpec:
    """Static description of one fact-table column.

    Attributes
    ----------
    name:
        Column name (``"time__month"`` for dimension columns, plain
        measure name for data columns).
    kind:
        ``"dimension"`` or ``"measure"``.
    dtype:
        NumPy dtype of the stored values.  Dimension columns are integer
        (possibly dictionary codes); measures default to float64.
    dimension, level_name, resolution:
        For dimension columns, the hierarchy coordinates; ``None``/-1 for
        measures.
    is_text:
        True when the raw values of this column are strings and the
        stored integers are dictionary codes.
    """

    name: str
    kind: str
    dtype: np.dtype
    dimension: str | None = None
    level_name: str | None = None
    resolution: int = -1
    is_text: bool = False

    def __post_init__(self) -> None:
        if self.kind not in ("dimension", "measure"):
            raise SchemaError(f"column {self.name!r}: unknown kind {self.kind!r}")
        if self.kind == "dimension" and (self.dimension is None or self.level_name is None):
            raise SchemaError(f"dimension column {self.name!r} missing hierarchy binding")
        if self.kind == "measure" and self.is_text:
            raise SchemaError(f"measure column {self.name!r} cannot be a text column")
        object.__setattr__(self, "dtype", np.dtype(self.dtype))


class TableSchema:
    """Schema of a fact table: hierarchies + text levels + measures.

    Parameters
    ----------
    dimensions:
        Dimension hierarchies; one dimension column is created per level.
    measures:
        Measure column names (stored as float64).
    text_levels:
        ``(dimension, level_name)`` pairs whose raw values are strings.
    dim_dtype:
        Integer dtype for dimension columns (default int32, matching the
        paper's GPU-friendly layout).
    """

    def __init__(
        self,
        dimensions: Sequence[DimensionHierarchy],
        measures: Sequence[str] = ("value",),
        text_levels: Sequence[tuple[str, str]] = (),
        dim_dtype: np.dtype | str = np.int32,
    ):
        if not dimensions:
            raise SchemaError("a fact table needs at least one dimension")
        names = [d.name for d in dimensions]
        if len(names) != len(set(names)):
            raise SchemaError(f"duplicate dimension names: {names}")
        if not measures and True:
            # count-only tables are permitted, but warn via empty tuple
            measures = ()
        if len(set(measures)) != len(measures):
            raise SchemaError(f"duplicate measure names: {list(measures)}")
        self._dimensions: tuple[DimensionHierarchy, ...] = tuple(dimensions)
        self._by_name: dict[str, DimensionHierarchy] = {d.name: d for d in dimensions}
        self._measures: tuple[str, ...] = tuple(measures)
        self._dim_dtype = np.dtype(dim_dtype)

        text_set = set()
        for dim, level in text_levels:
            if dim not in self._by_name:
                raise SchemaError(f"text level references unknown dimension {dim!r}")
            self._by_name[dim].resolution_of(level)  # raises if unknown
            text_set.add((dim, level))
        self._text_levels: frozenset[tuple[str, str]] = frozenset(text_set)

        # Materialise the ordered column list: dimension columns first
        # (grouped by dimension, coarse->fine, mirroring Figure 6), then
        # measures.
        cols: list[ColumnSpec] = []
        for d in self._dimensions:
            for r, level in enumerate(d.levels):
                cols.append(
                    ColumnSpec(
                        name=dimension_column(d.name, level.name),
                        kind="dimension",
                        dtype=self._dim_dtype,
                        dimension=d.name,
                        level_name=level.name,
                        resolution=r,
                        is_text=(d.name, level.name) in self._text_levels,
                    )
                )
        for m in self._measures:
            if m in {c.name for c in cols}:
                raise SchemaError(f"measure {m!r} collides with a dimension column name")
            cols.append(ColumnSpec(name=m, kind="measure", dtype=np.dtype(np.float64)))
        self._columns: tuple[ColumnSpec, ...] = tuple(cols)
        self._columns_by_name: dict[str, ColumnSpec] = {c.name: c for c in cols}

    # -- dimensions ------------------------------------------------------

    @property
    def dimensions(self) -> tuple[DimensionHierarchy, ...]:
        return self._dimensions

    @property
    def hierarchies(self) -> Mapping[str, DimensionHierarchy]:
        """Dimension hierarchies keyed by name (for query decomposition)."""
        return dict(self._by_name)

    def dimension(self, name: str) -> DimensionHierarchy:
        try:
            return self._by_name[name]
        except KeyError:
            raise DimensionError(
                f"unknown dimension {name!r}; known: {sorted(self._by_name)}"
            ) from None

    @property
    def num_dimensions(self) -> int:
        return len(self._dimensions)

    # -- columns -----------------------------------------------------------

    @property
    def columns(self) -> tuple[ColumnSpec, ...]:
        return self._columns

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(c.name for c in self._columns)

    def column(self, name: str) -> ColumnSpec:
        try:
            return self._columns_by_name[name]
        except KeyError:
            raise SchemaError(
                f"unknown column {name!r}; known: {list(self._columns_by_name)}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._columns_by_name

    def __iter__(self) -> Iterator[ColumnSpec]:
        return iter(self._columns)

    @property
    def dimension_columns(self) -> tuple[ColumnSpec, ...]:
        return tuple(c for c in self._columns if c.kind == "dimension")

    @property
    def measure_columns(self) -> tuple[ColumnSpec, ...]:
        return tuple(c for c in self._columns if c.kind == "measure")

    @property
    def measures(self) -> tuple[str, ...]:
        return self._measures

    @property
    def text_columns(self) -> tuple[ColumnSpec, ...]:
        """Columns whose raw values are strings (dictionary encoded)."""
        return tuple(c for c in self._columns if c.is_text)

    @property
    def text_levels(self) -> frozenset[tuple[str, str]]:
        return self._text_levels

    @property
    def total_columns(self) -> int:
        """:math:`C_{TOTAL}` of eq. 13: all columns of the fact table."""
        return len(self._columns)

    # -- sizing ------------------------------------------------------------

    def row_nbytes(self) -> int:
        """Bytes per row across all columns."""
        return int(sum(c.dtype.itemsize for c in self._columns))

    def table_nbytes(self, num_rows: int) -> int:
        """Total bytes of a table with ``num_rows`` rows (no padding)."""
        if num_rows < 0:
            raise SchemaError("num_rows must be non-negative")
        return self.row_nbytes() * num_rows

    def rows_for_bytes(self, target_bytes: float) -> int:
        """Row count whose table size best approximates ``target_bytes``.

        Used to scale the evaluation's "~4 GB fact table" to laptop-sized
        runs while keeping the schema identical.
        """
        return max(1, int(round(target_bytes / self.row_nbytes())))

    def __repr__(self) -> str:
        dims = ", ".join(d.name for d in self._dimensions)
        return (
            f"TableSchema(dims=[{dims}], {len(self.dimension_columns)} dim cols "
            f"({len(self.text_columns)} text), measures={list(self._measures)})"
        )
