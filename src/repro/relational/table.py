"""Columnar fact table with the paper's 1-D packed memory layout.

Section III-E: *"a 1D array memory structure is employed as this data
structure provides maximum performance by placing all columns of the
table one after another"*.  :class:`FactTable` stores each column as a
contiguous NumPy array and can expose the whole table as a single packed
1-D buffer (:meth:`packed`) exactly as the GPU resident copy would be.

The table also implements the *reference scan engine*: vectorised
filter-and-aggregate over the decomposed query (eq. 11).  The simulated
GPU kernels (:mod:`repro.gpu.kernels`) run this same algorithm
partitioned across simulated streaming multiprocessors, so CPU and GPU
answers are bit-identical — which the integration tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.errors import QueryError, SchemaError, TranslationError
from repro.query.model import Query, QueryDecomposition
from repro.query.model import decompose as decompose_query
from repro.relational.schema import TableSchema

__all__ = ["FactTable", "ScanResult"]


@dataclass(frozen=True)
class ScanResult:
    """Outcome of one filter-and-aggregate scan.

    Attributes
    ----------
    values:
        Aggregated value per measure column (``{"revenue": 1234.5}``).
        For ``count`` queries the single key is ``"count"``.
    rows_matched:
        Number of rows passing all filtration conditions.
    columns_read:
        Columns touched by the scan — the realised :math:`C_{Q_D}`
        (eq. 12).
    bytes_read:
        Bytes fetched from (simulated) memory: full columns are always
        read (*"if the query reads a column it always reads the entire
        column and not just part of it"*, Section III-E).
    """

    values: Mapping[str, float]
    rows_matched: int
    columns_read: int
    bytes_read: int

    def value(self, measure: str | None = None) -> float:
        """Single aggregated value; ``measure`` may be omitted if unique."""
        if measure is None:
            if len(self.values) != 1:
                raise QueryError(
                    f"scan produced {len(self.values)} values; name the measure"
                )
            return next(iter(self.values.values()))
        return self.values[measure]


class FactTable:
    """An in-memory columnar fact table.

    Parameters
    ----------
    schema:
        The :class:`TableSchema` describing the columns.
    columns:
        Mapping from column name to a 1-D array.  All columns must have
        equal length; dtypes are cast to the schema's dtypes.
    """

    def __init__(self, schema: TableSchema, columns: Mapping[str, np.ndarray]):
        missing = [c.name for c in schema.columns if c.name not in columns]
        if missing:
            raise SchemaError(f"missing columns: {missing}")
        extra = [name for name in columns if name not in schema]
        if extra:
            raise SchemaError(f"columns not in schema: {extra}")

        lengths = {name: len(arr) for name, arr in columns.items()}
        if len(set(lengths.values())) > 1:
            raise SchemaError(f"ragged columns: {lengths}")

        self.schema = schema
        self._columns: dict[str, np.ndarray] = {}
        for spec in schema.columns:
            arr = np.ascontiguousarray(columns[spec.name], dtype=spec.dtype)
            if arr.ndim != 1:
                raise SchemaError(f"column {spec.name!r} must be 1-D, got shape {arr.shape}")
            self._columns[spec.name] = arr
        self.num_rows = int(next(iter(lengths.values()))) if lengths else 0

        # Validate dimension-column ranges: coordinates must lie within
        # the level cardinality (out-of-range coordinates would silently
        # produce wrong aggregates and break cube construction).
        for spec in schema.dimension_columns:
            card = schema.dimension(spec.dimension).cardinality(spec.resolution)
            col = self._columns[spec.name]
            if col.size and (col.min() < 0 or col.max() >= card):
                raise SchemaError(
                    f"column {spec.name!r} has coordinates outside [0, {card})"
                )

    # -- access ------------------------------------------------------------

    def column(self, name: str) -> np.ndarray:
        """The stored array for ``name`` (a view, not a copy)."""
        try:
            return self._columns[name]
        except KeyError:
            raise SchemaError(f"unknown column {name!r}") from None

    def __getitem__(self, name: str) -> np.ndarray:
        return self.column(name)

    @property
    def nbytes(self) -> int:
        """Total payload bytes across all columns."""
        return int(sum(arr.nbytes for arr in self._columns.values()))

    def column_nbytes(self, name: str) -> int:
        return int(self.column(name).nbytes)

    def packed(self) -> np.ndarray:
        """The paper's 1-D layout: all columns concatenated as raw bytes.

        Returned as a uint8 buffer; :meth:`column_offsets` gives the byte
        offset of each column inside it.  This is the shape of the table
        as resident in simulated GPU global memory.
        """
        parts = [self._columns[c.name].view(np.uint8) for c in self.schema.columns]
        if not parts:
            return np.empty(0, dtype=np.uint8)
        return np.concatenate(parts)

    def column_offsets(self) -> dict[str, int]:
        """Byte offset of every column inside :meth:`packed`."""
        offsets: dict[str, int] = {}
        off = 0
        for spec in self.schema.columns:
            offsets[spec.name] = off
            off += self._columns[spec.name].nbytes
        return offsets

    def head(self, n: int = 5) -> dict[str, np.ndarray]:
        """First ``n`` rows of every column (for debugging/examples)."""
        return {name: arr[:n].copy() for name, arr in self._columns.items()}

    def __len__(self) -> int:
        return self.num_rows

    def __repr__(self) -> str:
        return (
            f"FactTable({self.num_rows} rows x {self.schema.total_columns} cols, "
            f"{self.nbytes / 2**20:.2f} MB)"
        )

    # -- scanning ------------------------------------------------------------

    def filter_mask(self, decomposition: QueryDecomposition) -> np.ndarray:
        """Boolean row mask for all filtration conditions of ``Q_D``.

        Untranslated text predicates are a hard error: the table stores
        dictionary codes, so string literals cannot be compared directly
        (this is exactly why the translation partition exists).
        """
        mask = np.ones(self.num_rows, dtype=bool)
        for pred in decomposition.predicates:
            cond = pred.condition
            if cond.is_text:
                raise TranslationError(
                    f"predicate on column {pred.column!r} still carries text "
                    f"literals {cond.text_values}; translate the query first"
                )
            col = self.column(pred.column)
            if cond.is_range:
                assert cond.lo is not None and cond.hi is not None
                mask &= (col >= cond.lo) & (col < cond.hi)
            else:
                mask &= np.isin(col, np.asarray(cond.codes, dtype=col.dtype))
        return mask

    def scan(self, decomposition: QueryDecomposition) -> ScanResult:
        """Vectorised filter-and-aggregate of a decomposed query.

        Follows the four-step structure of Lauer et al. [9] that the
        paper's GPU path implements: predicate evaluation per column,
        conjunction, then reduction over the data columns.
        """
        mask = self.filter_mask(decomposition)
        rows = int(np.count_nonzero(mask))
        agg = decomposition.query.agg

        values: dict[str, float] = {}
        if agg == "count":
            values["count"] = float(rows)
        else:
            for measure in decomposition.data_columns:
                col = self.column(measure)
                selected = col[mask]
                if agg == "sum":
                    values[measure] = float(selected.sum()) if rows else 0.0
                elif agg == "avg":
                    values[measure] = float(selected.mean()) if rows else float("nan")
                elif agg == "min":
                    values[measure] = float(selected.min()) if rows else float("nan")
                elif agg == "max":
                    values[measure] = float(selected.max()) if rows else float("nan")
                else:  # pragma: no cover - Query validates agg names
                    raise QueryError(f"unknown aggregate {agg!r}")

        cols_read = decomposition.columns_accessed
        bytes_read = sum(
            self.column_nbytes(p.column) for p in decomposition.predicates
        ) + sum(self.column_nbytes(m) for m in decomposition.data_columns)
        return ScanResult(
            values=values,
            rows_matched=rows,
            columns_read=cols_read,
            bytes_read=int(bytes_read),
        )

    def execute(self, query: Query) -> ScanResult:
        """Decompose and scan a query in one step (reference answer path)."""
        decomposition = decompose_query(query, self.schema.hierarchies)
        return self.scan(decomposition)

    # -- drill-through ---------------------------------------------------

    def drill_through(self, query: Query, limit: int | None = None) -> dict[str, np.ndarray]:
        """The hybrid-OLAP drill-through: the fact rows behind a cube cell.

        An analyst who spots an anomalous aggregate drills through to
        the underlying relational rows — the defining operation of a
        *hybrid* OLAP system (multidimensional summary + relational
        detail, Section III-A).  Returns every column restricted to the
        matching rows, optionally capped at ``limit`` rows.
        """
        decomposition = decompose_query(query, self.schema.hierarchies)
        mask = self.filter_mask(decomposition)
        idx = np.flatnonzero(mask)
        if limit is not None:
            if limit < 0:
                raise QueryError(f"limit must be >= 0, got {limit}")
            idx = idx[:limit]
        return {
            spec.name: self._columns[spec.name][idx].copy()
            for spec in self.schema.columns
        }
