"""ASCII chart rendering for benchmark reports and run dashboards.

The reproduction benchmarks regenerate the *data* behind the paper's
figures; this module renders that data as terminal-friendly charts so
``benchmarks/results/*.txt`` shows the curves themselves (bandwidth vs
size, time vs columns, time vs dictionary length), not just coefficient
tables.  :func:`render_dashboard` extends the same idea to simulated
runs: the partition Gantt next to per-partition sparklines of the
booked :math:`T_Q` backlog and the realised queue depth, from a
:class:`~repro.sim.obs.TraceCollector`'s telemetry.  No plotting
dependency required.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Mapping, Sequence

from repro.errors import ReproError

if TYPE_CHECKING:
    from repro.sim.metrics import SystemReport
    from repro.sim.obs import TraceCollector

__all__ = ["ascii_plot", "sparkline", "render_dashboard"]

_MARKERS = "o+x*#@%&"


def _transform(value: float, log: bool) -> float:
    if log:
        if value <= 0:
            raise ReproError(f"log-scale axis cannot show non-positive value {value}")
        return math.log10(value)
    return value


def ascii_plot(
    series: Mapping[str, Sequence[tuple[float, float]]],
    width: int = 64,
    height: int = 16,
    logx: bool = False,
    logy: bool = False,
    xlabel: str = "x",
    ylabel: str = "y",
) -> str:
    """Render one or more (x, y) series as an ASCII scatter chart.

    Each series gets a marker from ``o + x * ...``; overlapping points
    show the later series' marker.  Axis ranges cover all series; log
    axes are supported (the figures' natural scales).

    >>> print(ascii_plot({"f": [(1, 1), (2, 4), (3, 9)]}, width=20, height=5))
    ... # doctest: +SKIP
    """
    if not series:
        raise ReproError("ascii_plot needs at least one series")
    if width < 8 or height < 4:
        raise ReproError("chart must be at least 8x4 characters")
    points_by_label = {
        label: [( _transform(x, logx), _transform(y, logy)) for x, y in pts]
        for label, pts in series.items()
        if pts
    }
    if not points_by_label:
        raise ReproError("every series is empty")

    xs = [x for pts in points_by_label.values() for x, _ in pts]
    ys = [y for pts in points_by_label.values() for _, y in pts]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    legend = []
    for i, (label, pts) in enumerate(points_by_label.items()):
        marker = _MARKERS[i % len(_MARKERS)]
        legend.append(f"{marker} {label}")
        for x, y in pts:
            col = round((x - x_lo) / x_span * (width - 1))
            row = height - 1 - round((y - y_lo) / y_span * (height - 1))
            grid[row][col] = marker

    def fmt(v: float, log: bool) -> str:
        raw = 10**v if log else v
        if raw != 0 and (abs(raw) >= 1e4 or abs(raw) < 1e-2):
            return f"{raw:.1e}"
        return f"{raw:.3g}"

    lines = []
    y_top = fmt(y_hi, logy)
    y_bot = fmt(y_lo, logy)
    margin = max(len(y_top), len(y_bot))
    for r, row in enumerate(grid):
        if r == 0:
            label = y_top.rjust(margin)
        elif r == height - 1:
            label = y_bot.rjust(margin)
        else:
            label = " " * margin
        lines.append(f"{label} |{''.join(row)}")
    lines.append(" " * margin + " +" + "-" * width)
    x_left = fmt(x_lo, logx)
    x_right = fmt(x_hi, logx)
    pad = width - len(x_left) - len(x_right)
    lines.append(
        " " * (margin + 2) + x_left + " " * max(1, pad) + x_right
    )
    scale = []
    if logx:
        scale.append("log x")
    if logy:
        scale.append("log y")
    scale_s = f"  [{', '.join(scale)}]" if scale else ""
    lines.append(" " * (margin + 2) + f"{xlabel} vs {ylabel}{scale_s}   " + "  ".join(legend))
    return "\n".join(lines)


# -- run dashboards (repro.sim.obs telemetry) ----------------------------

_SPARK_LEVELS = " .:-=+*#"


def sparkline(values: Sequence[float], peak: float | None = None) -> str:
    """Render a sequence of non-negative values as one character row.

    Each value maps to one of 8 density levels, scaled by ``peak``
    (default: the sequence's own maximum).  An all-zero sequence renders
    blank — an idle partition is visibly idle.
    """
    if peak is None:
        peak = max(values, default=0.0)
    if peak <= 0:
        return " " * len(values)
    top = len(_SPARK_LEVELS) - 1
    out = []
    for v in values:
        level = int(round(max(0.0, min(v, peak)) / peak * top))
        # any non-zero signal stays visible, however small
        if v > 0 and level == 0:
            level = 1
        out.append(_SPARK_LEVELS[level])
    return "".join(out)


def _resample_step(
    points: Sequence[tuple[float, float]], horizon: float, width: int
) -> list[float]:
    """Bucket an event-time step signal onto ``width`` cells.

    Each cell takes the maximum of the samples falling in it; empty
    cells carry the previous cell's value forward (the signal persists
    between events).
    """
    cell = horizon / width
    values: list[float | None] = [None] * width
    for t, v in points:
        i = min(int(t / cell), width - 1) if cell > 0 else 0
        current = values[i]
        values[i] = v if current is None else max(current, v)
    out: list[float] = []
    last = 0.0
    for v in values:
        if v is not None:
            last = v
        out.append(last)
    return out


def render_dashboard(
    report: "SystemReport", collector: "TraceCollector", width: int = 64
) -> str:
    """Partition Gantt + booked/realised sparklines for one traced run.

    The Gantt block (see :func:`repro.sim.trace.render_gantt`) shows
    *realised service*; below it, each partition gets two sparkline
    rows from the collector's :class:`~repro.sim.obs.PartitionSample`
    series — the scheduler's booked :math:`T_Q` backlog in seconds and
    the realised queue depth (waiting + in service) in jobs.  Reading
    the two against each other shows exactly where the books and the
    physical system diverge.
    """
    from repro.sim.trace import render_gantt

    if not collector.series:
        raise ReproError(
            "render_dashboard needs partition telemetry; run the system "
            "with a TraceCollector(sample_series=True) attached"
        )
    horizon = report.horizon
    if horizon <= 0:
        raise ReproError("nothing to render: zero horizon")
    lines = [
        render_gantt(
            report.timelines,
            horizon=horizon,
            width=width,
            capacities=report.capacities,
        ),
        "",
    ]
    names = [n for n in report.timelines if n in collector.series] or sorted(
        collector.series
    )
    label_width = max(len(n) for n in names)
    for name in names:
        samples = collector.series[name]
        backlog = _resample_step(
            [(s.time, s.backlog) for s in samples], horizon, width
        )
        depth = _resample_step(
            [(s.time, float(s.queue_depth + s.in_service)) for s in samples],
            horizon,
            width,
        )
        lines.append(
            f"{name:>{label_width}} booked T_Q backlog "
            f"|{sparkline(backlog)}| peak {max(backlog):.3g} s"
        )
        lines.append(
            f"{'':>{label_width}} realised jobs      "
            f"|{sparkline(depth)}| peak {max(depth):.0f}"
        )
    lines.append(
        f"{'':>{label_width}} (booked backlog from the scheduler's T_Q books; "
        "realised jobs = waiting + in service)"
    )
    return "\n".join(lines)
