"""ASCII chart rendering for benchmark reports.

The reproduction benchmarks regenerate the *data* behind the paper's
figures; this module renders that data as terminal-friendly charts so
``benchmarks/results/*.txt`` shows the curves themselves (bandwidth vs
size, time vs columns, time vs dictionary length), not just coefficient
tables.  No plotting dependency required.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

from repro.errors import ReproError

__all__ = ["ascii_plot"]

_MARKERS = "o+x*#@%&"


def _transform(value: float, log: bool) -> float:
    if log:
        if value <= 0:
            raise ReproError(f"log-scale axis cannot show non-positive value {value}")
        return math.log10(value)
    return value


def ascii_plot(
    series: Mapping[str, Sequence[tuple[float, float]]],
    width: int = 64,
    height: int = 16,
    logx: bool = False,
    logy: bool = False,
    xlabel: str = "x",
    ylabel: str = "y",
) -> str:
    """Render one or more (x, y) series as an ASCII scatter chart.

    Each series gets a marker from ``o + x * ...``; overlapping points
    show the later series' marker.  Axis ranges cover all series; log
    axes are supported (the figures' natural scales).

    >>> print(ascii_plot({"f": [(1, 1), (2, 4), (3, 9)]}, width=20, height=5))
    ... # doctest: +SKIP
    """
    if not series:
        raise ReproError("ascii_plot needs at least one series")
    if width < 8 or height < 4:
        raise ReproError("chart must be at least 8x4 characters")
    points_by_label = {
        label: [( _transform(x, logx), _transform(y, logy)) for x, y in pts]
        for label, pts in series.items()
        if pts
    }
    if not points_by_label:
        raise ReproError("every series is empty")

    xs = [x for pts in points_by_label.values() for x, _ in pts]
    ys = [y for pts in points_by_label.values() for _, y in pts]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    legend = []
    for i, (label, pts) in enumerate(points_by_label.items()):
        marker = _MARKERS[i % len(_MARKERS)]
        legend.append(f"{marker} {label}")
        for x, y in pts:
            col = round((x - x_lo) / x_span * (width - 1))
            row = height - 1 - round((y - y_lo) / y_span * (height - 1))
            grid[row][col] = marker

    def fmt(v: float, log: bool) -> str:
        raw = 10**v if log else v
        if raw != 0 and (abs(raw) >= 1e4 or abs(raw) < 1e-2):
            return f"{raw:.1e}"
        return f"{raw:.3g}"

    lines = []
    y_top = fmt(y_hi, logy)
    y_bot = fmt(y_lo, logy)
    margin = max(len(y_top), len(y_bot))
    for r, row in enumerate(grid):
        if r == 0:
            label = y_top.rjust(margin)
        elif r == height - 1:
            label = y_bot.rjust(margin)
        else:
            label = " " * margin
        lines.append(f"{label} |{''.join(row)}")
    lines.append(" " * margin + " +" + "-" * width)
    x_left = fmt(x_lo, logx)
    x_right = fmt(x_hi, logx)
    pad = width - len(x_left) - len(x_right)
    lines.append(
        " " * (margin + 2) + x_left + " " * max(1, pad) + x_right
    )
    scale = []
    if logx:
        scale.append("log x")
    if logy:
        scale.append("log y")
    scale_s = f"  [{', '.join(scale)}]" if scale else ""
    lines.append(" " * (margin + 2) + f"{xlabel} vs {ylabel}{scale_s}   " + "  ".join(legend))
    return "\n".join(lines)
