"""ASCII chart rendering for benchmark reports and run dashboards.

The reproduction benchmarks regenerate the *data* behind the paper's
figures; this module renders that data as terminal-friendly charts so
``benchmarks/results/*.txt`` shows the curves themselves (bandwidth vs
size, time vs columns, time vs dictionary length), not just coefficient
tables.  :func:`render_dashboard` extends the same idea to simulated
runs: the partition Gantt next to per-partition sparklines of the
booked :math:`T_Q` backlog and the realised queue depth, from a
:class:`~repro.sim.obs.TraceCollector`'s telemetry.  No plotting
dependency required.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Mapping, Sequence

from repro.errors import ReproError

if TYPE_CHECKING:
    from repro.metrics.registry import MetricsSnapshot
    from repro.sim.metrics import SystemReport
    from repro.sim.obs import TraceCollector

__all__ = [
    "ascii_plot",
    "sparkline",
    "render_dashboard",
    "render_metrics_dashboard",
    "render_spans",
]

_MARKERS = "o+x*#@%&"


def _transform(value: float, log: bool) -> float:
    if log:
        if value <= 0:
            raise ReproError(f"log-scale axis cannot show non-positive value {value}")
        return math.log10(value)
    return value


def ascii_plot(
    series: Mapping[str, Sequence[tuple[float, float]]],
    width: int = 64,
    height: int = 16,
    logx: bool = False,
    logy: bool = False,
    xlabel: str = "x",
    ylabel: str = "y",
) -> str:
    """Render one or more (x, y) series as an ASCII scatter chart.

    Each series gets a marker from ``o + x * ...``; overlapping points
    show the later series' marker.  Axis ranges cover all series; log
    axes are supported (the figures' natural scales).

    >>> print(ascii_plot({"f": [(1, 1), (2, 4), (3, 9)]}, width=20, height=5))
    ... # doctest: +SKIP
    """
    if not series:
        raise ReproError("ascii_plot needs at least one series")
    if width < 8 or height < 4:
        raise ReproError("chart must be at least 8x4 characters")
    points_by_label = {
        label: [( _transform(x, logx), _transform(y, logy)) for x, y in pts]
        for label, pts in series.items()
        if pts
    }
    if not points_by_label:
        raise ReproError("every series is empty")

    xs = [x for pts in points_by_label.values() for x, _ in pts]
    ys = [y for pts in points_by_label.values() for _, y in pts]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    legend = []
    for i, (label, pts) in enumerate(points_by_label.items()):
        marker = _MARKERS[i % len(_MARKERS)]
        legend.append(f"{marker} {label}")
        for x, y in pts:
            col = round((x - x_lo) / x_span * (width - 1))
            row = height - 1 - round((y - y_lo) / y_span * (height - 1))
            grid[row][col] = marker

    def fmt(v: float, log: bool) -> str:
        raw = 10**v if log else v
        if raw != 0 and (abs(raw) >= 1e4 or abs(raw) < 1e-2):
            return f"{raw:.1e}"
        return f"{raw:.3g}"

    lines = []
    y_top = fmt(y_hi, logy)
    y_bot = fmt(y_lo, logy)
    margin = max(len(y_top), len(y_bot))
    for r, row in enumerate(grid):
        if r == 0:
            label = y_top.rjust(margin)
        elif r == height - 1:
            label = y_bot.rjust(margin)
        else:
            label = " " * margin
        lines.append(f"{label} |{''.join(row)}")
    lines.append(" " * margin + " +" + "-" * width)
    x_left = fmt(x_lo, logx)
    x_right = fmt(x_hi, logx)
    pad = width - len(x_left) - len(x_right)
    lines.append(
        " " * (margin + 2) + x_left + " " * max(1, pad) + x_right
    )
    scale = []
    if logx:
        scale.append("log x")
    if logy:
        scale.append("log y")
    scale_s = f"  [{', '.join(scale)}]" if scale else ""
    lines.append(" " * (margin + 2) + f"{xlabel} vs {ylabel}{scale_s}   " + "  ".join(legend))
    return "\n".join(lines)


# -- run dashboards (repro.sim.obs telemetry) ----------------------------

_SPARK_LEVELS = " .:-=+*#"


def sparkline(values: Sequence[float], peak: float | None = None) -> str:
    """Render a sequence of non-negative values as one character row.

    Each value maps to one of 8 density levels, scaled by ``peak``
    (default: the sequence's own maximum).  An all-zero sequence renders
    blank — an idle partition is visibly idle.
    """
    if peak is None:
        peak = max(values, default=0.0)
    if peak <= 0:
        return " " * len(values)
    top = len(_SPARK_LEVELS) - 1
    out = []
    for v in values:
        level = int(round(max(0.0, min(v, peak)) / peak * top))
        # any non-zero signal stays visible, however small
        if v > 0 and level == 0:
            level = 1
        out.append(_SPARK_LEVELS[level])
    return "".join(out)


def _resample_step(
    points: Sequence[tuple[float, float]], horizon: float, width: int
) -> list[float]:
    """Bucket an event-time step signal onto ``width`` cells.

    Each cell takes the maximum of the samples falling in it; empty
    cells carry the previous cell's value forward (the signal persists
    between events).
    """
    cell = horizon / width
    values: list[float | None] = [None] * width
    for t, v in points:
        i = min(int(t / cell), width - 1) if cell > 0 else 0
        current = values[i]
        values[i] = v if current is None else max(current, v)
    out: list[float] = []
    last = 0.0
    for v in values:
        if v is not None:
            last = v
        out.append(last)
    return out


def render_dashboard(
    report: "SystemReport",
    collector: "TraceCollector",
    width: int = 64,
    metrics: "Sequence[MetricsSnapshot] | None" = None,
) -> str:
    """Partition Gantt + booked/realised sparklines for one traced run.

    The Gantt block (see :func:`repro.sim.trace.render_gantt`) shows
    *realised service*; below it, each partition gets two sparkline
    rows from the collector's :class:`~repro.sim.obs.PartitionSample`
    series — the scheduler's booked :math:`T_Q` backlog in seconds and
    the realised queue depth (waiting + in service) in jobs.  Reading
    the two against each other shows exactly where the books and the
    physical system diverge.

    ``metrics`` (a sequence of :class:`~repro.metrics.registry.
    MetricsSnapshot`, e.g. ``SnapshotWriter.snapshots``) appends the
    live-metrics view of :func:`render_metrics_dashboard`, so simulated
    and served runs share one dashboard path.
    """
    from repro.sim.trace import render_gantt

    if not collector.series:
        raise ReproError(
            "render_dashboard needs partition telemetry; run the system "
            "with a TraceCollector(sample_series=True) attached"
        )
    horizon = report.horizon
    if horizon <= 0:
        raise ReproError("nothing to render: zero horizon")
    lines = [
        render_gantt(
            report.timelines,
            horizon=horizon,
            width=width,
            capacities=report.capacities,
        ),
        "",
    ]
    names = [n for n in report.timelines if n in collector.series] or sorted(
        collector.series
    )
    label_width = max(len(n) for n in names)
    for name in names:
        samples = collector.series[name]
        backlog = _resample_step(
            [(s.time, s.backlog) for s in samples], horizon, width
        )
        depth = _resample_step(
            [(s.time, float(s.queue_depth + s.in_service)) for s in samples],
            horizon,
            width,
        )
        lines.append(
            f"{name:>{label_width}} booked T_Q backlog "
            f"|{sparkline(backlog)}| peak {max(backlog):.3g} s"
        )
        lines.append(
            f"{'':>{label_width}} realised jobs      "
            f"|{sparkline(depth)}| peak {max(depth):.0f}"
        )
    lines.append(
        f"{'':>{label_width}} (booked backlog from the scheduler's T_Q books; "
        "realised jobs = waiting + in service)"
    )
    if metrics:
        lines += ["", render_metrics_dashboard(metrics, width=width)]
    return "\n".join(lines)


# -- live metrics view (repro.metrics snapshots) -------------------------


def _rate_points(
    snapshots: "Sequence[MetricsSnapshot]", family: str, key: tuple[str, ...]
) -> list[tuple[float, float]]:
    """Per-interval rate of one cumulative counter sample."""
    points: list[tuple[float, float]] = []
    prev_t: float | None = None
    prev_v = 0.0
    for snap in snapshots:
        fam = snap.family(family)
        value = float(fam.samples.get(key, 0.0)) if fam is not None else 0.0
        if prev_t is not None and snap.time > prev_t:
            points.append((snap.time, (value - prev_v) / (snap.time - prev_t)))
        prev_t, prev_v = snap.time, value
    return points


def _p95_points(
    snapshots: "Sequence[MetricsSnapshot]", family: str, key: tuple[str, ...]
) -> list[tuple[float, float]]:
    """Windowed p95 between consecutive cumulative histogram snapshots."""
    points: list[tuple[float, float]] = []
    prev = None
    for snap in snapshots:
        fam = snap.family(family)
        hist = fam.samples.get(key) if fam is not None else None
        if hist is None:
            continue
        window = hist if prev is None else hist.minus(prev)
        if window.count > 0:
            p95 = window.quantile_bound(0.95)
            if math.isfinite(p95):
                points.append((snap.time, p95))
        prev = hist
    return points


def render_metrics_dashboard(
    snapshots: "Sequence[MetricsSnapshot]", width: int = 64
) -> str:
    """Live view of a run's metrics snapshots (sim and serve alike).

    For each placement target: the per-interval completion rate (q/s)
    and the windowed p95 end-to-end latency, as sparklines over the
    run, with the latest cumulative totals alongside.  When the
    registry carries :class:`~repro.metrics.slo.SloMonitor` gauges, an
    SLO row shows the burn-rate history and the latest windowed hit
    rate against the target.  Input is any non-empty sequence of
    :class:`~repro.metrics.registry.MetricsSnapshot` in time order —
    typically ``SnapshotWriter.snapshots`` or JSONL re-reads.
    """
    if not snapshots:
        raise ReproError(
            "render_metrics_dashboard needs at least one metrics snapshot; "
            "attach a SnapshotWriter to the run"
        )
    latest = snapshots[-1]
    horizon = latest.time
    if horizon <= 0:
        raise ReproError("nothing to render: zero metrics horizon")

    completed = latest.family("repro_queries_completed_total")
    targets = [key[0] for key, _ in completed.items()] if completed is not None else []
    lines = [
        f"live metrics @ t={horizon:.3g}s "
        f"({len(snapshots)} snapshot{'s' if len(snapshots) != 1 else ''})"
    ]
    label_width = max((len(t) for t in targets), default=8)
    for target in targets:
        key = (target,)
        total = completed.samples.get(key, 0.0)
        rate = _resample_step(
            _rate_points(snapshots, "repro_queries_completed_total", key),
            horizon,
            width,
        )
        lines.append(
            f"{target:>{label_width}} completions q/s   "
            f"|{sparkline(rate)}| peak {max(rate):.3g}  total {total:g}"
        )
        latency = latest.family("repro_query_latency_seconds")
        hist = latency.samples.get(key) if latency is not None else None
        if hist is not None and hist.count > 0:
            p95 = _resample_step(
                _p95_points(snapshots, "repro_query_latency_seconds", key),
                horizon,
                width,
            )
            lines.append(
                f"{'':>{label_width}} p95 latency (s)   "
                f"|{sparkline(p95)}| run p95 {hist.quantile_bound(0.95):.3g}"
            )
    burn_fam = latest.family("repro_slo_burn_rate")
    if burn_fam is not None:
        burn = _resample_step(
            [
                # clamp: target=1.0 burns infinitely on any miss
                (s.time, min(float(f.samples.get((), 0.0)), 1e9))
                for s in snapshots
                if (f := s.family("repro_slo_burn_rate")) is not None
            ],
            horizon,
            width,
        )
        hit = latest.value("repro_slo_hit_rate")
        target_v = latest.value("repro_slo_target")
        lines.append(
            f"{'SLO':>{label_width}} budget burn       "
            f"|{sparkline(burn)}| hit rate {hit:.3f} vs target {target_v:g}"
        )
    lines.append(
        f"{'':>{label_width}} (rates per snapshot interval; p95 from "
        "windowed histogram deltas)"
    )
    return "\n".join(lines)


# -- span view (repro.obs traces) ----------------------------------------


def _percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of a non-empty sequence."""
    ordered = sorted(values)
    rank = max(0, math.ceil(q * len(ordered)) - 1)
    return ordered[rank]


def render_spans(spans, width: int = 48) -> str:
    """Per-stage self-time table + slowest-trace waterfall for a span set.

    Input is any iterable of :class:`repro.obs.span.Span`-shaped
    objects (a tracer's :meth:`~repro.obs.span.SpanTracer.spans`, or
    the stitched set on :attr:`repro.fleet.fleet.FleetReport.spans`).
    Two blocks:

    * **stage table** — for every ``(process, stage)`` pair, the count
      and the p50/p95 of *self-time*: a span's duration minus its
      same-process children's durations, so a root's row shows
      orchestration overhead rather than double-counting the work its
      children already account for (cross-process children run on
      unaligned clocks and are never subtracted);
    * **waterfall** — the slowest trace (by root duration), one bar per
      span positioned against the root's window, children indented
      under their parents.  Spans from another process are anchored at
      the ``wire.roundtrip`` span that carried them, so a fleet trace
      reads as one timeline despite the clock-domain break.
    """
    spans = tuple(spans)
    if not spans:
        raise ReproError(
            "render_spans needs at least one span; run with a SpanTracer "
            "attached and a non-zero sample rate"
        )

    # -- self-time table -------------------------------------------------
    child_time: dict[tuple[str, str], float] = {}
    for span in spans:
        if span.parent_id is None:
            continue
        key = (span.trace_id, span.parent_id)
        child_time[key] = child_time.get(key, 0.0) + span.duration
    stage_self: dict[tuple[str, str], list[float]] = {}
    for span in spans:
        # same-process children only: a shard subtree's durations live
        # in another clock domain and belong to the shard's own rows
        owned = sum(
            c.duration
            for c in spans
            if c.parent_id == span.span_id
            and c.trace_id == span.trace_id
            and c.process == span.process
        )
        self_time = max(0.0, span.duration - owned)
        stage_self.setdefault((span.process, span.name), []).append(self_time)

    traces = {s.trace_id for s in spans}
    lines = [
        f"span self-time by stage ({len(spans)} spans, "
        f"{len(traces)} trace{'s' if len(traces) != 1 else ''})"
    ]
    proc_w = max(max(len(p) for p, _ in stage_self), len("process"))
    stage_w = max(max(len(n) for _, n in stage_self), len("stage"))
    lines.append(
        f"{'process':<{proc_w}}  {'stage':<{stage_w}}  "
        f"{'count':>5}  {'p50 (s)':>10}  {'p95 (s)':>10}"
    )
    for (process, name), values in sorted(stage_self.items()):
        lines.append(
            f"{process:<{proc_w}}  {name:<{stage_w}}  {len(values):>5}  "
            f"{_percentile(values, 0.50):>10.6f}  "
            f"{_percentile(values, 0.95):>10.6f}"
        )

    # -- slowest-trace waterfall -----------------------------------------
    roots = [s for s in spans if s.parent_id is None]
    if not roots:
        return "\n".join(lines)
    root = max(roots, key=lambda s: s.duration)
    members = [s for s in spans if s.trace_id == root.trace_id]
    index = {s.span_id: s for s in members}

    def depth(span) -> int:
        d, cur = 0, span
        while cur.parent_id is not None and cur.parent_id in index:
            cur = index[cur.parent_id]
            d += 1
            if d > len(members):  # defensive: a cycle would hang us
                break
        return d

    # rebase each foreign process onto the root's clock at the wire
    # span that carried it there (falling back to the root's start)
    offsets = {root.process: 0.0}
    for process in {s.process for s in members} - {root.process}:
        first = min(
            (s.start for s in members if s.process == process), default=0.0
        )
        anchor = root.start
        for s in members:
            if s.name == "wire.roundtrip" and s.process == root.process:
                anchor = s.start
                break
        offsets[process] = anchor - first
    span_total = root.duration or 1.0

    qid = "" if root.query_id is None else f"query {root.query_id}, "
    lines += [
        "",
        f"slowest trace {root.trace_id} ({qid}{root.duration:.6f} s, "
        f"status {root.status})",
    ]
    name_w = max(len(s.name) + depth(s) for s in members)
    ordered = sorted(members, key=lambda s: (s.start + offsets[s.process], depth(s)))
    for span in ordered:
        rebased = span.start + offsets[span.process] - root.start
        left = int(max(0.0, min(1.0, rebased / span_total)) * width)
        right = int(
            max(0.0, min(1.0, (rebased + span.duration) / span_total)) * width
        )
        bar = " " * left + "=" * max(1, right - left)
        label = " " * depth(span) + span.name
        lines.append(
            f"{span.process:<{proc_w}}  {label:<{name_w}} "
            f"|{bar:<{width}}| {span.duration:.6f} s"
        )
    return "\n".join(lines)
