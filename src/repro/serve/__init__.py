"""Wall-clock serving plane — the live counterpart of :mod:`repro.sim`.

The simulated-time plane replays a :class:`~repro.query.workload.
QueryStream` against *booked* service-time estimates; this package runs
the same Figure-10 pipeline against *real* clocks and *real* work:

- :mod:`repro.serve.clock` — the :class:`Clock` abstraction
  (:class:`RealClock` in production, :class:`FakeClock` in tests, so
  every timestamp the engine takes is injectable and deterministic);
- :mod:`repro.serve.pool` — per-partition worker pools: FIFO task
  queues drained by threads, with all bookkeeping transitions taken
  under one shared engine lock so the realised schedule is auditable;
- :mod:`repro.serve.executors` — the work behind each partition: the
  CPU OLAP partition runs :class:`~repro.olap.parallel.
  ParallelAggregator` reductions over materialised cubes, the GPU
  partitions run the :mod:`repro.gpu` kernel substitutes, and the
  translation partition runs :class:`~repro.text.translator.
  TranslationService` lookups;
- :mod:`repro.serve.engine` — :class:`ServeEngine`, wiring submission
  -> scheduler -> pools -> feedback with bounded admission
  (backpressure), graceful drain, and :class:`~repro.sim.obs.
  TraceCollector` integration;
- :mod:`repro.serve.loadgen` — open-loop (rate-paced) and closed-loop
  load generators driving an engine from a workload spec.

The decision logic is *shared*, not forked: the engine instantiates the
exact scheduler classes of :mod:`repro.core` over the same
:class:`~repro.core.partitions.PartitionQueue` books, so a serve-mode
dispatch and a simulated-time dispatch given identical estimates pick
the same ``(queue, branch)`` (property-tested in
``tests/properties/test_prop_serve.py``), and the resulting
:class:`~repro.sim.metrics.SystemReport` passes the same
:mod:`repro.sim.validate` invariant families.
"""

from repro.serve.clock import Clock, FakeClock, RealClock
from repro.serve.engine import ServeEngine, SubmitOutcome, Ticket
from repro.serve.executors import MaterialisedExecutor, NullExecutor, QueryExecutor
from repro.serve.loadgen import ClosedLoopGenerator, LoadReport, OpenLoopGenerator
from repro.serve.pool import ServeTask, WorkerPool

__all__ = [
    "Clock",
    "FakeClock",
    "RealClock",
    "ServeEngine",
    "SubmitOutcome",
    "Ticket",
    "QueryExecutor",
    "MaterialisedExecutor",
    "NullExecutor",
    "ClosedLoopGenerator",
    "LoadReport",
    "OpenLoopGenerator",
    "ServeTask",
    "WorkerPool",
]
