"""Injectable time sources for the wall-clock serving plane.

Everywhere :mod:`repro.serve` reads time it goes through a
:class:`Clock`, never through :mod:`time` directly.  Production uses
:class:`RealClock` (monotonic wall time); the deterministic concurrency
test suite injects a :class:`FakeClock` whose reads and sleeps are pure
state transitions, so a test that "waits" 10 simulated seconds runs in
microseconds and two runs of the same test take identical timestamps.
"""

from __future__ import annotations

import threading
import time
from typing import Protocol, runtime_checkable

from repro.errors import ServeError

__all__ = ["Clock", "RealClock", "FakeClock"]


@runtime_checkable
class Clock(Protocol):
    """A monotonic time source with a pacing primitive."""

    def now(self) -> float:  # pragma: no cover - protocol
        """Seconds since an arbitrary (but fixed) origin; never decreases."""
        ...

    def sleep(self, seconds: float) -> None:  # pragma: no cover - protocol
        """Block (or simulate blocking) for ``seconds``."""
        ...


class RealClock:
    """Wall time: :func:`time.monotonic` + :func:`time.sleep`."""

    def now(self) -> float:
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)

    def __repr__(self) -> str:
        return "RealClock()"


class FakeClock:
    """A controllable clock for deterministic tests.

    Reads return the internal counter; :meth:`sleep` *advances* the
    counter by the requested duration instead of blocking, so a paced
    load generator runs at full speed while still stamping the
    timestamps it would have stamped in real time.  :meth:`advance`
    moves the counter explicitly from test code.

    All transitions are lock-protected and monotone, so concurrent
    readers (worker pools stamping start/finish times) always observe a
    non-decreasing clock — the property every :mod:`repro.sim.validate`
    ordering invariant rests on.
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)
        self._lock = threading.Lock()

    def now(self) -> float:
        with self._lock:
            return self._now

    def sleep(self, seconds: float) -> None:
        if seconds < 0:
            return
        with self._lock:
            self._now += seconds

    def advance(self, seconds: float) -> float:
        """Move time forward by ``seconds``; returns the new time."""
        if seconds < 0:
            raise ServeError(f"cannot advance a clock backwards ({seconds})")
        with self._lock:
            self._now += seconds
            return self._now

    def __repr__(self) -> str:
        return f"FakeClock(now={self.now():.6f})"
