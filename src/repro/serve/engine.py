"""The wall-clock serving engine — Figure 10 against live clocks.

:class:`ServeEngine` is the production-shaped counterpart of
:class:`~repro.sim.system.HybridSystem.run`: the same scheduler classes
over the same :class:`~repro.core.partitions.PartitionQueue` books and
the same :class:`~repro.core.feedback.FeedbackController` loop, but
with every partition realised as a :class:`~repro.serve.pool.
WorkerPool` executing *real* work in *real* (injected-clock) time:

* the CPU OLAP partition runs :class:`~repro.olap.parallel.
  ParallelAggregator` reductions;
* each GPU partition of the :class:`~repro.gpu.partitioning.
  PartitionScheme` is a capacity-limited pool running the
  :mod:`repro.gpu` kernel substitutes;
* the translation partition runs :class:`~repro.text.translator.
  TranslationService` lookups before GPU dispatch, exactly Figure 10's
  pipeline (a translated query's processing task is enqueued by the
  translation worker at realised translation finish).

Three production concerns the simulated plane never needed:

* **admission & backpressure** — ``max_in_flight`` bounds accepted but
  unfinished queries; blocking submits wait for space (closed-loop
  clients), non-blocking ones raise
  :class:`~repro.errors.BackpressureError` (open-loop shed), and
  :class:`~repro.core.admission.AdmissionControlScheduler` rejections
  surface as :class:`SubmitOutcome` rejections;
* **graceful drain** — :meth:`drain` stops admission, waits for
  in-flight work to finish, and joins every worker;
* **observability of live runs** — a :class:`~repro.sim.obs.
  TraceCollector` attached via :meth:`~repro.sim.obs.TraceCollector.
  attach_serve` records the identical lifecycle event stream the
  simulator emits, so :func:`repro.sim.validate.assert_trace_valid`
  audits serving exactly like simulation.

All scheduler/queue/feedback/trace bookkeeping happens under one
engine-wide lock (see :mod:`repro.serve.pool`); executor work runs
outside it.  :meth:`report` emits a standard
:class:`~repro.sim.metrics.SystemReport`, so every metric, dashboard
and invariant checker in the repo consumes live runs unchanged.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from repro.core.feedback import FeedbackController
from repro.core.partitions import PartitionQueue, QueueKind
from repro.core.scheduler import BaseScheduler, ScheduleDecision
from repro.errors import AdmissionRejected, BackpressureError, ServeError
from repro.metrics.instrument import (
    ObsMetrics,
    PoolMetrics,
    RollupMetrics,
    RuntimeMetrics,
    TranslatorMetrics,
)
from repro.obs.hooks import (
    PoolSpans,
    RollupSpans,
    SchedulerSpans,
    TranslatorSpans,
)
from repro.obs.span import SpanTracer
from repro.olap.rollup import RollupRouter
from repro.metrics.exporter import MetricsExporter
from repro.metrics.registry import MetricsRegistry
from repro.metrics.slo import SloMonitor
from repro.metrics.snapshots import SnapshotWriter
from repro.query.model import Query
from repro.serve.clock import Clock, RealClock
from repro.serve.executors import MaterialisedExecutor, QueryExecutor
from repro.serve.pool import EngineState, ServeTask, WorkerPool
from repro.sim.metrics import QueryRecord, SystemReport
from repro.sim.obs import TraceCollector, classify_branch
from repro.sim.system import SystemConfig, SystemEstimator

__all__ = ["ServeEngine", "SubmitOutcome", "Ticket"]


class Ticket:
    """Completion handle for one accepted query (closed-loop clients)."""

    __slots__ = ("_event", "record", "error", "_abandoned")

    def __init__(self) -> None:
        self._event = threading.Event()
        self.record: QueryRecord | None = None
        self.error: BaseException | None = None
        self._abandoned = False

    def _complete(
        self, record: QueryRecord | None, error: BaseException | None
    ) -> None:
        self.record = record
        self.error = error
        self._event.set()

    def _abandon(self) -> None:
        """Wake waiters without a result: the engine stopped first."""
        self._abandoned = True
        self._event.set()

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the query finished; True when it did.

        Returns False on timeout *and* when the engine stopped before
        the query completed — a stopped engine abandons its outstanding
        tickets, so a waiter can never hang on work that will never run.
        """
        return self._event.wait(timeout=timeout) and not self._abandoned

    @property
    def done(self) -> bool:
        """True once a result is available (not set for abandonment)."""
        return self._event.is_set() and not self._abandoned


@dataclass(frozen=True)
class SubmitOutcome:
    """Result of one submission attempt.

    ``accepted`` is False when admission control shed the query
    (``decision``/``ticket`` are then None).  Backpressure is *not* an
    outcome — it raises :class:`~repro.errors.BackpressureError` so
    open-loop generators can count shed load explicitly.
    """

    accepted: bool
    decision: ScheduleDecision | None = None
    ticket: Ticket | None = None
    #: True when the rollup tier answered before the scheduler was
    #: consulted: ``decision`` is None and ``ticket`` is already done
    cache_hit: bool = False


class ServeEngine:
    """Serve queries on live worker pools under the Figure-10 scheduler.

    Parameters
    ----------
    config:
        The standard :class:`~repro.sim.system.SystemConfig`; the
        scheduler factory, partition scheme, translation workers, and
        time constraint all mean exactly what they mean in simulation.
    clock:
        Time source; defaults to :class:`~repro.serve.clock.RealClock`.
        Tests inject :class:`~repro.serve.clock.FakeClock`.
    executor:
        The per-partition work; defaults to
        :class:`~repro.serve.executors.MaterialisedExecutor` (requires
        a materialised config).
    estimator:
        Step-2 estimate source; defaults to
        :class:`~repro.sim.system.SystemEstimator` over ``config``.
        Tests inject stubs to drive scheduling deterministically.
    collector:
        Optional :class:`~repro.sim.obs.TraceCollector`; attached via
        :meth:`~repro.sim.obs.TraceCollector.attach_serve`.
    metrics:
        Optional :class:`~repro.metrics.registry.MetricsRegistry`.  When
        given, the engine wires :class:`~repro.metrics.instrument.
        RuntimeMetrics` into the scheduler/feedback ``metrics_observer``
        slots, per-pool :class:`~repro.metrics.instrument.
        PoolInstruments` into every :class:`WorkerPool`, and
        :class:`~repro.metrics.instrument.TranslatorMetrics` into the
        config's :class:`~repro.text.translator.TranslationService`
        (replacing any hook a previous engine installed on that shared
        service).  With ``metrics=None`` every hook site is a single
        ``is not None`` check — the no-op-cheap discipline of
        :mod:`repro.sim.obs`.
    slo:
        Optional :class:`~repro.metrics.slo.SloMonitor`; fed one
        observation per finished query (``met_deadline`` at the realised
        finish time, failures counting as misses).
    snapshots:
        Optional :class:`~repro.metrics.snapshots.SnapshotWriter`;
        ticked at every lifecycle transition the engine already observes
        and force-written once at the end of :meth:`drain`, so snapshot
        cadence is a pure function of event times under ``FakeClock``.
    exporter:
        Optional :class:`~repro.metrics.exporter.MetricsExporter` the
        engine *owns*: :meth:`stop` (and therefore :meth:`drain` and the
        context-manager exit) calls its ``close()``, releasing the
        scrape port with the engine instead of leaking the bound socket
        into the rest of the process.  The engine does not start it —
        callers start the exporter whenever they want scrapes to begin
        (typically before the world build, as ``repro serve`` does).
    max_in_flight:
        Bound on accepted-but-unfinished queries (None = unbounded).
        The front door of the backpressure chain.
    rollup:
        Optional :class:`~repro.olap.rollup.RollupRouter`.  When given,
        every submission first asks the rollup catalog for coverage
        (under the engine lock; the catalog lock nests inside — see
        ``docs/architecture.md``).  A hit completes immediately with a
        zero-cost record on :data:`~repro.olap.rollup.ROLLUP_TARGET`,
        bypassing estimation, dispatch, and the in-flight bound; a miss
        proceeds through Figure 10 untouched.  If ``metrics`` is also
        given, the engine wires :class:`~repro.metrics.instrument.
        RollupMetrics` into the router.
    spans:
        Optional :class:`~repro.obs.span.SpanTracer` (the distributed
        span plane).  The engine re-binds the tracer's clock to the
        injected engine clock, opens one ``serve.query`` root span per
        head-sampled submission, and wires the
        :mod:`repro.obs.hooks` adapters into the scheduler's fourth
        observer slot, every pool, the rollup router, and the
        translation service.  If ``metrics`` is also given, the tracer
        gets :class:`~repro.metrics.instrument.ObsMetrics`.
    """

    def __init__(
        self,
        config: SystemConfig,
        *,
        clock: Clock | None = None,
        executor: QueryExecutor | None = None,
        estimator=None,
        collector: TraceCollector | None = None,
        metrics: MetricsRegistry | None = None,
        slo: SloMonitor | None = None,
        snapshots: SnapshotWriter | None = None,
        exporter: MetricsExporter | None = None,
        max_in_flight: int | None = 1024,
        cpu_threads: int = 4,
        rollup: RollupRouter | None = None,
        adapt=None,
        spans: SpanTracer | None = None,
    ):
        if max_in_flight is not None and max_in_flight < 1:
            raise ServeError(f"max_in_flight must be >= 1, got {max_in_flight}")
        self.config = config
        self.clock = clock if clock is not None else RealClock()
        self._state = EngineState(self.clock)
        self.executor: QueryExecutor = (
            executor
            if executor is not None
            else MaterialisedExecutor(config, cpu_threads=cpu_threads)
        )
        self.estimator = (
            estimator if estimator is not None else SystemEstimator(config)
        )
        self.max_in_flight = max_in_flight

        # the same queue/scheduler/feedback wiring as HybridSystem.run
        self.cpu_queue = PartitionQueue("Q_CPU", QueueKind.CPU)
        self.trans_queue = PartitionQueue(
            "Q_TRANS", QueueKind.TRANSLATION, capacity=config.translation_workers
        )
        self.gpu_queues = [
            PartitionQueue(f"Q_{p.name}", QueueKind.GPU, n_sm=p.n_sm)
            for p in config.scheme
        ]
        self.scheduler: BaseScheduler = config.scheduler_factory(
            self.cpu_queue,
            self.gpu_queues,
            self.trans_queue,
            self.estimator,
            config.time_constraint,
        )
        self.feedback = FeedbackController(gain=config.feedback_gain)
        self.queues: dict[str, PartitionQueue] = {
            q.name: q
            for q in [self.cpu_queue, self.trans_queue, *self.gpu_queues]
        }
        self.pools: dict[str, WorkerPool] = {
            name: WorkerPool(name, self._state, capacity=q.capacity)
            for name, q in self.queues.items()
        }

        self.records: list[QueryRecord] = []
        self.cache_hits: list[QueryRecord] = []
        self.errors: list[tuple[int, BaseException]] = []
        self.rejected = 0
        self._in_flight = 0
        #: live tickets of in-flight queries, for drain diagnostics and
        #: stop-time abandonment (keyed by identity: query_ids stay
        #: readable even if a client resubmits the same query object)
        self._tickets: dict[Ticket, int] = {}
        self._accepting = True
        self._started = False

        self._collector = collector
        if collector is not None:
            collector.attach_serve(
                now_fn=self._state.now,
                scheduler=self.scheduler,
                feedback=self.feedback,
                queues=self.queues,
                stations=self.pools,
                trans_name=self.trans_queue.name,
            )

        self.rollup = rollup
        self.metrics = metrics
        self._metrics: RuntimeMetrics | None = None
        self._slo = slo
        self._snapshots = snapshots
        self._exporter = exporter
        self._pool_families: PoolMetrics | None = None
        #: generation counter for live GPU re-splits: each re-split's
        #: queues get a one-letter suffix so names never collide with a
        #: previous generation's books
        self._generation = 0
        if metrics is not None and rollup is not None:
            rollup.metrics = RollupMetrics(metrics)
        if metrics is not None:
            self._metrics = RuntimeMetrics(metrics)
            self.scheduler.metrics_observer = self._metrics
            self.feedback.metrics_observer = self._metrics.on_feedback
            self._pool_families = PoolMetrics(metrics)
            for name, pool in self.pools.items():
                pool.metrics = self._pool_families.for_pool(name)
            if config.translation_service is not None:
                config.translation_service.metrics = TranslatorMetrics(metrics)
        self._adapt = adapt
        if adapt is not None:
            # same None-guarded observer pattern as trace/metrics: the
            # plane claims the third scheduler/feedback observer slots
            # and gets actuator access for capacity reconfiguration
            adapt.attach_serve(self)
        self.spans = spans
        if spans is not None:
            # clock-domain rule: serve-plane spans read the injected
            # clock's engine-relative now() — never time.monotonic()
            # directly — so span timelines share the report/trace
            # timebase and are deterministic under FakeClock
            spans.bind_clock(self._state.now)
            if metrics is not None:
                spans.metrics = ObsMetrics(metrics)
            self.scheduler.span_observer = SchedulerSpans(spans, classify_branch)
            for name, pool in self.pools.items():
                pool.spans = PoolSpans(spans, name)
            if rollup is not None:
                rollup.spans = RollupSpans(spans)
            if config.translation_service is not None:
                config.translation_service.spans = TranslatorSpans(spans)

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> "ServeEngine":
        """Spawn every partition's worker threads (idempotent)."""
        for pool in self.pools.values():
            pool.start()
        self._started = True
        return self

    def __enter__(self) -> "ServeEngine":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.drain()
        else:  # error path: stop quickly, keep the original exception
            self.stop(finish_queued=False)

    @property
    def in_flight(self) -> int:
        """Accepted queries not yet finished (translation + processing)."""
        return self._in_flight

    @property
    def elapsed(self) -> float:
        """Engine-relative clock reading (report/trace timebase)."""
        return self._state.now()

    # -- submission (the dispatcher) ----------------------------------------

    def submit(
        self,
        query: Query,
        query_class: str = "default",
        *,
        block: bool = True,
        timeout: float | None = 30.0,
    ) -> SubmitOutcome:
        """Schedule one query and hand it to its partition pools.

        Runs steps 1-6 of Figure 10 via the configured scheduler — the
        *same* object code as simulated-time dispatch — then enqueues
        the translation and/or processing task.  Blocks (or raises
        :class:`~repro.errors.BackpressureError` when ``block=False``)
        while ``max_in_flight`` queries are outstanding.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._state.cond:
            while (
                self.max_in_flight is not None
                and self._in_flight >= self.max_in_flight
                and self._accepting
            ):
                if not block:
                    raise BackpressureError(
                        f"{self._in_flight} queries in flight "
                        f"(max_in_flight={self.max_in_flight})"
                    )
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    raise BackpressureError(
                        f"still {self._in_flight} queries in flight after "
                        f"{timeout}s (max_in_flight={self.max_in_flight})"
                    )
                self._state.cond.wait(timeout=remaining)
            if not self._accepting:
                raise ServeError("engine is draining; submission refused")
            now = self._state.now()
            self._emit(
                "arrival",
                now,
                query.query_id,
                query_class=query_class,
                needs_translation=query.needs_translation,
            )
            if self.rollup is not None:
                hit = self.rollup.serve(
                    query,
                    query_class,
                    now,
                    deadline=now + self.config.time_constraint,
                )
                if hit is not None:
                    # answered before the scheduler was consulted: no
                    # submitted/admitted counts, no books, no in-flight
                    # slot — the `rollup` validation family audits this
                    self.cache_hits.append(hit)
                    self._emit(
                        "cache-hit",
                        now,
                        query.query_id,
                        target=hit.target,
                        answer=hit.answer,
                    )
                    if self._slo is not None:
                        self._slo.observe(True, now)
                    if self._adapt is not None:
                        self._adapt.on_outcome(True, now)
                    self._sample(now)
                    ticket = Ticket()
                    ticket._complete(hit, None)
                    return SubmitOutcome(
                        accepted=True, ticket=ticket, cache_hit=True
                    )
            if self._metrics is not None:
                self._metrics.on_submitted()
            if self.spans is not None:
                self.spans.open(
                    query.query_id,
                    "serve.query",
                    start=now,
                    query_class=query_class,
                )
            try:
                decision = self.scheduler.schedule(query, now)
            except AdmissionRejected as exc:
                self.rejected += 1
                if self._metrics is not None:
                    self._metrics.on_rejected()
                self._emit("rejected", now, query.query_id, reason=str(exc))
                if self.spans is not None:
                    self.spans.close(query.query_id, end=now, status="rejected")
                self._sample(now)
                return SubmitOutcome(accepted=False)
            ticket = self._admit(decision, query, query_class)
            self._sample(now)
            return SubmitOutcome(accepted=True, decision=decision, ticket=ticket)

    def _admit(
        self, decision: ScheduleDecision, query: Query, query_class: str
    ) -> Ticket:
        """Book one scheduled query in (caller holds the engine lock)."""
        ticket = Ticket()
        self._in_flight += 1
        self._tickets[ticket] = query.query_id
        if self._metrics is not None:
            self._metrics.on_admitted(self._in_flight)
        if decision.translation is not None:
            self.pools[self.trans_queue.name].submit(
                self._translation_task(decision, query_class, ticket)
            )
        else:
            self.pools[decision.target.name].submit(
                self._processing_task(decision, query_class, ticket, query)
            )
        return ticket

    def submit_batch(
        self,
        queries,
        query_class="default",
        *,
        block: bool = True,
        timeout: float | None = 30.0,
    ) -> list[SubmitOutcome]:
        """Schedule a batch of queries with one lock hold per admitted chunk.

        Outcomes are positionally aligned with ``queries`` and identical
        to calling :meth:`submit` per query in order — same decisions
        (the batch runs through :meth:`~repro.core.scheduler.
        BaseScheduler.schedule_batch`, which is byte-identical to the
        sequential scheduler), same rollup short-circuits, same
        admission rejections — but the engine lock is acquired once per
        chunk instead of once per query, and step 2 of Figure 10 runs as
        one vectorised pass per chunk.  ``query_class`` is one class for
        the whole batch or a same-length sequence of per-query classes.

        A chunk is as many remaining queries as ``max_in_flight``
        currently leaves room for.  When the engine is full, a blocking
        call waits for space before starting the next chunk;
        ``block=False`` raises :class:`~repro.errors.BackpressureError`
        at the first full chunk boundary — queries of earlier chunks
        are already admitted and their tickets remain live, and the
        outcomes collected so far ride on the exception as its
        ``outcomes`` attribute (load generators count them as accepted
        and shed only the remainder).
        """
        queries = list(queries)
        if isinstance(query_class, str):
            classes = [query_class] * len(queries)
        else:
            classes = [str(c) for c in query_class]
            if len(classes) != len(queries):
                raise ServeError(
                    f"query_class sequence has {len(classes)} entries "
                    f"for {len(queries)} queries"
                )
        deadline = None if timeout is None else time.monotonic() + timeout
        outcomes: list[SubmitOutcome] = []
        idx = 0
        while idx < len(queries):
            with self._state.cond:
                while (
                    self.max_in_flight is not None
                    and self._in_flight >= self.max_in_flight
                    and self._accepting
                ):
                    if not block:
                        error = BackpressureError(
                            f"{self._in_flight} queries in flight "
                            f"(max_in_flight={self.max_in_flight}); "
                            f"{idx} of {len(queries)} batch queries admitted"
                        )
                        error.outcomes = list(outcomes)
                        raise error
                    remaining = (
                        None if deadline is None else deadline - time.monotonic()
                    )
                    if remaining is not None and remaining <= 0:
                        error = BackpressureError(
                            f"still {self._in_flight} queries in flight after "
                            f"{timeout}s (max_in_flight={self.max_in_flight}); "
                            f"{idx} of {len(queries)} batch queries admitted"
                        )
                        error.outcomes = list(outcomes)
                        raise error
                    self._state.cond.wait(timeout=remaining)
                if not self._accepting:
                    raise ServeError("engine is draining; submission refused")
                space = len(queries) - idx
                if self.max_in_flight is not None:
                    space = min(space, self.max_in_flight - self._in_flight)
                chunk = list(
                    zip(queries[idx : idx + space], classes[idx : idx + space])
                )
                now = self._state.now()

                pending: list[tuple[Query, str]] = []
                slots: list[int] = []
                for query, qclass in chunk:
                    self._emit(
                        "arrival",
                        now,
                        query.query_id,
                        query_class=qclass,
                        needs_translation=query.needs_translation,
                    )
                    if self.rollup is not None:
                        hit = self.rollup.serve(
                            query,
                            qclass,
                            now,
                            deadline=now + self.config.time_constraint,
                        )
                        if hit is not None:
                            self.cache_hits.append(hit)
                            self._emit(
                                "cache-hit",
                                now,
                                query.query_id,
                                target=hit.target,
                                answer=hit.answer,
                            )
                            if self._slo is not None:
                                self._slo.observe(True, now)
                            if self._adapt is not None:
                                self._adapt.on_outcome(True, now)
                            ticket = Ticket()
                            ticket._complete(hit, None)
                            outcomes.append(
                                SubmitOutcome(
                                    accepted=True, ticket=ticket, cache_hit=True
                                )
                            )
                            continue
                    if self._metrics is not None:
                        self._metrics.on_submitted()
                    if self.spans is not None:
                        self.spans.open(
                            query.query_id,
                            "serve.query",
                            start=now,
                            query_class=qclass,
                        )
                    pending.append((query, qclass))
                    slots.append(len(outcomes))
                    outcomes.append(SubmitOutcome(accepted=False))  # placeholder

                if pending:
                    decisions = self.scheduler.schedule_batch(
                        [query for query, _ in pending], now
                    )
                    for (slot, (query, qclass)), decision in zip(
                        zip(slots, pending), decisions
                    ):
                        if isinstance(decision, AdmissionRejected):
                            self.rejected += 1
                            if self._metrics is not None:
                                self._metrics.on_rejected()
                            self._emit(
                                "rejected",
                                now,
                                query.query_id,
                                reason=str(decision),
                            )
                            if self.spans is not None:
                                self.spans.close(
                                    query.query_id, end=now, status="rejected"
                                )
                            continue  # the placeholder already says rejected
                        ticket = self._admit(decision, query, qclass)
                        outcomes[slot] = SubmitOutcome(
                            accepted=True, decision=decision, ticket=ticket
                        )
                self._sample(now)
            idx += space
        return outcomes

    # -- task construction ---------------------------------------------------

    def _translation_task(
        self, decision: ScheduleDecision, query_class: str, ticket: Ticket
    ) -> ServeTask:
        query = decision.query
        assert decision.translation is not None
        est_trans = decision.translation.estimated_time

        def on_start(task: ServeTask) -> None:
            self._emit(
                "translation_start",
                task.started,
                query.query_id,
                server=self.trans_queue.name,
                waited=task.waited,
            )
            self._sample(task.started)

        def on_done(task: ServeTask) -> None:
            self._emit(
                "translation_finish",
                task.finished,
                query.query_id,
                server=self.trans_queue.name,
                service_time=task.service_time,
            )
            self.feedback.on_completion(
                self.trans_queue,
                task.service_time,
                est_trans,
                query_id=query.query_id,
            )
            if self._metrics is not None:
                self._metrics.on_stage("translation", task.service_time)
            if task.error is not None:
                self.errors.append((query.query_id, task.error))
                self._finish(ticket, None, task.error)
                if self.spans is not None:
                    self.spans.close(
                        query.query_id,
                        end=task.finished,
                        status="error",
                        stage="translation",
                    )
                if self._metrics is not None:
                    self._metrics.on_failed("translation", self._in_flight)
                if self._slo is not None:
                    self._slo.observe(False, task.finished)
                if self._adapt is not None:
                    self._adapt.on_outcome(False, task.finished)
            else:
                # realised pipeline handoff: the processing task arrives
                # at its partition at translation finish, exactly the
                # dependency edge validate_report's `dependency` family
                # audits against the realised translation timeline
                self.pools[decision.target.name].submit(
                    self._processing_task(
                        decision, query_class, ticket, task.result
                    )
                )
            self._sample(task.finished)

        return ServeTask(
            query_id=query.query_id,
            run=lambda: self.executor.translate(query),
            on_start=on_start,
            on_done=on_done,
        )

    def _processing_task(
        self,
        decision: ScheduleDecision,
        query_class: str,
        ticket: Ticket,
        resolved: Query,
    ) -> ServeTask:
        query = decision.query
        target = decision.target

        def on_start(task: ServeTask) -> None:
            self._emit(
                "service_start",
                task.started,
                query.query_id,
                server=target.name,
                waited=task.waited,
            )
            self._sample(task.started)

        def on_done(task: ServeTask) -> None:
            self._emit(
                "service_finish",
                task.finished,
                query.query_id,
                server=target.name,
                service_time=task.service_time,
            )
            self.feedback.on_completion(
                self.queues[target.name],
                task.service_time,
                decision.processing.estimated_time,
                query_id=query.query_id,
            )
            record = QueryRecord(
                query_id=query.query_id,
                query_class=query_class,
                target=target.name,
                submit_time=decision.processing.submit_time,
                finish_time=task.finished,
                deadline=decision.deadline,
                estimated_time=decision.processing.estimated_time,
                measured_time=task.service_time,
                translated=decision.translation is not None,
                answer=None if task.error is not None else task.result,
            )
            self.records.append(record)
            if task.error is not None:
                self.errors.append((query.query_id, task.error))
            self._finish(ticket, record, task.error)
            if self.spans is not None:
                self.spans.close(
                    query.query_id,
                    end=task.finished,
                    status="error" if task.error is not None else "ok",
                    met_deadline=task.error is None and record.met_deadline,
                )
            if self._metrics is not None:
                self._metrics.on_stage("service", task.service_time)
                if task.error is not None:
                    self._metrics.on_failed("service", self._in_flight)
                # failed-in-service queries still carry a record, so they
                # count as completed too; validate_metrics reconciles
                # admitted == completed + failed{translation} + in-flight
                self._metrics.on_completed(record, self._in_flight)
            if self._slo is not None:
                self._slo.observe(
                    task.error is None and record.met_deadline, task.finished
                )
            if self._adapt is not None:
                self._adapt.on_outcome(
                    task.error is None and record.met_deadline, task.finished
                )
            self._sample(task.finished)

        return ServeTask(
            query_id=query.query_id,
            run=lambda: self.executor.execute(target, resolved),
            on_start=on_start,
            on_done=on_done,
        )

    def _finish(
        self,
        ticket: Ticket,
        record: QueryRecord | None,
        error: BaseException | None,
    ) -> None:
        self._in_flight -= 1
        self._tickets.pop(ticket, None)
        ticket._complete(record, error)
        self._state.cond.notify_all()

    # -- adaptive capacity actuators ----------------------------------------

    def adapt_resplit(self, scheme) -> tuple[str, ...]:
        """Replace the live GPU partition set with ``scheme``.

        A new generation of queues and pools is created (names carry a
        generation suffix — ``Q_G1b`` — so the previous generation's
        books stay intact and auditable), started if the engine is
        running, and handed to the scheduler; in-flight work on the old
        partitions completes against the old queues.  Returns the new
        queue names.  Caller is the adaptive capacity controller, which
        fires under the engine lock; the re-entrant lock makes this safe
        from both inside and outside it.
        """
        with self._state.cond:
            scheme.validate_for(self.config.device)
            self._generation += 1
            suffix = chr(ord("a") + self._generation)
            new_queues = [
                PartitionQueue(
                    f"Q_{p.name}{suffix}", QueueKind.GPU, n_sm=p.n_sm
                )
                for p in scheme
            ]
            for q in new_queues:
                pool = WorkerPool(q.name, self._state, capacity=q.capacity)
                if self._pool_families is not None:
                    pool.metrics = self._pool_families.for_pool(q.name)
                if self.spans is not None:
                    pool.spans = PoolSpans(self.spans, q.name)
                self.queues[q.name] = q
                self.pools[q.name] = pool
                if self._started:
                    pool.start()
            self.gpu_queues = new_queues
            self.scheduler.replace_gpu_queues(new_queues)
            return tuple(q.name for q in new_queues)

    def adapt_resize_translation(self, workers: int) -> None:
        """Resize the translation partition's worker pool live.

        The pool's thread count and the translation queue's fluid
        :math:`T_Q` drain rate move together, so backlog estimates stay
        consistent with the capacity that actually serves them.
        """
        with self._state.cond:
            self.pools[self.trans_queue.name].resize(workers)
            self.trans_queue.capacity = workers

    # -- observability helpers ----------------------------------------------

    def _emit(self, kind: str, when, query_id: int, **data) -> None:
        if self._collector is not None:
            self._collector.emit(kind, when, query_id, **data)

    def _sample(self, when) -> None:
        if self._collector is not None:
            self._collector.sample(when)
        if self._snapshots is not None:
            self._snapshots.tick(when)
        if self._slo is not None:
            # heartbeat: slides the SLO window even when nothing is
            # completing, so a wedged run cannot export a stale healthy
            # burn rate (an empty window under load reads as all-missed)
            self._slo.tick(when, in_flight=self._in_flight)
        if self._adapt is not None:
            self._adapt.tick(when, self._in_flight)

    # -- drain / stop ------------------------------------------------------------

    def drain(self, timeout: float | None = 60.0) -> None:
        """Stop admission, wait for in-flight work, join all workers.

        ``timeout`` is a *real-time* liveness bound (independent of the
        injected clock): a hung executor fails the drain loudly instead
        of blocking forever.  Accepted queries that failed during
        execution re-raise here as :class:`~repro.errors.ServeError` —
        a drained engine either served everything or says why not.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._state.cond:
            self._accepting = False
            self._state.cond.notify_all()
            while self._in_flight > 0:
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    stranded = sorted(self._tickets.values())
                    raise ServeError(
                        f"drain timed out with {self._in_flight} queries in "
                        f"flight after {timeout}s; stranded query ids: "
                        f"{stranded}"
                    )
                self._state.cond.wait(timeout=remaining)
            # final forced snapshot: the drained registry state is what
            # validate_metrics reconciles against the report books
            if self._snapshots is not None:
                self._snapshots.write(self._state.now())
        self.stop()
        if self.errors:
            qid, first = self.errors[0]
            raise ServeError(
                f"{len(self.errors)} quer{'y' if len(self.errors) == 1 else 'ies'} "
                f"failed during execution; first: query {qid}: {first!r}"
            ) from first

    def stop(self, finish_queued: bool = True) -> None:
        """Join every pool's workers (no drain semantics; see drain()).

        Tickets of queries still in flight when the workers are gone are
        *abandoned*: their ``wait`` returns False instead of hanging on
        work that no longer has anyone to run it.
        """
        for pool in self.pools.values():
            pool.stop(finish_queued=finish_queued)
        self._started = False
        if self._exporter is not None:
            # engine-owned exporter: release the scrape port with the
            # engine (close() is idempotent, so an outer finally that
            # also stops the exporter stays correct)
            self._exporter.close()
        with self._state.cond:
            abandoned = list(self._tickets)
            self._tickets.clear()
            for ticket in abandoned:
                ticket._abandon()
            if abandoned:
                self._state.cond.notify_all()
            if self.spans is not None:
                # abandoned tickets' root spans would otherwise stay
                # open forever; close them flagged, never dropped
                self.spans.close_all(status="abandoned")

    # -- reporting ------------------------------------------------------------

    def report(self) -> SystemReport:
        """Aggregate the run into a standard :class:`SystemReport`.

        The result carries the same audit trail as a simulated report
        (submission books, capacities, outstanding counts, timelines),
        so :func:`repro.sim.validate.validate_report` and
        :func:`~repro.sim.validate.validate_trace` apply unchanged.
        ``exact_estimates`` is always False: realised wall-clock service
        can never exactly equal the model estimate, so the
        deterministic-drift family is (correctly) skipped.
        """
        with self._state.cond:
            horizon = self._state.now()
            return SystemReport.from_records(
                list(self.records),
                utilisations={
                    name: pool.utilisation(horizon)
                    for name, pool in self.pools.items()
                },
                horizon=horizon,
                timelines={
                    name: tuple(pool.history)
                    for name, pool in self.pools.items()
                },
                rejected=self.rejected,
                submissions={
                    name: q.submissions for name, q in self.queues.items()
                },
                capacities={
                    name: pool.peak_capacity for name, pool in self.pools.items()
                },
                outstanding={
                    name: q.outstanding for name, q in self.queues.items()
                },
                exact_estimates=False,
                feedback_stats=self.feedback.all_stats,
                cache_hits=list(self.cache_hits),
            )
