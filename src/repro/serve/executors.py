"""The real work behind each serving partition.

Figure 10's runtime pipeline maps onto three execution paths, and the
serving engine runs the *actual* laptop-scale implementations of each —
not the analytic performance models the scheduler estimates with:

* **CPU OLAP partition** — :class:`~repro.olap.parallel.
  ParallelAggregator` reductions over the materialised
  :class:`~repro.olap.cube.OLAPCube` the pyramid selects (the paper's
  OpenMP cube processing);
* **GPU partitions** — :meth:`~repro.gpu.device.SimulatedGPU.
  execute_query`, the per-SM sharded scan/reduce kernel substitutes of
  :mod:`repro.gpu.kernels`;
* **translation partition** — :class:`~repro.text.translator.
  TranslationService` dictionary lookups turning text literals into
  integer codes before GPU dispatch.

:class:`QueryExecutor` is the seam: the engine is executor-agnostic, so
the deterministic concurrency tests plug in :class:`NullExecutor`
(instant no-op work) and exercise scheduling/queueing/draining without
paying for real aggregation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol, runtime_checkable

from repro.core.partitions import PartitionQueue, QueueKind
from repro.errors import ServeError, TranslationError
from repro.olap.parallel import ParallelAggregator
from repro.query.model import Query

if TYPE_CHECKING:
    from repro.sim.system import SystemConfig

__all__ = ["QueryExecutor", "MaterialisedExecutor", "NullExecutor"]


@runtime_checkable
class QueryExecutor(Protocol):
    """Executes the per-partition work of one scheduled query."""

    def translate(self, query: Query) -> Query:  # pragma: no cover - protocol
        """Resolve text parameters to integer codes (translation stage)."""
        ...

    def execute(
        self, target: PartitionQueue, query: Query
    ) -> float | None:  # pragma: no cover - protocol
        """Run the processing stage on ``target``; returns the answer."""
        ...


class MaterialisedExecutor:
    """Real execution against a materialised :class:`SystemConfig`.

    Requires the config's device to hold a real
    :class:`~repro.relational.table.FactTable` and every pyramid level
    to be materialised — the same precondition as
    :attr:`repro.sim.system.HybridSystem.materialised`.

    ``cpu_threads`` sizes the CPU partition's
    :class:`~repro.olap.parallel.ParallelAggregator` (the paper's
    OpenMP thread count); it is independent of the scheduler's
    :math:`P_{CPU}` estimate model.
    """

    def __init__(self, config: "SystemConfig", cpu_threads: int = 4):
        if config.device.table is None:
            raise ServeError(
                "MaterialisedExecutor needs a device with a loaded fact "
                "table; analytic configs cannot execute real queries"
            )
        if not all(level.materialised for level in config.pyramid.levels):
            raise ServeError(
                "MaterialisedExecutor needs a fully materialised pyramid"
            )
        self._config = config
        self._aggregator = ParallelAggregator(num_threads=cpu_threads)

    def translate(self, query: Query) -> Query:
        if not query.needs_translation:
            return query
        service = self._config.translation_service
        if service is None:
            raise TranslationError(
                "serve run received text queries but no translation_service "
                "is configured"
            )
        return service.translate(query).query

    def execute(self, target: PartitionQueue, query: Query) -> float | None:
        if target.kind is QueueKind.CPU:
            # CPU-path text resolution happens inline (Figure 10 routes
            # only GPU-bound queries through the translation partition)
            resolved = self.translate(query)
            level = self._config.pyramid.select_level(resolved)
            assert level.cube is not None  # guaranteed by __init__
            return self._aggregator.aggregate(level.cube, resolved).value
        if target.kind is QueueKind.GPU:
            assert target.n_sm is not None
            if query.needs_translation:
                raise ServeError(
                    f"query {query.query_id} reached GPU partition "
                    f"{target.name} untranslated"
                )
            return self._config.device.execute_query(query, target.n_sm).value
        raise ServeError(f"cannot execute on queue kind {target.kind}")


class NullExecutor:
    """Instant no-op execution for deterministic engine tests.

    Translation returns the query unchanged (tests drive scheduling
    with stub estimates, so no real codes are needed) and processing
    returns no answer.  All queueing, dispatch, bookkeeping and trace
    behaviour is exercised; only the work itself is elided.
    """

    def translate(self, query: Query) -> Query:
        return query

    def execute(self, target: PartitionQueue, query: Query) -> float | None:
        return None
