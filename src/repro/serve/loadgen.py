"""Load generation for the wall-clock serving engine.

Two client models drive a :class:`~repro.serve.engine.ServeEngine`:

* :class:`OpenLoopGenerator` — arrivals follow a
  :class:`~repro.query.workload.QueryStream`'s timestamps regardless of
  how the system keeps up (the standard open-loop model; this is what
  ``python -m repro serve --rate R`` runs, with Poisson arrivals).
  When the engine pushes back, the generator either *sheds* the query
  (counting it, like a front-end returning 503) or blocks and lets the
  arrival process fall behind.
* :class:`ClosedLoopGenerator` — ``clients`` concurrent clients each
  submit a query, wait for its :class:`~repro.serve.engine.Ticket`,
  then immediately submit the next (the saturation model behind the
  paper's Tables 1-3 throughput numbers: offered load always equals
  system capacity).

Both pace themselves through the engine's injected
:class:`~repro.serve.clock.Clock`, so under a
:class:`~repro.serve.clock.FakeClock` an open-loop run over a
10-second stream completes in milliseconds with identical bookkeeping.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.errors import BackpressureError, ServeError
from repro.query.workload import QueryStream
from repro.serve.engine import ServeEngine

__all__ = ["LoadReport", "OpenLoopGenerator", "ClosedLoopGenerator"]


@dataclass(frozen=True)
class LoadReport:
    """What one load-generation run did to the engine.

    ``offered`` = ``accepted`` + ``rejected`` (admission control) +
    ``shed`` (backpressure, open-loop shed mode only).  ``duration`` is
    engine-relative seconds from the generator's start to its last
    submission returning.
    """

    offered: int
    accepted: int
    rejected: int
    shed: int
    duration: float

    def __post_init__(self) -> None:
        if self.offered != self.accepted + self.rejected + self.shed:
            raise ServeError(
                f"load report books do not balance: {self.offered} offered "
                f"!= {self.accepted} accepted + {self.rejected} rejected "
                f"+ {self.shed} shed"
            )

    @property
    def offered_rate(self) -> float:
        return self.offered / self.duration if self.duration > 0 else 0.0


class OpenLoopGenerator:
    """Replay a timed query stream against a serving engine.

    Parameters
    ----------
    engine:
        A started :class:`~repro.serve.engine.ServeEngine`.
    shed:
        When True (the default), backpressured submissions are dropped
        and counted instead of blocking — the open-loop contract (the
        arrival process never waits for the system).  When False,
        submissions block and arrivals drift late under overload.
    batch_size:
        When set, arrivals buffer until ``batch_size`` of them are due
        and the buffer goes through :meth:`~repro.serve.engine.
        ServeEngine.submit_batch` in one call (a trailing partial batch
        flushes at the end of the stream).  Pacing still follows each
        entry's timestamp — batching changes when *admission* happens,
        not when arrivals do.  In shed mode a backpressured flush keeps
        whatever the engine already admitted and sheds only the rest of
        that batch.
    """

    def __init__(
        self,
        engine: ServeEngine,
        *,
        shed: bool = True,
        batch_size: int | None = None,
    ):
        if batch_size is not None and batch_size < 1:
            raise ServeError(f"batch_size must be >= 1, got {batch_size}")
        self._engine = engine
        self._shed = shed
        self._batch_size = batch_size

    def run(self, stream: QueryStream) -> LoadReport:
        """Submit every stream entry at (or after) its timestamp."""
        engine = self._engine
        start = engine.elapsed
        offered = accepted = rejected = shed = 0
        buffer: list = []

        def flush() -> tuple[int, int, int]:
            queries = [t.query for t in buffer]
            classes = [t.query_class for t in buffer]
            n = len(buffer)
            buffer.clear()
            try:
                outcomes = engine.submit_batch(
                    queries, classes, block=not self._shed
                )
            except BackpressureError as exc:
                outcomes = getattr(exc, "outcomes", [])
            ok = sum(1 for o in outcomes if o.accepted)
            return ok, len(outcomes) - ok, n - len(outcomes)

        for timed in stream:
            # pace via the injected clock: under FakeClock this advances
            # time instead of blocking, keeping paced tests instant
            lag = (start + timed.time) - engine.elapsed
            if lag > 0:
                engine.clock.sleep(lag)
            offered += 1
            if self._batch_size is not None:
                buffer.append(timed)
                if len(buffer) >= self._batch_size:
                    a, r, s = flush()
                    accepted += a
                    rejected += r
                    shed += s
                continue
            try:
                outcome = engine.submit(
                    timed.query, timed.query_class, block=not self._shed
                )
            except BackpressureError:
                shed += 1
                continue
            if outcome.accepted:
                accepted += 1
            else:
                rejected += 1
        if buffer:
            a, r, s = flush()
            accepted += a
            rejected += r
            shed += s
        return LoadReport(
            offered=offered,
            accepted=accepted,
            rejected=rejected,
            shed=shed,
            duration=engine.elapsed - start,
        )


class ClosedLoopGenerator:
    """``clients`` concurrent think-time-free clients (saturation load).

    Each client thread repeatedly takes the next unserved stream entry,
    submits it blocking, and waits on the returned ticket before moving
    on — so exactly ``clients`` queries are in flight at any moment
    (fewer only while the shared stream runs dry).  Arrival timestamps
    in the stream are ignored: a closed loop's arrivals are completions.

    ``client_timeout`` bounds each ticket wait in *real* seconds (a
    liveness guard: a wedged engine fails the run instead of hanging
    it).
    """

    def __init__(
        self,
        engine: ServeEngine,
        *,
        clients: int = 4,
        client_timeout: float = 60.0,
    ):
        if clients < 1:
            raise ServeError(f"need at least one client, got {clients}")
        self._engine = engine
        self._clients = clients
        self._client_timeout = client_timeout

    def run(self, stream: QueryStream) -> LoadReport:
        engine = self._engine
        entries = list(stream)
        start = engine.elapsed
        lock = threading.Lock()
        next_idx = [0]
        counts = {"accepted": 0, "rejected": 0}
        failures: list[BaseException] = []

        def client() -> None:
            while True:
                with lock:
                    if next_idx[0] >= len(entries) or failures:
                        return
                    timed = entries[next_idx[0]]
                    next_idx[0] += 1
                try:
                    outcome = engine.submit(
                        timed.query, timed.query_class, block=True
                    )
                    if not outcome.accepted:
                        with lock:
                            counts["rejected"] += 1
                        continue
                    assert outcome.ticket is not None
                    if not outcome.ticket.wait(timeout=self._client_timeout):
                        raise ServeError(
                            f"client gave up on query "
                            f"{timed.query.query_id} after "
                            f"{self._client_timeout}s"
                        )
                    with lock:
                        counts["accepted"] += 1
                except BaseException as exc:  # noqa: BLE001 - re-raised below
                    with lock:
                        failures.append(exc)
                    return

        threads = [
            threading.Thread(target=client, name=f"serve-client-{i}", daemon=True)
            for i in range(min(self._clients, max(len(entries), 1)))
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        if failures:
            raise failures[0]
        return LoadReport(
            offered=counts["accepted"] + counts["rejected"],
            accepted=counts["accepted"],
            rejected=counts["rejected"],
            shed=0,
            duration=engine.elapsed - start,
        )
