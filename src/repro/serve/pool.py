"""Per-partition worker pools for the wall-clock serving engine.

A :class:`WorkerPool` is the live counterpart of the simulated-time
:class:`~repro.sim.resources.Server`: a FIFO task queue drained by
``capacity`` worker threads.  Its design goal is *auditability* — a
finished serve run must pass the same :mod:`repro.sim.validate`
invariant families as a simulated run, which requires that the realised
timeline (arrival/start/finish stamps per task) is exactly consistent
with the order things actually happened.

The mechanism is a single shared :class:`EngineState` lock (one
condition variable for the whole engine, re-entrant so completion
callbacks can hand work to downstream pools):

* *every* bookkeeping transition — enqueue + arrival stamp, dequeue +
  start stamp, finish stamp + completion callback — happens inside the
  lock, in one critical section;
* the actual *work* (cube aggregation, kernel scan, dictionary lookup)
  runs outside the lock, so pools genuinely execute in parallel.

Because stamping and queue mutation are atomic, per-pool enqueue order
equals arrival-stamp order and dequeue order equals start-stamp order,
so the FIFO and capacity discipline checks of
:func:`repro.sim.validate.validate_report` hold by construction — any
violation in a report indicates a real engine bug, not stamp jitter.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import BackpressureError, ServeError
from repro.serve.clock import Clock

__all__ = ["EngineState", "ServeTask", "WorkerPool"]


class EngineState:
    """Shared clock + lock for one serving engine.

    ``cond`` is a re-entrant condition variable: worker completion
    callbacks run while holding it and may submit follow-up tasks to
    other pools (translation -> GPU handoff) without deadlocking.
    ``now()`` returns seconds since the engine's origin, so reports and
    traces start near t=0 like simulated runs.
    """

    def __init__(self, clock: Clock):
        self.clock = clock
        self.cond = threading.Condition(threading.RLock())
        self._t0 = clock.now()

    def now(self) -> float:
        """Engine-relative monotonic time (0.0 at engine creation)."""
        return self.clock.now() - self._t0


@dataclass(eq=False)
class ServeTask:
    """One unit of live work for a pool.

    ``run`` executes outside the engine lock and its return value lands
    in ``result`` (an exception lands in ``error`` — pools never let a
    task kill a worker thread).  ``on_start``/``on_done`` fire under the
    engine lock at the corresponding transition; ``on_done`` is where
    the engine applies feedback, records metrics, and hands translated
    queries to their processing pool.
    """

    query_id: int
    run: Callable[[], Any]
    on_done: Callable[["ServeTask"], None]
    on_start: Callable[["ServeTask"], None] | None = None
    arrived: float = 0.0
    started: float | None = None
    finished: float | None = None
    result: Any = None
    error: BaseException | None = None

    #: wall seconds of realised service (finish - start stamps)
    @property
    def service_time(self) -> float:
        if self.started is None or self.finished is None:
            raise ServeError(f"task {self.query_id} has not finished")
        return self.finished - self.started

    @property
    def waited(self) -> float:
        if self.started is None:
            raise ServeError(f"task {self.query_id} has not started")
        return self.started - self.arrived


@dataclass
class _PoolStats:
    submitted: int = 0
    completed: int = 0
    failed: int = 0
    busy_time: float = 0.0
    total_wait: float = 0.0
    history: list[tuple[int, float, float]] = field(default_factory=list)


class WorkerPool:
    """FIFO station with ``capacity`` worker threads.

    Mirrors :class:`~repro.sim.resources.Server`'s observable surface
    (``queue_length``, ``in_service``, ``capacity``, ``history``,
    ``utilisation``) so :class:`~repro.sim.obs.TraceCollector` partition
    sampling and :class:`~repro.sim.metrics.SystemReport` construction
    work identically for live runs.

    Parameters
    ----------
    name:
        Partition label, matching its :class:`~repro.core.partitions.
        PartitionQueue` (``"Q_CPU"``, ``"Q_G1a"``, ``"Q_TRANS"``...).
    state:
        The engine-wide :class:`EngineState` (shared lock + clock).
    capacity:
        Worker-thread count (1 = the paper's single service station per
        partition; the translation partition gets
        ``translation_workers``).
    max_queue:
        Bound on *waiting* tasks.  ``None`` = unbounded (engine-level
        admission bounds total in-flight work instead); with a bound,
        blocking submits exert backpressure on the producer.
    """

    def __init__(
        self,
        name: str,
        state: EngineState,
        capacity: int = 1,
        max_queue: int | None = None,
    ):
        if capacity < 1:
            raise ServeError(f"pool {name!r} capacity must be >= 1, got {capacity}")
        if max_queue is not None and max_queue < 1:
            raise ServeError(f"pool {name!r} max_queue must be >= 1, got {max_queue}")
        self.name = name
        self.capacity = capacity
        self.max_queue = max_queue
        self._state = state
        #: optional :class:`repro.metrics.instrument.PoolInstruments`;
        #: None-guarded like every observability hook (zero cost unattached)
        self.metrics = None
        #: optional :class:`repro.obs.hooks.PoolSpans`; a separate slot
        #: because span recording needs task identity (query_id and the
        #: arrived/started/finished stamps), which the anonymous metrics
        #: protocol deliberately strips
        self.spans = None
        self._tasks: deque[ServeTask] = deque()
        self._in_service = 0
        self._stats = _PoolStats()
        self._threads: list[threading.Thread] = []
        self._stopping = False
        self._started = False
        self._peak_capacity = capacity
        self._retire = 0  # workers asked to exit by a live shrink
        self._spawn_seq = 0  # monotone thread-name suffix across resizes

    # -- observable state (Server-compatible surface) ----------------------

    @property
    def queue_length(self) -> int:
        return len(self._tasks)

    @property
    def in_service(self) -> int:
        return self._in_service

    @property
    def submitted(self) -> int:
        return self._stats.submitted

    @property
    def completed(self) -> int:
        return self._stats.completed

    @property
    def failed(self) -> int:
        return self._stats.failed

    @property
    def busy_time(self) -> float:
        return self._stats.busy_time

    @property
    def history(self) -> list[tuple[int, float, float]]:
        """(query_id, start, finish) per served task, completion order."""
        return self._stats.history

    @property
    def peak_capacity(self) -> int:
        """Highest worker count the pool ever had.

        Reports use this as the pool's capacity so the
        capacity-discipline audit stays sound across live shrinks: work
        that overlapped while the pool was larger is still within the
        capacity that actually existed at the time.
        """
        return self._peak_capacity

    def utilisation(self, horizon: float) -> float:
        """Mean fraction of workers busy over ``horizon`` (cf. Server).

        Uses :attr:`peak_capacity` so a pool that shrank mid-run can
        never report more than 100 % utilisation.
        """
        if horizon <= 0:
            return 0.0
        return self._stats.busy_time / (horizon * self._peak_capacity)

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        """Spawn the worker threads (idempotent)."""
        with self._state.cond:
            if self._started:
                return
            self._started = True
            self._stopping = False
        for _ in range(self.capacity):
            self._spawn_worker()

    def _spawn_worker(self) -> None:
        t = threading.Thread(
            target=self._worker,
            name=f"serve-{self.name}-{self._spawn_seq}",
            daemon=True,
        )
        self._spawn_seq += 1
        self._threads.append(t)
        t.start()

    def resize(self, capacity: int) -> None:
        """Change the worker count of a live pool.

        Growing spawns extra workers immediately (when the pool is
        started; otherwise :meth:`start` will spawn the new count).
        Shrinking marks the surplus workers for retirement: each exits
        at the top of its loop — a worker mid-task finishes that task
        first, so no work is dropped.  :attr:`peak_capacity` keeps the
        high-water mark for the capacity-discipline audit.
        """
        if capacity < 1:
            raise ServeError(
                f"pool {self.name!r} capacity must be >= 1, got {capacity}"
            )
        with self._state.cond:
            if self._stopping:
                raise ServeError(f"pool {self.name!r} is stopping")
            diff = capacity - (self.capacity - self._retire)
            self.capacity = capacity
            if capacity > self._peak_capacity:
                self._peak_capacity = capacity
            if diff > 0:
                cancelled = min(self._retire, diff)
                self._retire -= cancelled
                diff -= cancelled
                if self._started:
                    for _ in range(diff):
                        self._spawn_worker()
            elif diff < 0:
                self._retire += -diff
                self._state.cond.notify_all()

    def stop(self, finish_queued: bool = True) -> None:
        """Stop workers; by default they first drain queued tasks."""
        with self._state.cond:
            self._stopping = True
            if not finish_queued:
                self._tasks.clear()
            self._state.cond.notify_all()
        for t in self._threads:
            t.join(timeout=30.0)
            if t.is_alive():  # pragma: no cover - deadlock guard
                raise ServeError(f"pool {self.name!r} worker failed to stop")
        self._threads.clear()
        with self._state.cond:
            self._started = False

    # -- submission ------------------------------------------------------------

    def submit(
        self,
        task: ServeTask,
        block: bool = True,
        timeout: float | None = None,
    ) -> ServeTask:
        """Enqueue one task; stamps its arrival under the engine lock.

        With a ``max_queue`` bound and a full queue, a blocking submit
        waits for space (backpressure on the producer) and a
        non-blocking one raises :class:`~repro.errors.BackpressureError`
        immediately.  ``timeout`` bounds the blocking wait in *real*
        seconds (a liveness guard, independent of the injected clock).
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._state.cond:
            if self._stopping:
                raise ServeError(f"pool {self.name!r} is stopping")
            while (
                self.max_queue is not None and len(self._tasks) >= self.max_queue
            ):
                if not block:
                    raise BackpressureError(
                        f"pool {self.name!r} queue is full "
                        f"({len(self._tasks)}/{self.max_queue})"
                    )
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    raise BackpressureError(
                        f"pool {self.name!r} still full after {timeout}s"
                    )
                self._state.cond.wait(timeout=remaining)
                if self._stopping:
                    raise ServeError(f"pool {self.name!r} is stopping")
            task.arrived = self._state.now()
            self._tasks.append(task)
            self._stats.submitted += 1
            if self.metrics is not None:
                self.metrics.on_submitted(len(self._tasks))
            self._state.cond.notify_all()
        return task

    # -- the worker loop -----------------------------------------------------

    def _worker(self) -> None:
        while True:
            with self._state.cond:
                while not self._tasks and not self._stopping and not self._retire:
                    self._state.cond.wait()
                if self._retire:
                    # live shrink: this worker retires (mid-task workers
                    # only reach here after finishing their task)
                    self._retire -= 1
                    return
                if not self._tasks and self._stopping:
                    return
                # dequeue + start-stamp atomically: start order == FIFO
                # order even with capacity > 1 workers racing to pull
                task = self._tasks.popleft()
                task.started = self._state.now()
                self._in_service += 1
                if self.metrics is not None:
                    self.metrics.on_started(
                        task.waited, len(self._tasks), self._in_service
                    )
                if task.on_start is not None:
                    task.on_start(task)
            try:
                task.result = task.run()
            except Exception as exc:  # noqa: BLE001 - surfaced via task.error
                task.error = exc
            with self._state.cond:
                task.finished = self._state.now()
                self._in_service -= 1
                self._stats.completed += 1
                if task.error is not None:
                    self._stats.failed += 1
                self._stats.busy_time += task.service_time
                self._stats.total_wait += task.waited
                self._stats.history.append(
                    (task.query_id, task.started, task.finished)
                )
                if self.metrics is not None:
                    self.metrics.on_finished(
                        task.service_time,
                        task.error is not None,
                        len(self._tasks),
                        self._in_service,
                    )
                if self.spans is not None:
                    # tracer's buffer lock is leaf-level under the engine
                    # lock held here, so this cannot invert lock order
                    self.spans.on_task(task)
                try:
                    task.on_done(task)
                finally:
                    self._state.cond.notify_all()

    def __repr__(self) -> str:
        return (
            f"WorkerPool({self.name!r}, {self._in_service}/{self.capacity} busy, "
            f"queued={len(self._tasks)}, completed={self._stats.completed})"
        )
