"""Discrete-event evaluation plane.

Section IV: *"To test the efficiency of the proposed hybrid OLAP
solution ... we have developed a system model.  The setup of the model
is done based on characteristics extracted from performance
measurements."*  This package is that system model: a discrete-event
simulation whose service times come from the calibrated performance
models, letting the 32 GB-cube / 4 GB-table evaluation run on a laptop
while every scheduling decision is taken by the real
:class:`~repro.core.scheduler.HybridScheduler` against real queue state.

- :mod:`repro.sim.engine` — the event loop (clock + ordered event heap);
- :mod:`repro.sim.resources` — FIFO servers realising partition service;
- :mod:`repro.sim.metrics` — per-query records and the
  :class:`SystemReport` (queries/second, deadline hits, utilisation);
- :mod:`repro.sim.system` — :class:`HybridSystem`, wiring workload ->
  scheduler -> partitions -> feedback, in analytic (paper-scale) or
  materialised (real-answer) mode;
- :mod:`repro.sim.obs` — structured observability: lifecycle trace
  events and per-partition booked-vs-realised telemetry
  (:class:`TraceCollector`), zero-impact when unattached;
- :mod:`repro.sim.validate` — invariant checker auditing each run's
  realised schedule against the scheduler's :math:`T_Q` books, plus
  the trace cross-check (:func:`validate_trace`), the live-metrics
  reconciliation (:func:`validate_metrics`), the rollup-cache audit
  (:func:`validate_rollup`) and the multi-process fleet reconciliation
  (:func:`validate_fleet`).
"""

from repro.sim.engine import SimulationEngine
from repro.sim.resources import Server, Job
from repro.sim.metrics import QueryRecord, SystemReport
from repro.sim.obs import PartitionSample, TraceCollector, TraceEvent
from repro.sim.system import HybridSystem, SystemConfig
from repro.sim.validate import (
    ValidationResult,
    Violation,
    assert_fleet_valid,
    assert_metrics_valid,
    assert_rollup_valid,
    assert_trace_valid,
    assert_valid,
    seed_fleet_violation,
    seed_metrics_violation,
    seed_violation,
    validate_fleet,
    validate_metrics,
    validate_report,
    validate_rollup,
    validate_trace,
)

__all__ = [
    "SimulationEngine",
    "Server",
    "Job",
    "QueryRecord",
    "SystemReport",
    "HybridSystem",
    "SystemConfig",
    "PartitionSample",
    "TraceCollector",
    "TraceEvent",
    "ValidationResult",
    "Violation",
    "assert_fleet_valid",
    "assert_metrics_valid",
    "assert_rollup_valid",
    "assert_trace_valid",
    "assert_valid",
    "seed_fleet_violation",
    "seed_metrics_violation",
    "seed_violation",
    "validate_fleet",
    "validate_metrics",
    "validate_report",
    "validate_rollup",
    "validate_trace",
]
