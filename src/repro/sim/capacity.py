"""Sustainable-throughput search.

The paper reports system "processing rates" in queries/second under its
time constraint (Section IV).  A deadline-aware scheduler has two
regimes: below capacity, step 5 of Figure 10 places queries by
affinity (cheap queries on the CPU, column-bound ones on the GPU) and
deadlines are met; far above capacity every queue exceeds the deadline
and step 6 degrades to myopic completion-time balancing.  The measured
"rate" of such a system is the largest arrival rate it sustains while
still meeting deadlines — which this module finds by bisection on a
uniform arrival process.

Determinism: the workload stream for a given (spec, n, seed) is fixed;
only arrival spacing changes between probes, so the search is exactly
reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import SimulationError
from repro.query.workload import ArrivalProcess, WorkloadSpec
from repro.sim.metrics import SystemReport
from repro.sim.system import HybridSystem, SystemConfig

__all__ = ["RateProbe", "CapacityResult", "max_sustainable_rate"]


@dataclass(frozen=True)
class RateProbe:
    """One bisection probe: offered rate vs achieved behaviour.

    ``hit_target`` is the deadline-hit fraction the probe was judged
    against; :attr:`sustained` compares the achieved hit rate with it.
    (Historically ``sustained`` tested ``report is not None``, which is
    always True because :func:`max_sustainable_rate`'s ``probe()``
    always returns a report — every failed probe looked "sustained" to
    probe-history consumers.)
    """

    offered_rate: float
    report: SystemReport
    hit_target: float = 0.9

    @property
    def sustained(self) -> bool:
        return self.report.deadline_hit_rate >= self.hit_target

    @property
    def hit_rate(self) -> float:
        return self.report.deadline_hit_rate

    @property
    def achieved_rate(self) -> float:
        return self.report.queries_per_second


@dataclass(frozen=True)
class CapacityResult:
    """Outcome of :func:`max_sustainable_rate`."""

    rate: float
    report: SystemReport
    probes: tuple[RateProbe, ...]

    @property
    def queries_per_second(self) -> float:
        """Achieved throughput at the highest sustained offered rate."""
        return self.report.queries_per_second

    def explain(self) -> str:
        """Probe-history telemetry: one line per probe, in search order.

        A 12-iteration bisection makes 14 probes (two bound checks plus
        the iterations); this renders every one with its offered rate,
        achieved throughput, deadline-hit rate, and the sustained/failed
        verdict, so a capacity number is auditable instead of oracular.
        """
        lines = [
            f"{len(self.probes)} probes; best sustained offered rate "
            f"{self.rate:.2f} q/s "
            f"(achieved {self.queries_per_second:.2f} q/s):"
        ]
        for i, p in enumerate(self.probes, 1):
            verdict = "sustained" if p.sustained else "FAILED"
            lines.append(
                f"  probe {i:2d}: offered {p.offered_rate:9.2f} q/s -> "
                f"achieved {p.achieved_rate:8.2f} q/s, "
                f"hit rate {100 * p.hit_rate:5.1f}% "
                f"(target {100 * p.hit_target:.0f}%, {verdict})"
            )
        return "\n".join(lines)


def max_sustainable_rate(
    config: SystemConfig,
    workload: WorkloadSpec,
    n_queries: int = 2000,
    hit_target: float = 0.9,
    lo: float = 1.0,
    hi: float = 1000.0,
    iterations: int = 12,
    system_factory: Callable[[SystemConfig], HybridSystem] = HybridSystem,
) -> CapacityResult:
    """Bisect the largest uniform arrival rate meeting the deadline target.

    A rate is *sustained* when at least ``hit_target`` of the stream's
    queries finish before their deadline.  Returns the last sustained
    probe (rate, full report) plus the probe history for diagnostics.

    ``lo`` must be sustainable and ``hi`` unsustainable for the
    bisection to be meaningful; both are verified (cheaply, since the
    simulation runs in virtual time).
    """
    if not 0.0 < hit_target <= 1.0:
        raise SimulationError(f"hit_target must be in (0, 1], got {hit_target}")
    if lo <= 0 or hi <= lo:
        raise SimulationError(f"need 0 < lo < hi, got lo={lo}, hi={hi}")

    def probe(rate: float) -> RateProbe:
        stream = workload.generate(n_queries, ArrivalProcess("uniform", rate=rate))
        report = system_factory(config).run(stream)
        return RateProbe(offered_rate=rate, report=report, hit_target=hit_target)

    probes: list[RateProbe] = []

    low = probe(lo)
    probes.append(low)
    if not low.sustained:
        raise SimulationError(
            f"lower bound {lo} q/s is already unsustainable "
            f"(hit rate {low.hit_rate:.2f})"
        )
    high = probe(hi)
    probes.append(high)
    if high.sustained:
        # the system sustains the upper bound; report it rather than lie
        return CapacityResult(rate=hi, report=high.report, probes=tuple(probes))

    best = low
    lo_rate, hi_rate = lo, hi
    for _ in range(iterations):
        mid = 0.5 * (lo_rate + hi_rate)
        p = probe(mid)
        probes.append(p)
        if p.sustained:
            best = p
            lo_rate = mid
        else:
            hi_rate = mid
    return CapacityResult(
        rate=best.offered_rate, report=best.report, probes=tuple(probes)
    )
