"""Minimal discrete-event simulation engine.

A classic event-heap design: events are ``(time, sequence, action)``
triples ordered by time with FIFO tie-breaking (the sequence number
guarantees deterministic replay — two events at the same instant fire in
scheduling order, never by comparison of unorderable payloads).

The engine is deliberately tiny: the hybrid-OLAP system model needs
nothing beyond *schedule* and *run*, and a small core is easy to verify
exhaustively (see ``tests/sim/test_engine.py``).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable

from repro.errors import SimulationError

__all__ = ["SimulationEngine"]

Action = Callable[[], None]


class SimulationEngine:
    """Event loop with a virtual clock.

    The clock only moves forward: scheduling an event in the past is a
    :class:`SimulationError` (it would mean a causality bug in the
    system model, not a recoverable condition).
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Action]] = []
        self._seq = itertools.count()
        self.now: float = 0.0
        self.events_processed: int = 0
        self._running = False
        #: optional observation hook, called as ``observer(now)`` after
        #: every processed event (repro.sim.obs samples partition state
        #: here).  Observers must only *read* state — the engine's event
        #: order and clock are unaffected by the callback.
        self.observer: Callable[[float], None] | None = None

    def schedule_at(self, time: float, action: Action) -> None:
        """Schedule ``action`` at absolute ``time`` (>= now)."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event at {time} before current time {self.now}"
            )
        heapq.heappush(self._heap, (time, next(self._seq), action))

    def schedule_after(self, delay: float, action: Action) -> None:
        """Schedule ``action`` ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"delay must be >= 0, got {delay}")
        self.schedule_at(self.now + delay, action)

    @property
    def pending(self) -> int:
        return len(self._heap)

    def step(self) -> bool:
        """Process the next event; False when the heap is empty."""
        if not self._heap:
            return False
        time, _, action = heapq.heappop(self._heap)
        self.now = time
        self.events_processed += 1
        action()
        if self.observer is not None:
            self.observer(self.now)
        return True

    def run(self, until: float | None = None, max_events: int | None = None) -> int:
        """Drain the event heap.

        Stops when the heap empties, when the next event lies beyond
        ``until`` (the clock then advances to ``until``), or after
        ``max_events`` events (a runaway-model guard).  Returns the
        number of events processed by this call.
        """
        if self._running:
            raise SimulationError("run() re-entered from within an event action")
        self._running = True
        processed = 0
        try:
            while self._heap:
                if max_events is not None and processed >= max_events:
                    break
                next_time = self._heap[0][0]
                if until is not None and next_time > until:
                    self.now = until
                    break
                self.step()
                processed += 1
            else:
                if until is not None and until > self.now:
                    self.now = until
        finally:
            self._running = False
        return processed
