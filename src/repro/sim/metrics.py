"""Per-query records and system-level reports.

The paper's evaluation metric is queries processed per second, split by
whether the time constraint was met (*"The total number of processed
queries that meet the time constraints is recorded as well as number of
queries that did not"*).  :class:`SystemReport` computes those plus the
per-partition and per-class breakdowns the benchmarks print.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.core.feedback import FeedbackStats
from repro.core.partitions import Submission
from repro.units import Rate, fmt_seconds

__all__ = ["QueryRecord", "SystemReport"]


@dataclass(frozen=True)
class QueryRecord:
    """Complete life-cycle record of one query through the system."""

    query_id: int
    query_class: str
    target: str  # processing queue name
    submit_time: float
    finish_time: float
    deadline: float
    estimated_time: float
    measured_time: float
    translated: bool
    answer: float | None = None

    @property
    def response_time(self) -> float:
        return self.finish_time - self.submit_time

    @property
    def met_deadline(self) -> bool:
        return self.finish_time <= self.deadline

    @property
    def estimation_error(self) -> float:
        return self.measured_time - self.estimated_time


@dataclass(frozen=True)
class SystemReport:
    """Aggregated outcome of one simulated run.

    ``timelines`` carries per-partition ``(query_id, start, finish)``
    service records for Gantt rendering (:mod:`repro.sim.trace`).

    The remaining fields are the audit trail consumed by
    :mod:`repro.sim.validate`: ``submissions`` are the scheduler-side
    :class:`~repro.core.partitions.Submission` records per queue,
    ``capacities`` the per-server parallel-unit counts, ``outstanding``
    the per-queue jobs still in flight when the run stopped (non-zero
    only for truncated runs), and ``exact_estimates`` is True when
    realised service times equal the estimates exactly
    (``noise_sigma=0`` and ``noise_bias=1``), enabling the drift
    invariant.

    ``feedback_stats`` carries the per-queue estimation-error
    statistics of the :class:`~repro.core.feedback.FeedbackController`
    (Section III-G), so a run reports model calibration
    (:meth:`bias_ratio`, :attr:`overall_bias_ratio`) directly.

    ``cache_hits`` are queries answered by the :mod:`repro.olap.rollup`
    tier *before* reaching the scheduler: they appear in no submission
    book, timeline, or ``records`` entry (the ``rollup`` validation
    family enforces that disjointness) and are excluded from the
    scheduler-path headline metrics; :attr:`effective_queries_per_second`
    is the combined serving rate.
    """

    records: tuple[QueryRecord, ...]
    makespan: float
    horizon: float
    utilisations: Mapping[str, float]
    timelines: Mapping[str, tuple[tuple[int, float, float], ...]] = field(
        default_factory=dict
    )
    rejected: int = 0
    submissions: Mapping[str, tuple[Submission, ...]] = field(default_factory=dict)
    capacities: Mapping[str, int] = field(default_factory=dict)
    outstanding: Mapping[str, int] = field(default_factory=dict)
    exact_estimates: bool = False
    feedback_stats: Mapping[str, FeedbackStats] = field(default_factory=dict)
    cache_hits: tuple[QueryRecord, ...] = ()

    @classmethod
    def from_records(
        cls,
        records: Iterable[QueryRecord],
        utilisations: Mapping[str, float] | None = None,
        horizon: float | None = None,
        timelines: Mapping[str, tuple[tuple[int, float, float], ...]] | None = None,
        rejected: int = 0,
        submissions: Mapping[str, tuple[Submission, ...]] | None = None,
        capacities: Mapping[str, int] | None = None,
        outstanding: Mapping[str, int] | None = None,
        exact_estimates: bool = False,
        feedback_stats: Mapping[str, FeedbackStats] | None = None,
        cache_hits: Iterable[QueryRecord] | None = None,
    ) -> "SystemReport":
        recs = tuple(sorted(records, key=lambda r: r.finish_time))
        hits = tuple(sorted(cache_hits or (), key=lambda r: r.finish_time))
        audit = dict(
            submissions=dict(submissions or {}),
            capacities=dict(capacities or {}),
            outstanding=dict(outstanding or {}),
            exact_estimates=exact_estimates,
            feedback_stats=dict(feedback_stats or {}),
            cache_hits=hits,
        )
        spanning = recs + hits
        if not spanning:
            return cls(
                records=(),
                makespan=0.0,
                horizon=horizon or 0.0,
                utilisations=utilisations or {},
                timelines=dict(timelines or {}),
                rejected=rejected,
                **audit,
            )
        start = min(r.submit_time for r in spanning)
        end = max(r.finish_time for r in spanning)
        makespan = end - start
        return cls(
            records=recs,
            makespan=makespan,
            horizon=horizon if horizon is not None else makespan,
            utilisations=dict(utilisations or {}),
            timelines=dict(timelines or {}),
            rejected=rejected,
            **audit,
        )

    def gantt(self, width: int = 72) -> str:
        """ASCII Gantt chart of the run (see :mod:`repro.sim.trace`)."""
        from repro.sim.trace import render_gantt

        return render_gantt(
            self.timelines,
            horizon=self.horizon,
            width=width,
            capacities=self.capacities,
        )

    # -- headline metrics ---------------------------------------------------

    @property
    def completed(self) -> int:
        return len(self.records)

    @property
    def throughput(self) -> Rate:
        """Queries per second over the makespan (the Tables 1-3 metric)."""
        return Rate(self.completed, self.makespan)

    @property
    def queries_per_second(self) -> float:
        return self.throughput.per_second

    @property
    def met_deadline(self) -> int:
        return sum(1 for r in self.records if r.met_deadline)

    @property
    def missed_deadline(self) -> int:
        return self.completed - self.met_deadline

    @property
    def deadline_hit_rate(self) -> float:
        return self.met_deadline / self.completed if self.completed else 0.0

    @property
    def mean_response_time(self) -> float:
        if not self.records:
            return 0.0
        return sum(r.response_time for r in self.records) / self.completed

    # -- breakdowns ------------------------------------------------------------

    def by_target(self) -> dict[str, int]:
        """Completed-query counts per processing partition."""
        counts: dict[str, int] = {}
        for r in self.records:
            counts[r.target] = counts.get(r.target, 0) + 1
        return counts

    def by_class(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for r in self.records:
            counts[r.query_class] = counts.get(r.query_class, 0) + 1
        return counts

    def target_rate(self, prefix: str) -> float:
        """q/s of targets whose name starts with ``prefix`` (e.g. "Q_G")."""
        if self.makespan <= 0:
            return 0.0
        n = sum(c for t, c in self.by_target().items() if t.startswith(prefix))
        return n / self.makespan

    @property
    def translated_count(self) -> int:
        return sum(1 for r in self.records if r.translated)

    # -- rollup-cache tier (queries that never reached the scheduler) -------

    @property
    def cache_hit_count(self) -> int:
        return len(self.cache_hits)

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of all answered queries served by the rollup tier."""
        total = self.completed + self.cache_hit_count
        return self.cache_hit_count / total if total else 0.0

    @property
    def effective_queries_per_second(self) -> float:
        """Combined serving rate: scheduler-path plus cache-served."""
        if self.makespan <= 0:
            return 0.0
        return (self.completed + self.cache_hit_count) / self.makespan

    # -- model calibration (Section III-G feedback statistics) --------------

    def bias_ratio(self, queue: str) -> float:
        """measured/estimated totals for one partition (NaN if unseen)."""
        stats = self.feedback_stats.get(queue)
        return stats.bias_ratio if stats is not None else float("nan")

    @property
    def overall_bias_ratio(self) -> float:
        """System-wide measured/estimated ratio; 1.0 = calibrated models."""
        est = sum(s.total_estimated for s in self.feedback_stats.values())
        meas = sum(s.total_measured for s in self.feedback_stats.values())
        return meas / est if est > 0 else float("nan")

    def summary(self) -> str:
        """Multi-line human-readable report for examples and benches."""
        lines = [
            f"completed            : {self.completed}"
            + (f" (+{self.rejected} rejected)" if self.rejected else ""),
            f"makespan             : {fmt_seconds(self.makespan)}",
            f"throughput           : {self.queries_per_second:.1f} queries/s",
            f"met deadline         : {self.met_deadline} "
            f"({100.0 * self.deadline_hit_rate:.1f}%)",
            f"missed deadline      : {self.missed_deadline}",
            f"mean response time   : {fmt_seconds(self.mean_response_time)}",
            f"translated queries   : {self.translated_count}",
        ]
        if self.cache_hits:
            lines.append(
                f"cache-served         : {self.cache_hit_count} "
                f"({100.0 * self.cache_hit_rate:.1f}% of answers, "
                f"{self.effective_queries_per_second:.1f} effective q/s)"
            )
        for target, count in sorted(self.by_target().items()):
            util = self.utilisations.get(target)
            util_s = f", util {100 * util:.0f}%" if util is not None else ""
            lines.append(f"  {target:<10s}: {count} queries{util_s}")
        return "\n".join(lines)
