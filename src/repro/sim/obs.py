"""Structured observability for simulated runs (query-lifecycle tracing).

The paper's argument rests on quantities that are invisible in a
finished :class:`~repro.sim.metrics.SystemReport`: the per-queue
:math:`T_Q` beliefs the scheduler consults at each decision, which
Figure-10 branch (step 4/5/6) each query took, the translation-pipeline
stall, and the feedback delta of Section III-G.  This module makes all
of them first-class:

* **Lifecycle events** — every query emits typed :class:`TraceEvent`
  records as it moves through the system::

      arrival -> estimated -> decision
          [-> translation_start -> translation_finish -> feedback]
          -> service_start -> service_finish -> feedback

  (or ``arrival -> estimated -> rejected`` under admission control, or
  ``arrival -> cache-hit`` when the :mod:`repro.olap.rollup` tier
  answers from a materialised cuboid before the scheduler is consulted).
  The ``decision`` event carries the full ``(queue, T_R)`` candidate
  list of step 3 and the branch taken (:func:`classify_branch`).

* **Per-partition time series** — at every simulation event the
  collector samples each partition's *booked* state (:math:`T_Q`,
  backlog, outstanding jobs) next to its *realised* state (queue depth,
  jobs in service) as :class:`PartitionSample` rows, so the
  booked-vs-realised drift that :mod:`repro.sim.validate` checks as a
  pass/fail invariant becomes a plottable signal.

* **Exports** — :meth:`TraceCollector.write_jsonl` dumps everything as
  JSON Lines; :func:`repro.report.render_dashboard` renders per-partition
  sparklines next to the Gantt; ``python -m repro simulate --trace PATH``
  wires both into the CLI.

Tracing is strictly read-only: a run with a collector attached produces
a byte-identical :class:`SystemReport` to the same run without one, and
with no collector every hook is a ``None`` check (zero impact).  Use
:func:`repro.sim.validate.validate_trace` to cross-check a collected
trace against the queues' :class:`~repro.core.partitions.Submission`
books.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping, Sequence

from repro.core.partitions import PartitionQueue, QueueKind
from repro.errors import SimulationError

if TYPE_CHECKING:  # import cycle guards: sim.system imports this module
    from repro.core.feedback import FeedbackController, FeedbackStats
    from repro.core.scheduler import BaseScheduler, QueryEstimates, ScheduleDecision
    from repro.query.model import Query
    from repro.sim.engine import SimulationEngine
    from repro.sim.resources import Job, Server

__all__ = [
    "EVENT_KINDS",
    "TraceEvent",
    "PartitionSample",
    "TraceCollector",
    "classify_branch",
]

#: every event kind a collector can emit, in rough lifecycle order
EVENT_KINDS = (
    "arrival",
    "cache-hit",
    "batch",
    "estimated",
    "decision",
    "translation_start",
    "translation_finish",
    "service_start",
    "service_finish",
    "feedback",
    "rejected",
    # adapt-plane events: no query_id — they describe the system, not a
    # query (a model hot-swap / a capacity reconfiguration)
    "model_epoch",
    "reconfig",
)


def classify_branch(
    candidates: Sequence[tuple[PartitionQueue, float]],
    deadline: float,
    target: PartitionQueue | None,
) -> str:
    """Name the Figure-10 branch implied by a placement.

    ``candidates`` is step 3's ``(queue, T_R)`` list, ``target`` the
    queue actually chosen.  Deadline membership uses the inclusive
    boundary (``T_R <= T_D``), consistent with step 4 and
    :attr:`~repro.sim.metrics.QueryRecord.met_deadline`.

    * ``"cache-hit"`` — ``target`` is ``None``: the query never reached
      steps 1-6 because the :mod:`repro.olap.rollup` tier answered it
      from a materialised cuboid;
    * ``"step5-cpu"`` / ``"step5-gpu"`` — :math:`P_{BD}` non-empty and
      the target is inside it (the CPU-wins / slowest-GPU arms);
    * ``"step6-min-lateness"`` — :math:`P_{BD}` empty, the minimise-
      lateness fallback;
    * ``"step5-outside-pbd"`` — :math:`P_{BD}` non-empty but the target
      misses the deadline anyway: impossible for the paper's scheduler,
      diagnostic for deadline-blind baselines (MET, round-robin).
    """
    if target is None:
        return "cache-hit"
    p_bd = {q.name for q, t_r in candidates if t_r <= deadline}
    if not p_bd:
        return "step6-min-lateness"
    if target.name not in p_bd:
        return "step5-outside-pbd"
    if target.kind is QueueKind.CPU:
        return "step5-cpu"
    return "step5-gpu"


@dataclass(frozen=True)
class TraceEvent:
    """One typed lifecycle event.

    ``data`` is a kind-specific payload (JSON-serialisable by
    construction); ``query_id`` is ``None`` only for events not tied to
    a single query (none currently, but the schema allows it).
    """

    kind: str
    time: float
    query_id: int | None
    data: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise SimulationError(
                f"unknown trace event kind {self.kind!r}; expected one of "
                f"{EVENT_KINDS}"
            )

    def to_json(self) -> dict[str, Any]:
        return {
            "record": "event",
            "kind": self.kind,
            "time": self.time,
            "query_id": self.query_id,
            **self.data,
        }


@dataclass(frozen=True)
class PartitionSample:
    """One partition's booked-vs-realised state at one instant.

    ``t_q``/``backlog``/``outstanding`` are the scheduler's *beliefs*
    (the :class:`~repro.core.partitions.PartitionQueue` books);
    ``queue_depth``/``in_service`` are the *realised* server state.  The
    gap between the two columns is exactly the drift signal the
    Section III-G feedback mechanism exists to correct.
    """

    time: float
    queue: str
    t_q: float
    backlog: float
    outstanding: int
    queue_depth: int
    in_service: int

    def to_json(self) -> dict[str, Any]:
        return {
            "record": "sample",
            "time": self.time,
            "queue": self.queue,
            "t_q": self.t_q,
            "backlog": self.backlog,
            "outstanding": self.outstanding,
            "queue_depth": self.queue_depth,
            "in_service": self.in_service,
        }


class TraceCollector:
    """Collects lifecycle events and partition telemetry from one run.

    Pass an instance to :meth:`repro.sim.system.HybridSystem.run`; it
    attaches itself to the engine/server/scheduler/feedback hooks and
    fills :attr:`events` and :attr:`series`.  A collector is
    single-run: attach a fresh one per simulation.

    Parameters
    ----------
    sample_series:
        When False, only lifecycle events are collected (no per-event
        partition sampling) — cheaper for very long runs.
    """

    def __init__(self, sample_series: bool = True):
        self.events: list[TraceEvent] = []
        self.series: dict[str, list[PartitionSample]] = {}
        self._sample_series = sample_series
        self._attached = False
        self._engine: "SimulationEngine | None" = None
        self._now_fn = None
        self._queues: dict[str, PartitionQueue] = {}
        self._servers: dict[str, "Server"] = {}
        self._trans_name: str | None = None

    # -- wiring (called by HybridSystem.run) --------------------------------

    def attach(
        self,
        *,
        engine: "SimulationEngine",
        scheduler: "BaseScheduler",
        feedback: "FeedbackController",
        queues: Mapping[str, PartitionQueue],
        servers: Mapping[str, "Server"],
        trans_name: str,
    ) -> None:
        """Wire this collector into one simulation's hook points."""
        if self._attached:
            raise SimulationError(
                "TraceCollector is single-run: attach a fresh collector "
                "per simulation"
            )
        self._attached = True
        self._engine = engine
        self._now_fn = lambda: engine.now
        self._queues = dict(queues)
        self._servers = dict(servers)
        self._trans_name = trans_name
        engine.observer = self._on_engine_event
        scheduler.observer = self
        feedback.observer = self._on_feedback
        for name, server in servers.items():
            server.on_start = self._service_hook(name, started=True)
            server.on_finish = self._service_hook(name, started=False)

    def attach_serve(
        self,
        *,
        now_fn,
        scheduler: "BaseScheduler",
        feedback: "FeedbackController",
        queues: Mapping[str, PartitionQueue],
        stations: Mapping[str, Any],
        trans_name: str,
    ) -> None:
        """Wire this collector into a wall-clock serving engine.

        The serve plane has no :class:`~repro.sim.engine.
        SimulationEngine` and its stations stamp start/finish
        transitions themselves (the engine emits those events directly
        and calls :meth:`sample` at each transition), so only the
        scheduler and feedback hooks are installed here.  ``stations``
        is any mapping of partition name to an object with the
        :class:`~repro.sim.resources.Server` observable surface
        (``queue_length``/``in_service``); ``now_fn`` supplies the
        engine-relative clock used to stamp ``feedback`` events.
        """
        if self._attached:
            raise SimulationError(
                "TraceCollector is single-run: attach a fresh collector "
                "per serving engine"
            )
        self._attached = True
        self._now_fn = now_fn
        self._queues = dict(queues)
        self._servers = dict(stations)
        self._trans_name = trans_name
        scheduler.observer = self
        feedback.observer = self._on_feedback

    # -- emission ------------------------------------------------------------

    def emit(
        self, kind: str, time: float, query_id: int | None = None, **data: Any
    ) -> TraceEvent:
        event = TraceEvent(kind=kind, time=time, query_id=query_id, data=data)
        self.events.append(event)
        return event

    def _on_engine_event(self, now: float) -> None:
        self.sample(now)

    def sample(self, now: float) -> None:
        """Record one booked-vs-realised sample row per partition.

        Simulated runs call this from the engine's event hook; serving
        engines call it at every lifecycle transition (arrival, service
        start/finish) since there is no central event loop to hook.
        """
        if not self._sample_series:
            return
        for name, queue in self._queues.items():
            server = self._servers.get(name)
            self.series.setdefault(name, []).append(
                PartitionSample(
                    time=now,
                    queue=name,
                    t_q=queue.t_q,
                    backlog=queue.backlog(now),
                    outstanding=queue.outstanding,
                    queue_depth=server.queue_length if server is not None else 0,
                    in_service=server.in_service if server is not None else 0,
                )
            )

    def _service_hook(self, server_name: str, started: bool):
        translation = server_name == self._trans_name
        stage = "translation" if translation else "service"
        kind = f"{stage}_start" if started else f"{stage}_finish"

        def hook(now: float, job: "Job") -> None:
            data: dict[str, Any] = {
                "server": server_name,
                "service_time": job.service_time,
            }
            if started:
                data["waited"] = now - job.submitted_at
            self.emit(kind, now, job.query_id, **data)

        return hook

    # scheduler observer protocol ------------------------------------------

    def on_batch(self, n: int, now: float) -> None:
        """One batched admission pass over ``n`` queries began.

        Emitted by :meth:`~repro.core.scheduler.BaseScheduler.
        schedule_batch` before any per-query event, so a trace reader
        can attribute the following ``n`` estimated/decision pairs to
        one vectorised step-2 pass.  ``query_id`` is None — the event
        describes the batch, not a query.
        """
        self.emit("batch", now, None, n=n)

    def on_estimated(
        self, query: "Query", est: "QueryEstimates", deadline: float, now: float
    ) -> None:
        self.emit(
            "estimated",
            now,
            query.query_id,
            t_cpu=est.t_cpu,
            t_gpu={str(n_sm): t for n_sm, t in sorted(est.t_gpu.items())},
            t_trans=est.t_trans,
            deadline=deadline,
        )

    def on_decision(
        self,
        decision: "ScheduleDecision",
        candidates: Sequence[tuple[PartitionQueue, float]],
        now: float,
    ) -> None:
        translation = decision.translation
        self.emit(
            "decision",
            now,
            decision.query.query_id,
            target=decision.target.name,
            branch=classify_branch(candidates, decision.deadline, decision.target),
            candidates=[[q.name, t_r] for q, t_r in candidates],
            deadline=decision.deadline,
            estimated_response=decision.estimated_response,
            estimated_time=decision.processing.estimated_time,
            meets_deadline=decision.meets_deadline,
            translation=(
                None
                if translation is None
                else {
                    "estimated_time": translation.estimated_time,
                    "estimated_finish": translation.estimated_finish,
                }
            ),
        )

    def _on_feedback(
        self,
        queue_name: str,
        query_id: int | None,
        measured: float,
        estimated: float,
        applied: float,
        stats: "FeedbackStats",
    ) -> None:
        assert self._now_fn is not None
        self.emit(
            "feedback",
            self._now_fn(),
            query_id,
            queue=queue_name,
            measured=measured,
            estimated=estimated,
            error=measured - estimated,
            applied=applied,
            bias_ratio=stats.bias_ratio,
        )

    # -- accessors ------------------------------------------------------------

    def events_for(self, query_id: int) -> tuple[TraceEvent, ...]:
        """One query's event stream, in emission (= causal) order."""
        return tuple(e for e in self.events if e.query_id == query_id)

    def kinds_for(self, query_id: int) -> tuple[str, ...]:
        return tuple(e.kind for e in self.events_for(query_id))

    def event_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for e in self.events:
            counts[e.kind] = counts.get(e.kind, 0) + 1
        return counts

    def partition_series(self, queue_name: str) -> tuple[PartitionSample, ...]:
        return tuple(self.series.get(queue_name, ()))

    @property
    def query_ids(self) -> tuple[int, ...]:
        seen: dict[int, None] = {}
        for e in self.events:
            if e.query_id is not None:
                seen.setdefault(e.query_id, None)
        return tuple(seen)

    # -- export ------------------------------------------------------------

    def write_jsonl(self, path) -> int:
        """Dump events then samples as JSON Lines; returns lines written.

        Events come first (in emission order), then samples grouped by
        partition in time order; every line carries a ``record`` field
        (``"event"`` or ``"sample"``) so consumers can split the two
        streams with one filter.

        The write is crash-safe: everything lands in a tempfile in the
        target directory first and is renamed into place atomically
        (:func:`repro.obs.fileio.atomic_write_lines`), so an interrupted
        run can never leave a torn half-written trace behind.
        """
        from repro.obs.fileio import atomic_write_lines

        def render():
            for event in self.events:
                yield json.dumps(event.to_json())
            for name in self.series:
                for sample in self.series[name]:
                    yield json.dumps(sample.to_json())

        return atomic_write_lines(path, render())
