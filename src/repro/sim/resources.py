"""FIFO servers: the realised service processes behind partition queues.

A :class:`Server` is the physical counterpart of a
:class:`~repro.core.partitions.PartitionQueue`: the queue holds the
scheduler's *estimates* (:math:`T_Q` bookkeeping); the server executes
jobs with *realised* service times in simulated time, one at a time, in
submission order.  The gap between the two is exactly what the paper's
feedback mechanism corrects.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable

from repro.errors import SimulationError
from repro.sim.engine import SimulationEngine

__all__ = ["Job", "Server"]


@dataclass(eq=False)
class Job:
    """One unit of work for a server.

    ``on_complete(finish_time, job)`` fires when service ends.  The
    realised ``service_time`` is fixed at submission (drawn by the
    system model, possibly noisy around the estimate).
    """

    query_id: int
    service_time: float
    on_complete: Callable[[float, "Job"], None]
    submitted_at: float = 0.0
    started_at: float | None = None
    finished_at: float | None = None

    @property
    def waiting_time(self) -> float:
        if self.started_at is None:
            raise SimulationError(f"job {self.query_id} has not started")
        return self.started_at - self.submitted_at


class Server:
    """A FIFO station with ``capacity`` parallel service units.

    ``capacity=1`` is the paper's single-partition behaviour; higher
    capacities model a parallelised partition (e.g. the multi-threaded
    translation service the paper's conclusion proposes as future
    work).  Jobs still start in submission order; up to ``capacity`` of
    them are in service concurrently.
    """

    def __init__(self, engine: SimulationEngine, name: str, capacity: int = 1):
        if capacity < 1:
            raise SimulationError(f"server capacity must be >= 1, got {capacity}")
        self.engine = engine
        self.name = name
        self.capacity = capacity
        self._queue: deque[Job] = deque()
        self._active: list[Job] = []
        self.completed: int = 0
        self.busy_time: float = 0.0
        self.total_wait: float = 0.0
        self._jobs_seen = 0
        #: (query_id, start, finish) per served job, in completion order —
        #: the raw material for Gantt rendering (repro.sim.trace)
        self.history: list[tuple[int, float, float]] = []
        #: observation hooks (repro.sim.obs): ``on_start(now, job)`` fires
        #: when a job enters service, ``on_finish(finish, job)`` when its
        #: service ends (before successors start, so trace event order
        #: matches causal order).  Both must only read state.
        self.on_start: Callable[[float, Job], None] | None = None
        self.on_finish: Callable[[float, Job], None] | None = None

    # -- state ------------------------------------------------------------

    @property
    def busy(self) -> bool:
        """True when at least one service unit is occupied."""
        return bool(self._active)

    @property
    def in_service(self) -> int:
        return len(self._active)

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    def utilisation(self, horizon: float) -> float:
        """Mean fraction of service units busy over ``horizon``.

        For capacity 1 this is the classic utilisation; for larger
        capacities it is normalised by the unit count so 1.0 still
        means "fully saturated".  Jobs still in service at ``horizon``
        (runs truncated by ``until``/``max_events``) contribute their
        partial service up to the horizon — ``busy_time`` alone only
        accrues at completion and would under-report truncated runs.
        """
        if horizon <= 0:
            return 0.0
        in_flight = 0.0
        for job in self._active:
            assert job.started_at is not None
            in_flight += min(max(horizon - job.started_at, 0.0), job.service_time)
        return (self.busy_time + in_flight) / (horizon * self.capacity)

    # -- operation ------------------------------------------------------------

    def submit(self, job: Job) -> None:
        if job.service_time < 0:
            raise SimulationError(
                f"negative service time {job.service_time} for query {job.query_id}"
            )
        job.submitted_at = self.engine.now
        self._jobs_seen += 1
        self._queue.append(job)
        self._start_next()

    def _start_next(self) -> None:
        while self._queue and len(self._active) < self.capacity:
            job = self._queue.popleft()
            job.started_at = self.engine.now
            self._active.append(job)
            if self.on_start is not None:
                self.on_start(self.engine.now, job)
            self.engine.schedule_after(job.service_time, lambda j=job: self._finish(j))

    def _finish(self, job: Job) -> None:
        job.finished_at = self.engine.now
        self.completed += 1
        self.busy_time += job.service_time
        self.total_wait += job.waiting_time
        assert job.started_at is not None
        self.history.append((job.query_id, job.started_at, job.finished_at))
        self._active.remove(job)
        if self.on_finish is not None:
            self.on_finish(job.finished_at, job)
        # start successors before the completion callback so a callback
        # that submits new work observes a consistent server state
        self._start_next()
        job.on_complete(job.finished_at, job)

    def __repr__(self) -> str:
        return (
            f"Server({self.name!r}, {len(self._active)}/{self.capacity} busy, "
            f"queued={len(self._queue)}, completed={self.completed})"
        )
