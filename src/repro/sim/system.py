"""The hybrid OLAP system model: scheduler + partitions + translation.

:class:`HybridSystem` wires every subsystem into the evaluation loop of
Section IV:

* the :class:`~repro.core.scheduler.HybridScheduler` (or a baseline)
  decides placement using the calibrated performance models;
* :class:`~repro.core.partitions.PartitionQueue` objects carry the
  scheduler's :math:`T_Q` beliefs;
* :class:`~repro.sim.resources.Server` objects realise service in
  simulated time — CPU cube processing, GPU partition scans, and the
  translation partition's dictionary searches;
* :class:`~repro.core.feedback.FeedbackController` closes the
  measured-vs-estimated loop.

Two execution modes share all of the above:

* **analytic** (paper scale): the pyramid is analytic, the device holds
  a :class:`~repro.gpu.device.TableDescriptor`; only timing flows.
* **materialised** (laptop scale): real cubes and a real fact table;
  every completed query also carries its answer, and the integration
  tests assert CPU-path and GPU-path answers agree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

import numpy as np

from repro.core.feedback import FeedbackController
from repro.core.partitions import PartitionQueue, QueueKind
from repro.core.perfmodel import CPUPerfModel, DictPerfModel, PAPER_DICT_MODEL
from repro.core.scheduler import (
    BaseScheduler,
    HybridScheduler,
    QueryEstimates,
    ScheduleDecision,
)
from repro.errors import CubeNotAvailableError, SimulationError, TranslationError
from repro.gpu.device import SimulatedGPU
from repro.gpu.partitioning import PartitionScheme
from repro.olap.pyramid import CubePyramid, PyramidGroup
from repro.query.model import Query, decompose
from repro.query.workload import QueryStream
from repro.sim.engine import SimulationEngine
from repro.sim.metrics import QueryRecord, SystemReport
from repro.sim.obs import TraceCollector
from repro.sim.resources import Job, Server
from repro.text.translator import TranslationService

__all__ = ["SystemConfig", "HybridSystem", "SystemEstimator"]

SchedulerFactory = Callable[..., BaseScheduler]


@dataclass(frozen=True)
class SystemConfig:
    """Everything needed to instantiate one system variant.

    Attributes
    ----------
    cpu_model:
        :math:`P_{CPU}` for the CPU OLAP partition (eq. 7/10 preset or a
        calibrated fit).
    pyramid:
        The pre-calculated cube set (analytic or materialised).
    device:
        The simulated GPU with its fact table loaded.
    scheme:
        SM partitioning of the device (the paper's 2x1+2x2+2x4 default).
    dict_model:
        :math:`P_{DICT}` (eq. 17) used for :math:`T_{TRANS}` estimates
        and realised translation service times.
    translation_service:
        Real per-column dictionaries (materialised mode); supplies both
        dictionary lengths and actual literal-to-code translation.
    dict_lengths:
        Column -> :math:`D_L` map for analytic mode (no real
        dictionaries needed to *time* translation).
    time_constraint:
        :math:`T_C`, the relative deadline every query receives.
    scheduler_factory:
        Constructor called as ``factory(cpu_q, gpu_qs, trans_q,
        estimator, T_C)``; defaults to the paper's
        :class:`HybridScheduler`.
    feedback_gain:
        1.0 = paper's full :math:`T_Q` correction; 0.0 = feedback off.
    noise_sigma:
        Lognormal sigma of realised/estimated service-time ratio
        (0 = deterministic, estimates exact).
    noise_bias:
        Multiplicative *systematic* estimation error: realised service
        times are ``bias x estimate x lognormal-noise``.  1.0 = unbiased
        models; 1.5 means every model under-estimates by 50 % — the
        regime the paper's feedback mechanism exists for (*"errors in
        the estimation do not significantly affect the scheduling
        algorithm"*), quantified in the ABL-FEEDBACK benchmark.
    translation_workers:
        Parallel service units on the translation partition.  1 is the
        paper's configuration (a single preprocessing partition, whose
        saturation causes the ~7 % GPU slowdown); higher values model
        the parallel translation the conclusion defers to future work.
        The translation :class:`~repro.sim.resources.Server` gets this
        many parallel units (a single job still takes the full
        :math:`T_{TRANS}`), and the queue's :math:`T_Q` backlog drains
        at ``workers`` jobs at a time (fluid approximation — exact for
        throughput, the quantity the future-work ablation measures).
    seed:
        RNG seed for service-time noise.
    """

    cpu_model: CPUPerfModel
    pyramid: CubePyramid | PyramidGroup
    device: SimulatedGPU
    scheme: PartitionScheme
    dict_model: DictPerfModel = PAPER_DICT_MODEL
    translation_service: TranslationService | None = None
    dict_lengths: Mapping[str, int] | None = None
    time_constraint: float = 0.5
    scheduler_factory: SchedulerFactory = HybridScheduler
    feedback_gain: float = 1.0
    noise_sigma: float = 0.0
    noise_bias: float = 1.0
    translation_workers: int = 1
    seed: int = 2012

    def __post_init__(self) -> None:
        if self.time_constraint <= 0:
            raise SimulationError("time_constraint must be > 0")
        if self.noise_sigma < 0:
            raise SimulationError("noise_sigma must be >= 0")
        if self.noise_bias <= 0:
            raise SimulationError("noise_bias must be > 0")
        if self.translation_workers < 1:
            raise SimulationError("translation_workers must be >= 1")
        self.scheme.validate_for(self.device)


class SystemEstimator:
    """Step-2 estimates from the configured performance models."""

    def __init__(self, config: SystemConfig):
        self._config = config
        self._hierarchies = config.device.descriptor.schema.hierarchies
        self._total_columns = config.device.descriptor.total_columns

    def dictionary_length(self, column: str) -> int:
        cfg = self._config
        if cfg.translation_service is not None:
            return cfg.translation_service.dictionary_length(column)
        if cfg.dict_lengths is not None and column in cfg.dict_lengths:
            return int(cfg.dict_lengths[column])
        raise TranslationError(
            f"no dictionary length known for column {column!r}; configure "
            "translation_service or dict_lengths"
        )

    def estimate(self, query: Query) -> QueryEstimates:
        cfg = self._config
        # CPU (Section III-B/C): sub-cube size through the pyramid.
        try:
            sc_mb = cfg.pyramid.subcube_size_mb(query)
            t_cpu: float | None = cfg.cpu_model.time(sc_mb)
        except CubeNotAvailableError:
            t_cpu = None

        # GPU (Section III-E): column fraction per SM class.
        decomposition = decompose(query, self._hierarchies)
        t_gpu = {
            n_sm: cfg.device.estimate_time(decomposition, n_sm)
            for n_sm in cfg.scheme.distinct_sm_counts
        }

        # Translation (Section III-F): eq. 18 upper bound.  This is the
        # full single-job service time: parallel translation workers do
        # not make one translation faster — they are modelled as extra
        # service units on the translation Server and a proportionally
        # faster-draining Q_TRANS backlog (PartitionQueue.capacity).
        t_trans = 0.0
        for pred in decomposition.text_predicates:
            d_l = self.dictionary_length(pred.column)
            t_trans += len(pred.condition.text_values) * cfg.dict_model.time(d_l)
        return QueryEstimates(t_cpu=t_cpu, t_gpu=t_gpu, t_trans=t_trans)


class HybridSystem:
    """Runs query streams through the full hybrid system in simulated time."""

    def __init__(self, config: SystemConfig):
        self.config = config
        self.estimator = SystemEstimator(config)
        self._materialised = (
            config.device.table is not None
            and all(l.materialised for l in config.pyramid.levels)
        )

    @property
    def materialised(self) -> bool:
        """True when the run produces real answers, not just timing."""
        return self._materialised

    # -- service-time realisation -----------------------------------------

    def _noise(self, rng: np.random.Generator) -> float:
        sigma = self.config.noise_sigma
        bias = self.config.noise_bias
        if sigma == 0.0:
            return bias
        # mean-`bias` lognormal: sigma adds jitter, bias adds systematic
        # estimation error
        return bias * float(rng.lognormal(mean=-0.5 * sigma * sigma, sigma=sigma))

    # -- answers (materialised mode) -----------------------------------------

    def _answer_cpu(self, query: Query) -> float | None:
        if not self._materialised:
            return None
        resolved = self._resolve_text(query)
        return self.config.pyramid.answer(resolved)

    def _answer_gpu(self, query: Query, n_sm: int) -> float | None:
        if not self._materialised:
            return None
        resolved = self._resolve_text(query)
        execution = self.config.device.execute_query(resolved, n_sm)
        return execution.value

    def _resolve_text(self, query: Query) -> Query:
        if not query.needs_translation:
            return query
        service = self.config.translation_service
        if service is None:
            raise TranslationError(
                "materialised run received text queries but no "
                "translation_service is configured"
            )
        return service.translate(query).query

    # -- the run ------------------------------------------------------------

    def run(
        self,
        stream: QueryStream,
        max_events: int | None = None,
        collector: TraceCollector | None = None,
        metrics=None,
        snapshots=None,
        rollup=None,
    ) -> SystemReport:
        """Simulate one query stream; returns the aggregated report.

        ``collector`` attaches a :class:`~repro.sim.obs.TraceCollector`
        to the run's observation hooks.  Tracing is read-only: the
        returned report is identical with or without a collector.

        ``metrics`` attaches a :class:`~repro.metrics.registry.
        MetricsRegistry`: the same families the serving engine exports
        get fed from simulated-time events, so one dashboard/validation
        path covers both planes.  ``snapshots`` (a :class:`~repro.
        metrics.snapshots.SnapshotWriter` over the same registry) is
        ticked at every arrival and completion — simulated time stands
        in for the clock, making snapshot cadence fully deterministic.
        Both are read-only like the collector.

        ``rollup`` attaches a :class:`~repro.olap.rollup.RollupRouter`:
        arrivals the catalog covers are answered at their arrival
        instant (the simulated analogue of a microsecond cache hit —
        zero simulated cost), land in :attr:`SystemReport.cache_hits`
        and never reach the scheduler; misses proceed through Figure 10
        untouched.  When ``metrics`` is also given, the router gets a
        :class:`~repro.metrics.instrument.RollupMetrics` wired in.
        """
        cfg = self.config
        engine = SimulationEngine()
        rng = np.random.default_rng(cfg.seed)

        cpu_q = PartitionQueue("Q_CPU", QueueKind.CPU)
        trans_q = PartitionQueue(
            "Q_TRANS", QueueKind.TRANSLATION, capacity=cfg.translation_workers
        )
        gpu_qs = [
            PartitionQueue(f"Q_{p.name}", QueueKind.GPU, n_sm=p.n_sm)
            for p in cfg.scheme
        ]
        scheduler = cfg.scheduler_factory(
            cpu_q, gpu_qs, trans_q, self.estimator, cfg.time_constraint
        )
        feedback = FeedbackController(gain=cfg.feedback_gain)

        # the translation Server mirrors its queue's parallel units; the
        # paper's CPU and GPU partitions are single service stations
        servers: dict[str, Server] = {
            q.name: Server(engine, q.name, capacity=q.capacity)
            for q in [cpu_q, trans_q, *gpu_qs]
        }
        queues: dict[str, PartitionQueue] = {
            q.name: q for q in [cpu_q, trans_q, *gpu_qs]
        }
        if collector is not None:
            collector.attach(
                engine=engine,
                scheduler=scheduler,
                feedback=feedback,
                queues=queues,
                servers=servers,
                trans_name=trans_q.name,
            )

        run_metrics = None
        if metrics is not None:
            from repro.metrics.instrument import RuntimeMetrics

            run_metrics = RuntimeMetrics(metrics)
            scheduler.metrics_observer = run_metrics
            feedback.metrics_observer = run_metrics.on_feedback
        if metrics is not None and rollup is not None:
            from repro.metrics.instrument import RollupMetrics

            rollup.metrics = RollupMetrics(metrics)
        in_flight = [0]

        records: list[QueryRecord] = []
        cache_hits: list[QueryRecord] = []

        def complete_processing(
            decision: ScheduleDecision, query_class: str, realised: float
        ) -> Callable[[float, Job], None]:
            def _on_complete(finish: float, job: Job) -> None:
                queue = queues[decision.target.name]
                feedback.on_completion(
                    queue,
                    realised,
                    decision.processing.estimated_time,
                    query_id=decision.query.query_id,
                )
                answer: float | None = None
                if self._materialised:
                    if decision.target.kind is QueueKind.CPU:
                        answer = self._answer_cpu(decision.query)
                    else:
                        assert decision.target.n_sm is not None
                        answer = self._answer_gpu(decision.query, decision.target.n_sm)
                record = QueryRecord(
                    query_id=decision.query.query_id,
                    query_class=query_class,
                    target=decision.target.name,
                    submit_time=decision.processing.submit_time,
                    finish_time=finish,
                    deadline=decision.deadline,
                    estimated_time=decision.processing.estimated_time,
                    measured_time=realised,
                    translated=decision.translation is not None,
                    answer=answer,
                )
                records.append(record)
                if run_metrics is not None:
                    in_flight[0] -= 1
                    run_metrics.on_stage("service", realised)
                    run_metrics.on_completed(record, in_flight[0])
                if snapshots is not None:
                    snapshots.tick(finish)

            return _on_complete

        def submit_processing(
            decision: ScheduleDecision, query_class: str
        ) -> None:
            realised = decision.processing.estimated_time * self._noise(rng)
            servers[decision.target.name].submit(
                Job(
                    query_id=decision.query.query_id,
                    service_time=realised,
                    on_complete=complete_processing(decision, query_class, realised),
                )
            )

        rejected = [0]

        def on_arrival(query: Query, query_class: str) -> Callable[[], None]:
            def _arrive() -> None:
                from repro.errors import AdmissionRejected

                if (
                    self._materialised
                    and query.needs_translation
                    and cfg.translation_service is None
                ):
                    # fail at arrival with a clear message rather than
                    # deep inside _resolve_text at completion time
                    raise TranslationError(
                        f"query {query.query_id} carries text parameters but "
                        "this materialised run has no translation_service "
                        "configured; text-free workloads run fine without one"
                    )
                if collector is not None:
                    collector.emit(
                        "arrival",
                        engine.now,
                        query.query_id,
                        query_class=query_class,
                        needs_translation=query.needs_translation,
                    )
                if rollup is not None:
                    hit = rollup.serve(
                        query,
                        query_class,
                        engine.now,
                        deadline=engine.now + cfg.time_constraint,
                    )
                    if hit is not None:
                        # zero-cost hit: answered at the arrival instant,
                        # never offered to the scheduler (no submitted/
                        # admitted counts, no submission books)
                        cache_hits.append(hit)
                        if collector is not None:
                            collector.emit(
                                "cache-hit",
                                engine.now,
                                query.query_id,
                                target=hit.target,
                                answer=hit.answer,
                            )
                        if snapshots is not None:
                            snapshots.tick(engine.now)
                        return
                if run_metrics is not None:
                    run_metrics.on_submitted()
                if snapshots is not None:
                    snapshots.tick(engine.now)
                try:
                    decision = scheduler.schedule(query, engine.now)
                except AdmissionRejected as exc:
                    rejected[0] += 1
                    if run_metrics is not None:
                        run_metrics.on_rejected()
                    if collector is not None:
                        collector.emit(
                            "rejected", engine.now, query.query_id, reason=str(exc)
                        )
                    return
                if run_metrics is not None:
                    in_flight[0] += 1
                    run_metrics.on_admitted(in_flight[0])
                if decision.translation is not None:
                    est_trans = decision.translation.estimated_time
                    realised_trans = est_trans * self._noise(rng)

                    def _translated(finish: float, job: Job) -> None:
                        feedback.on_completion(
                            trans_q,
                            realised_trans,
                            est_trans,
                            query_id=query.query_id,
                        )
                        if run_metrics is not None:
                            run_metrics.on_stage("translation", realised_trans)
                        submit_processing(decision, query_class)

                    servers[trans_q.name].submit(
                        Job(
                            query_id=query.query_id,
                            service_time=realised_trans,
                            on_complete=_translated,
                        )
                    )
                else:
                    submit_processing(decision, query_class)

            return _arrive

        for timed in stream:
            engine.schedule_at(timed.time, on_arrival(timed.query, timed.query_class))

        engine.run(max_events=max_events)

        if snapshots is not None:
            snapshots.write(engine.now)

        horizon = engine.now
        utilisations = {
            name: server.utilisation(horizon) for name, server in servers.items()
        }
        timelines = {name: tuple(server.history) for name, server in servers.items()}
        return SystemReport.from_records(
            records,
            utilisations=utilisations,
            horizon=horizon,
            timelines=timelines,
            rejected=rejected[0],
            submissions={name: q.submissions for name, q in queues.items()},
            capacities={name: s.capacity for name, s in servers.items()},
            outstanding={name: q.outstanding for name, q in queues.items()},
            exact_estimates=cfg.noise_sigma == 0.0 and cfg.noise_bias == 1.0,
            feedback_stats=feedback.all_stats,
            cache_hits=cache_hits,
        )
