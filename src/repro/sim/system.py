"""The hybrid OLAP system model: scheduler + partitions + translation.

:class:`HybridSystem` wires every subsystem into the evaluation loop of
Section IV:

* the :class:`~repro.core.scheduler.HybridScheduler` (or a baseline)
  decides placement using the calibrated performance models;
* :class:`~repro.core.partitions.PartitionQueue` objects carry the
  scheduler's :math:`T_Q` beliefs;
* :class:`~repro.sim.resources.Server` objects realise service in
  simulated time — CPU cube processing, GPU partition scans, and the
  translation partition's dictionary searches;
* :class:`~repro.core.feedback.FeedbackController` closes the
  measured-vs-estimated loop.

Two execution modes share all of the above:

* **analytic** (paper scale): the pyramid is analytic, the device holds
  a :class:`~repro.gpu.device.TableDescriptor`; only timing flows.
* **materialised** (laptop scale): real cubes and a real fact table;
  every completed query also carries its answer, and the integration
  tests assert CPU-path and GPU-path answers agree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

import numpy as np

from repro.core.feedback import FeedbackController
from repro.core.partitions import PartitionQueue, QueueKind
from repro.core.perfmodel import CPUPerfModel, DictPerfModel, PAPER_DICT_MODEL
from repro.core.scheduler import (
    BaseScheduler,
    HybridScheduler,
    QueryEstimates,
    ScheduleDecision,
)
from repro.errors import (
    AdmissionRejected,
    CubeNotAvailableError,
    SimulationError,
    TranslationError,
)
from repro.gpu.device import SimulatedGPU
from repro.gpu.partitioning import PartitionScheme
from repro.olap.pyramid import CubePyramid, PyramidGroup
from repro.query.model import Query, decompose, dimension_column
from repro.query.workload import QueryStream
from repro.sim.engine import SimulationEngine
from repro.sim.metrics import QueryRecord, SystemReport
from repro.sim.obs import TraceCollector
from repro.sim.resources import Job, Server
from repro.text.translator import TranslationService
from repro.units import bytes_to_mb

__all__ = ["SystemConfig", "HybridSystem", "SystemEstimator", "ModelBundle"]

SchedulerFactory = Callable[..., BaseScheduler]


@dataclass(frozen=True)
class ModelBundle:
    """The hot-swappable model families a :class:`SystemEstimator` reads.

    One frozen value object holds all three families so the online
    recalibrator (:mod:`repro.adapt`) can replace them with a *single*
    attribute assignment — decisions concurrent with a swap see either
    the whole old bundle or the whole new one, never a mix.

    ``gpu`` is a :class:`~repro.gpu.timing.LinearColumnTiming` (or any
    ``GPUTimingModel``); ``None`` delegates GPU estimates to the
    configured device's own timing model, which is the frozen-model
    behaviour and keeps unadapted runs bit-identical.
    """

    cpu: CPUPerfModel
    dict_model: DictPerfModel
    gpu: object | None = None


@dataclass(frozen=True)
class SystemConfig:
    """Everything needed to instantiate one system variant.

    Attributes
    ----------
    cpu_model:
        :math:`P_{CPU}` for the CPU OLAP partition (eq. 7/10 preset or a
        calibrated fit).
    pyramid:
        The pre-calculated cube set (analytic or materialised).
    device:
        The simulated GPU with its fact table loaded.
    scheme:
        SM partitioning of the device (the paper's 2x1+2x2+2x4 default).
    dict_model:
        :math:`P_{DICT}` (eq. 17) used for :math:`T_{TRANS}` estimates
        and realised translation service times.
    translation_service:
        Real per-column dictionaries (materialised mode); supplies both
        dictionary lengths and actual literal-to-code translation.
    dict_lengths:
        Column -> :math:`D_L` map for analytic mode (no real
        dictionaries needed to *time* translation).
    time_constraint:
        :math:`T_C`, the relative deadline every query receives.
    scheduler_factory:
        Constructor called as ``factory(cpu_q, gpu_qs, trans_q,
        estimator, T_C)``; defaults to the paper's
        :class:`HybridScheduler`.
    feedback_gain:
        1.0 = paper's full :math:`T_Q` correction; 0.0 = feedback off.
    noise_sigma:
        Lognormal sigma of realised/estimated service-time ratio
        (0 = deterministic, estimates exact).
    noise_bias:
        Multiplicative *systematic* estimation error: realised service
        times are ``bias x estimate x lognormal-noise``.  1.0 = unbiased
        models; 1.5 means every model under-estimates by 50 % — the
        regime the paper's feedback mechanism exists for (*"errors in
        the estimation do not significantly affect the scheduling
        algorithm"*), quantified in the ABL-FEEDBACK benchmark.
    translation_workers:
        Parallel service units on the translation partition.  1 is the
        paper's configuration (a single preprocessing partition, whose
        saturation causes the ~7 % GPU slowdown); higher values model
        the parallel translation the conclusion defers to future work.
        The translation :class:`~repro.sim.resources.Server` gets this
        many parallel units (a single job still takes the full
        :math:`T_{TRANS}`), and the queue's :math:`T_Q` backlog drains
        at ``workers`` jobs at a time (fluid approximation — exact for
        throughput, the quantity the future-work ablation measures).
    seed:
        RNG seed for service-time noise.
    """

    cpu_model: CPUPerfModel
    pyramid: CubePyramid | PyramidGroup
    device: SimulatedGPU
    scheme: PartitionScheme
    dict_model: DictPerfModel = PAPER_DICT_MODEL
    translation_service: TranslationService | None = None
    dict_lengths: Mapping[str, int] | None = None
    time_constraint: float = 0.5
    scheduler_factory: SchedulerFactory = HybridScheduler
    feedback_gain: float = 1.0
    noise_sigma: float = 0.0
    noise_bias: float = 1.0
    translation_workers: int = 1
    seed: int = 2012

    def __post_init__(self) -> None:
        if self.time_constraint <= 0:
            raise SimulationError("time_constraint must be > 0")
        if self.noise_sigma < 0:
            raise SimulationError("noise_sigma must be >= 0")
        if self.noise_bias <= 0:
            raise SimulationError("noise_bias must be > 0")
        if self.translation_workers < 1:
            raise SimulationError("translation_workers must be >= 1")
        self.scheme.validate_for(self.device)


class SystemEstimator:
    """Step-2 estimates from the configured performance models.

    :meth:`estimate` is the per-query path; :meth:`estimate_batch`
    produces the same :class:`QueryEstimates` — bit-identical floats —
    for a whole batch, amortising the Python-level feature extraction
    and evaluating each model family as one NumPy pass.
    """

    def __init__(self, config: SystemConfig):
        self._config = config
        self._hierarchies = config.device.descriptor.schema.hierarchies
        self._total_columns = config.device.descriptor.total_columns
        # Static lookup tables for the batch fast path: fact-table column
        # per (dimension, resolution), pyramid level tables, dictionary
        # lengths.  All derived from immutable config, built lazily.
        self._colnames: dict[str, tuple[str, ...]] = {
            dim: tuple(dimension_column(dim, lvl.name) for lvl in h.levels)
            for dim, h in self._hierarchies.items()
        }
        self._pyramid_tables_cache: dict[int, tuple] = {}
        self._dl_cache: dict[str, int] = {}
        self._static = self._build_static()
        # The live model bundle.  Every estimate reads this slot once;
        # install() replaces it wholesale, so a reader mid-swap sees one
        # coherent epoch.  Until install() is ever called the bundle
        # simply mirrors the frozen config (gpu=None delegates to the
        # device), keeping unadapted runs bit-identical to history.
        self._models = ModelBundle(
            cpu=config.cpu_model, dict_model=config.dict_model, gpu=None
        )

    # -- live models (online recalibration) ---------------------------------

    def models(self) -> ModelBundle:
        """The bundle currently answering estimates."""
        return self._models

    def install(self, bundle: ModelBundle) -> None:
        """Hot-swap the live models in one atomic attribute write.

        Callers serialise installs against decisions externally (the
        serving engine's lock; the simulator's single thread) — this
        method itself is a single reference assignment, so even an
        unserialised reader can never observe a torn bundle.
        """
        self._models = bundle

    def _build_static(self):
        """One-time tables for the single-pyramid batch fast path.

        Returns ``(info, bases, n_levels)`` — or ``None`` when the
        configured pyramid is a :class:`PyramidGroup` (level tables
        depend on the query) or has non-monotone per-dimension
        resolutions (O(conditions) level selection would be wrong).

        ``info[dim] = (cols, first_ok, per_level)``: the fact-table
        column per resolution, the smallest answering level index per
        resolution (``None`` when the dimension is absent from the
        pyramid), and per level ``(resolution, cardinality,
        cardinalities_per_res)``.  ``bases[lvl]`` is the level's *full*
        cube size in bytes (cell size times every dimension's
        cardinality); a condition on a dimension replaces that
        dimension's full cardinality with its width via exact integer
        division, so the product equals the scalar path's.
        """
        pyramid = self._config.pyramid
        if isinstance(pyramid, PyramidGroup) or not isinstance(pyramid, CubePyramid):
            return None
        tables, first_ok = self._pyramid_tables(pyramid)
        if first_ok is None:
            return None
        n_levels = len(tables)
        bases = []
        for _res_of, cell_nbytes, dim_table in tables:
            base = cell_nbytes
            for _name, _r, card_r, _cards in dim_table:
                base *= card_r
            bases.append(base)
        rows_by_dim: dict[str, list[tuple[int, int, tuple[int, ...]]]] = {}
        for _res_of, _cell, dim_table in tables:
            for name, r, card_r, cards in dim_table:
                rows_by_dim.setdefault(name, []).append((r, card_r, cards))
        info: dict[str, tuple] = {}
        for dim, cols in self._colnames.items():
            fo = first_ok.get(dim)
            rows = rows_by_dim.get(dim)
            if fo is None or rows is None:
                info[dim] = (cols, None, None)
            else:
                info[dim] = (cols, fo, tuple(rows))
        return info, tuple(bases), n_levels

    def dictionary_length(self, column: str) -> int:
        cfg = self._config
        if cfg.translation_service is not None:
            return cfg.translation_service.dictionary_length(column)
        if cfg.dict_lengths is not None and column in cfg.dict_lengths:
            return int(cfg.dict_lengths[column])
        raise TranslationError(
            f"no dictionary length known for column {column!r}; configure "
            "translation_service or dict_lengths"
        )

    def estimate(self, query: Query) -> QueryEstimates:
        cfg = self._config
        models = self._models  # one read: estimates use one coherent epoch
        # CPU (Section III-B/C): sub-cube size through the pyramid.
        try:
            sc_mb = cfg.pyramid.subcube_size_mb(query)
            t_cpu: float | None = models.cpu.time(sc_mb)
        except CubeNotAvailableError:
            t_cpu = None

        # GPU (Section III-E): column fraction per SM class.
        decomposition = decompose(query, self._hierarchies)
        if models.gpu is None:
            t_gpu = {
                n_sm: cfg.device.estimate_time(decomposition, n_sm)
                for n_sm in cfg.scheme.distinct_sm_counts
            }
        else:
            frac = decomposition.column_fraction(self._total_columns)
            t_gpu = {
                n_sm: models.gpu.query_time(frac, n_sm)
                for n_sm in cfg.scheme.distinct_sm_counts
            }

        # Translation (Section III-F): eq. 18 upper bound.  This is the
        # full single-job service time: parallel translation workers do
        # not make one translation faster — they are modelled as extra
        # service units on the translation Server and a proportionally
        # faster-draining Q_TRANS backlog (PartitionQueue.capacity).
        t_trans = 0.0
        for pred in decomposition.text_predicates:
            d_l = self.dictionary_length(pred.column)
            t_trans += len(pred.condition.text_values) * models.dict_model.time(d_l)
        return QueryEstimates(t_cpu=t_cpu, t_gpu=t_gpu, t_trans=t_trans)

    def features(self, query: Query):
        """Integer features of one query for the adapt plane.

        Returns ``(sc_mb, column_fraction, text_terms)`` — the same
        tuple the batch fast path extracts — or ``None`` when the
        query's shape is outside the fast path.  The online
        recalibrator pairs these with realised latencies to build
        refit windows without re-deriving pyramid or decomposition
        state.
        """
        return self._features(query)

    # -- batch estimation (the vectorised step-2 pass) ---------------------

    def _dl(self, column: str) -> int:
        d_l = self._dl_cache.get(column)
        if d_l is None:
            d_l = self.dictionary_length(column)
            self._dl_cache[column] = d_l
        return d_l

    def _pyramid_tables(self, pyramid: CubePyramid):
        """Lookup tables for the lean sub-cube size replica.

        Returns ``(tables, first_ok)``: ``tables`` has one entry per
        pyramid level (smallest-first, the selection order) of
        ``(res_of, cell_nbytes, dim_table)`` with ``dim_table`` rows
        ``(dim_name, level_res, cardinality_at_res,
        cardinalities_per_res)`` in the pyramid's dimension order.

        ``first_ok[dim][r]`` is the index of the smallest level whose
        resolution for ``dim`` is ``>= r`` — valid for level selection
        because per-dimension resolutions are non-decreasing across the
        size-sorted levels (checked here); when a pyramid violates that
        monotonicity ``first_ok`` is ``None`` and callers scan levels
        the way ``select_level`` does.
        """
        hit = self._pyramid_tables_cache.get(id(pyramid))
        if hit is not None:
            return hit[1], hit[2]
        tables = []
        for level in pyramid.levels:
            res_of = {d.name: r for d, r in zip(pyramid.dimensions, level.resolutions)}
            dim_table = [
                (d.name, r, d.cardinality(r), tuple(l.cardinality for l in d.levels))
                for d, r in zip(pyramid.dimensions, level.resolutions)
            ]
            tables.append((res_of, level.cell_nbytes, dim_table))
        n_levels = len(tables)
        first_ok: dict[str, tuple[int, ...]] | None = {}
        for j, d in enumerate(pyramid.dimensions):
            res_by_level = [lvl.resolutions[j] for lvl in pyramid.levels]
            if any(a > b for a, b in zip(res_by_level, res_by_level[1:])):
                first_ok = None
                break
            per_res = []
            for r in range(len(d.levels)):
                idx = next((i for i, lr in enumerate(res_by_level) if lr >= r), n_levels)
                per_res.append(idx)
            first_ok[d.name] = tuple(per_res)
        # pin the pyramid so the id() key can never be recycled
        self._pyramid_tables_cache[id(pyramid)] = (pyramid, tables, first_ok)
        return tables, first_ok

    def _features(self, query: Query):
        """Integer features of one query for the batch fast path.

        Returns ``(sc_mb, column_fraction, text_terms)`` where
        ``text_terms`` is ``[(num_literals, dictionary_length), ...]`` in
        condition order, or ``None`` when the query's shape is outside
        the fast path (grouped queries, unknown dimensions, invalid
        resolutions or ranges) — those fall back to :meth:`estimate`,
        which computes, or raises, exactly what the per-query path would.

        Every arithmetic step mirrors ``CubePyramid.subcube_size_mb`` /
        ``decompose`` operation for operation; the maths is integer
        until the final ``bytes_to_mb`` and division, so the floats
        handed to the models are identical to the scalar path's.
        """
        if query.group_by or self._total_columns <= 0:
            return None
        static = self._static
        if static is None:
            return self._features_generic(query)
        info, bases, n_levels = static
        conditions = query.conditions
        terms: list[tuple[int, int]] = []
        lvl = 0
        ents: list[tuple] = []
        for cond in conditions:
            entry = info.get(cond.dimension)
            if entry is None:
                return None  # unknown dimension: scalar path raises
            cols, fo, rows = entry
            res = cond.resolution  # Condition validates res >= 0
            if res >= len(cols):
                return None  # invalid resolution: scalar path raises
            text_values = cond.text_values
            if text_values:
                terms.append((len(text_values), self._dl(cols[res])))
            if lvl < n_levels:
                if fo is None or res >= len(fo):
                    lvl = n_levels  # dimension absent from the pyramid
                else:
                    idx = fo[res]
                    if idx > lvl:
                        lvl = idx
                    ents.append((cond, rows))
        # conditions have unique dimensions, so each contributes one
        # distinct predicate column — exactly decompose()'s set size
        ncols = len(conditions) + (len(query.measures) if query.agg != "count" else 0)
        frac = ncols / self._total_columns
        sc_mb: float | None = None
        if lvl < n_levels:
            n = bases[lvl]
            for cond, rows in ents:
                r, card_r, cards = rows[lvl]
                if cond.lo is not None:  # numeric range
                    if r == cond.resolution:
                        width = cond.hi - cond.lo
                    else:
                        card_from = cards[cond.resolution]
                        if not 0 <= cond.lo <= cond.hi <= card_from:
                            return None  # scalar path raises ResolutionError
                        factor = card_r // card_from
                        width = cond.hi * factor - cond.lo * factor
                elif cond.codes:
                    width = len(set(cond.codes)) * (card_r // cards[cond.resolution])
                else:  # text literals resolved natively by the CPU
                    width = len(set(cond.text_values)) * (card_r // cards[cond.resolution])
                # swap this dimension's full cardinality for the width;
                # integer-exact, so the product matches subcube_size_mb
                n = n // card_r * width
            sc_mb = bytes_to_mb(n)
        return sc_mb, frac, terms

    def _features_generic(self, query: Query):
        """Per-query-pyramid variant of :meth:`_features` (PyramidGroup
        configs and pyramids with non-monotone level resolutions)."""
        conditions = query.conditions
        colnames = self._colnames
        pred_cols = set()
        add_col = pred_cols.add
        terms: list[tuple[int, int]] = []
        for cond in conditions:
            cols = colnames.get(cond.dimension)
            res = cond.resolution  # Condition validates res >= 0
            if cols is None or res >= len(cols):
                return None
            col = cols[res]
            add_col(col)
            text_values = cond.text_values
            if text_values:
                terms.append((len(text_values), self._dl(col)))
        ncols = len(pred_cols) + (len(query.measures) if query.agg != "count" else 0)
        frac = ncols / self._total_columns

        pyramid = self._config.pyramid
        if isinstance(pyramid, PyramidGroup):
            try:
                pyramid = pyramid.pyramid_for(query)
            except CubeNotAvailableError:
                pyramid = None
        elif not isinstance(pyramid, CubePyramid):
            return None
        sc_mb: float | None = None
        if pyramid is not None:
            tables, first_ok = self._pyramid_tables(pyramid)
            n_levels = len(tables)
            selected = None
            if first_ok is not None:
                # O(conditions) selection: the answering level is the max
                # over conditions of each dimension's first-OK index.
                lvl = 0
                for cond in conditions:
                    fo = first_ok.get(cond.dimension)
                    if fo is None or cond.resolution >= len(fo):
                        lvl = n_levels
                        break
                    idx = fo[cond.resolution]
                    if idx > lvl:
                        lvl = idx
                if lvl < n_levels:
                    selected = tables[lvl]
            else:
                for entry in tables:
                    res_of = entry[0]
                    answerable = True
                    for cond in conditions:
                        r = res_of.get(cond.dimension)
                        if r is None or r < cond.resolution:
                            answerable = False
                            break
                    if answerable:
                        selected = entry
                        break
            if selected is not None:
                cond_by_dim = {c.dimension: c for c in conditions}
                _res_of, cell_nbytes, dim_table = selected
                n = cell_nbytes
                for name, r, card_r, cards in dim_table:
                    cond = cond_by_dim.get(name)
                    if cond is None:
                        width = card_r
                    elif cond.lo is not None:  # numeric range
                        if r == cond.resolution:
                            width = cond.hi - cond.lo
                        else:
                            card_from = cards[cond.resolution]
                            if not 0 <= cond.lo <= cond.hi <= card_from:
                                return None  # scalar path raises ResolutionError
                            factor = card_r // card_from
                            width = cond.hi * factor - cond.lo * factor
                    elif cond.codes:
                        factor = card_r // cards[cond.resolution]
                        width = len(set(cond.codes)) * factor
                    else:  # text literals resolved natively by the CPU
                        factor = card_r // cards[cond.resolution]
                        width = len(set(cond.text_values)) * factor
                    n *= width
                sc_mb = bytes_to_mb(n)
        return sc_mb, frac, terms

    def estimate_batch(self, queries) -> list[QueryEstimates]:
        """Step-2 estimates for a whole batch, bit-identical to looping
        :meth:`estimate`.

        Feature extraction (sub-cube sizes, column fractions, dictionary
        lengths) runs as a lean integer pass per query against
        precomputed lookup tables; each model family — :math:`P_{CPU}`,
        :math:`P_{GPU}` per SM class, :math:`P_{DICT}` — is then
        evaluated as one vectorised ``time_many`` /
        ``estimate_time_many`` call over the whole batch.  Queries whose
        shape the fast path does not cover are estimated individually,
        so the result is always defined (or raises) exactly as the
        scalar path would.
        """
        queries = list(queries)
        cfg = self._config
        models = self._models  # one read: the batch uses one coherent epoch
        results: list[QueryEstimates | None] = [None] * len(queries)

        fast_idx: list[int] = []
        fracs: list[float] = []
        sc_idx: list[int] = []
        sc_vals: list[float] = []
        all_counts: list[int] = []
        all_dls: list[int] = []
        term_spans: list[tuple[int, int, int]] = []  # (query index, start, stop)
        for i, query in enumerate(queries):
            feats = self._features(query)
            if feats is None:
                results[i] = self.estimate(query)
                continue
            sc_mb, frac, terms = feats
            fast_idx.append(i)
            fracs.append(frac)
            if sc_mb is not None:
                sc_idx.append(i)
                sc_vals.append(sc_mb)
            if terms:
                start = len(all_counts)
                for count, d_l in terms:
                    all_counts.append(count)
                    all_dls.append(d_l)
                term_spans.append((i, start, len(all_counts)))
        if not fast_idx:
            return results  # type: ignore[return-value]

        nonnegative = True
        t_cpu_by_idx: dict[int, float] = {}
        if sc_vals:
            cpu_times = models.cpu.time_many(np.asarray(sc_vals, dtype=np.float64))
            nonnegative &= float(cpu_times.min()) >= 0
            for i, t in zip(sc_idx, cpu_times.tolist()):
                t_cpu_by_idx[i] = t

        sm_counts = cfg.scheme.distinct_sm_counts
        frac_arr = np.asarray(fracs, dtype=np.float64)
        gpu_cols = {}
        for n_sm in sm_counts:
            if models.gpu is None:
                col = cfg.device.estimate_time_many(frac_arr, n_sm)
            else:
                col = models.gpu.query_time_many(frac_arr, n_sm)
            if col.size:
                nonnegative &= float(col.min()) >= 0
            gpu_cols[n_sm] = col.tolist()

        t_trans_by_idx: dict[int, float] = {}
        if all_counts:
            per_term = np.asarray(all_counts, dtype=np.float64) * models.dict_model.time_many(
                np.asarray(all_dls, dtype=np.float64)
            )
            costs = per_term.tolist()
            for i, start, stop in term_spans:
                # accumulate in condition order with the scalar loop's
                # `+=` so rounding matches estimate() exactly
                t_trans = 0.0
                for c in costs[start:stop]:
                    t_trans += c
                t_trans_by_idx[i] = t_trans
                nonnegative &= t_trans >= 0

        # Non-negativity was checked vectorised above, so the per-query
        # __post_init__ re-check can be skipped; a pathological model
        # (negative output) drops to the validating constructor, which
        # raises exactly where the scalar loop would.
        build = QueryEstimates.trusted if nonnegative else QueryEstimates
        cpu_get = t_cpu_by_idx.get
        trans_get = t_trans_by_idx.get
        sm_list = list(sm_counts)  # a scheme always has >= 1 partition
        for i, row in zip(fast_idx, zip(*(gpu_cols[n_sm] for n_sm in sm_list))):
            results[i] = build(cpu_get(i), dict(zip(sm_list, row)), trans_get(i, 0.0))
        return results  # type: ignore[return-value]


class HybridSystem:
    """Runs query streams through the full hybrid system in simulated time."""

    def __init__(self, config: SystemConfig):
        self.config = config
        self.estimator = SystemEstimator(config)
        self._materialised = (
            config.device.table is not None
            and all(l.materialised for l in config.pyramid.levels)
        )

    @property
    def materialised(self) -> bool:
        """True when the run produces real answers, not just timing."""
        return self._materialised

    # -- service-time realisation -----------------------------------------

    def _noise(self, rng: np.random.Generator) -> float:
        sigma = self.config.noise_sigma
        bias = self.config.noise_bias
        if sigma == 0.0:
            return bias
        # mean-`bias` lognormal: sigma adds jitter, bias adds systematic
        # estimation error
        return bias * float(rng.lognormal(mean=-0.5 * sigma * sigma, sigma=sigma))

    # -- answers (materialised mode) -----------------------------------------

    def _answer_cpu(self, query: Query) -> float | None:
        if not self._materialised:
            return None
        resolved = self._resolve_text(query)
        return self.config.pyramid.answer(resolved)

    def _answer_gpu(self, query: Query, n_sm: int) -> float | None:
        if not self._materialised:
            return None
        resolved = self._resolve_text(query)
        execution = self.config.device.execute_query(resolved, n_sm)
        return execution.value

    def _resolve_text(self, query: Query) -> Query:
        if not query.needs_translation:
            return query
        service = self.config.translation_service
        if service is None:
            raise TranslationError(
                "materialised run received text queries but no "
                "translation_service is configured"
            )
        return service.translate(query).query

    # -- the run ------------------------------------------------------------

    def run(
        self,
        stream: QueryStream,
        max_events: int | None = None,
        collector: TraceCollector | None = None,
        metrics=None,
        snapshots=None,
        rollup=None,
        batch_size: int | None = None,
        adapt=None,
        obs=None,
    ) -> SystemReport:
        """Simulate one query stream; returns the aggregated report.

        ``collector`` attaches a :class:`~repro.sim.obs.TraceCollector`
        to the run's observation hooks.  Tracing is read-only: the
        returned report is identical with or without a collector.

        ``metrics`` attaches a :class:`~repro.metrics.registry.
        MetricsRegistry`: the same families the serving engine exports
        get fed from simulated-time events, so one dashboard/validation
        path covers both planes.  ``snapshots`` (a :class:`~repro.
        metrics.snapshots.SnapshotWriter` over the same registry) is
        ticked at every arrival and completion — simulated time stands
        in for the clock, making snapshot cadence fully deterministic.
        Both are read-only like the collector.

        ``rollup`` attaches a :class:`~repro.olap.rollup.RollupRouter`:
        arrivals the catalog covers are answered at their arrival
        instant (the simulated analogue of a microsecond cache hit —
        zero simulated cost), land in :attr:`SystemReport.cache_hits`
        and never reach the scheduler; misses proceed through Figure 10
        untouched.  When ``metrics`` is also given, the router gets a
        :class:`~repro.metrics.instrument.RollupMetrics` wired in.

        ``adapt`` attaches an :class:`~repro.adapt.plane.AdaptivePlane`
        through the same None-guarded observer slots: the online
        recalibrator consumes this run's estimate/decision/feedback
        stream and may hot-swap refitted models into the estimator;
        the capacity controller acts on SLO breach/recover events
        (admission tightening only in simulation — partition re-splits
        and worker resizes are serve-plane actuators).  ``adapt=None``
        leaves every hook site a single ``is not None`` check and the
        run byte-identical to an unadapted one.

        ``obs`` attaches a :class:`~repro.obs.span.SpanTracer` (the
        distributed span plane): one ``sim.query`` root span per
        head-sampled admitted query, with ``scheduler.estimate`` /
        ``scheduler.decision`` point spans via the scheduler's fourth
        observer slot and ``queue.wait`` / ``pool.service`` stage spans
        booked from the realised simulated timeline.  The tracer's
        clock is re-bound to simulated time, so span timelines are
        deterministic and live in the report's timebase.  Read-only
        like every other observer.

        ``batch_size`` switches admission to the vectorised
        :meth:`~repro.core.scheduler.BaseScheduler.schedule_batch`
        path: arrivals buffer (after their arrival events and rollup
        lookups fire at arrival time) until ``batch_size`` of them need
        a decision, and the whole buffer is decided in one pass at the
        batch-completing arrival's instant — a trailing partial batch
        flushes with the final arrival.  Decisions are byte-identical
        to the sequential scheduler's given the same queue states, but
        buffering changes *when* queries are booked, so reports differ
        from ``batch_size=None`` exactly as a coarser admission cadence
        should.  ``batch_size=1`` flushes every arrival immediately.
        """
        if batch_size is not None and batch_size < 1:
            raise SimulationError(
                f"batch_size must be >= 1, got {batch_size}"
            )
        cfg = self.config
        engine = SimulationEngine()
        rng = np.random.default_rng(cfg.seed)

        cpu_q = PartitionQueue("Q_CPU", QueueKind.CPU)
        trans_q = PartitionQueue(
            "Q_TRANS", QueueKind.TRANSLATION, capacity=cfg.translation_workers
        )
        gpu_qs = [
            PartitionQueue(f"Q_{p.name}", QueueKind.GPU, n_sm=p.n_sm)
            for p in cfg.scheme
        ]
        scheduler = cfg.scheduler_factory(
            cpu_q, gpu_qs, trans_q, self.estimator, cfg.time_constraint
        )
        feedback = FeedbackController(gain=cfg.feedback_gain)

        # the translation Server mirrors its queue's parallel units; the
        # paper's CPU and GPU partitions are single service stations
        servers: dict[str, Server] = {
            q.name: Server(engine, q.name, capacity=q.capacity)
            for q in [cpu_q, trans_q, *gpu_qs]
        }
        queues: dict[str, PartitionQueue] = {
            q.name: q for q in [cpu_q, trans_q, *gpu_qs]
        }
        if collector is not None:
            collector.attach(
                engine=engine,
                scheduler=scheduler,
                feedback=feedback,
                queues=queues,
                servers=servers,
                trans_name=trans_q.name,
            )

        run_metrics = None
        if metrics is not None:
            from repro.metrics.instrument import RuntimeMetrics

            run_metrics = RuntimeMetrics(metrics)
            scheduler.metrics_observer = run_metrics
            feedback.metrics_observer = run_metrics.on_feedback
        if adapt is not None:
            adapt.attach_sim(
                scheduler=scheduler,
                feedback=feedback,
                estimator=self.estimator,
                collector=collector,
                metrics=metrics,
            )
        if metrics is not None and rollup is not None:
            from repro.metrics.instrument import RollupMetrics

            rollup.metrics = RollupMetrics(metrics)
        if obs is not None:
            from repro.obs.hooks import (
                RollupSpans,
                SchedulerSpans,
                TranslatorSpans,
            )
            from repro.sim.obs import classify_branch

            # simulated-clock domain: span timestamps are engine.now
            # readings, the same timebase as the report books
            obs.bind_clock(lambda: engine.now)
            if metrics is not None:
                from repro.metrics.instrument import ObsMetrics

                obs.metrics = ObsMetrics(metrics)
            scheduler.span_observer = SchedulerSpans(obs, classify_branch)
            if rollup is not None:
                rollup.spans = RollupSpans(obs, root_name="sim.query")
            if cfg.translation_service is not None:
                cfg.translation_service.spans = TranslatorSpans(obs)
        in_flight = [0]

        records: list[QueryRecord] = []
        cache_hits: list[QueryRecord] = []

        def complete_processing(
            decision: ScheduleDecision,
            query_class: str,
            realised: float,
            arrived: float,
        ) -> Callable[[float, Job], None]:
            def _on_complete(finish: float, job: Job) -> None:
                queue = queues[decision.target.name]
                feedback.on_completion(
                    queue,
                    realised,
                    decision.processing.estimated_time,
                    query_id=decision.query.query_id,
                )
                answer: float | None = None
                if self._materialised:
                    if decision.target.kind is QueueKind.CPU:
                        answer = self._answer_cpu(decision.query)
                    else:
                        assert decision.target.n_sm is not None
                        answer = self._answer_gpu(decision.query, decision.target.n_sm)
                record = QueryRecord(
                    query_id=decision.query.query_id,
                    query_class=query_class,
                    target=decision.target.name,
                    submit_time=decision.processing.submit_time,
                    finish_time=finish,
                    deadline=decision.deadline,
                    estimated_time=decision.processing.estimated_time,
                    measured_time=realised,
                    translated=decision.translation is not None,
                    answer=answer,
                )
                records.append(record)
                if obs is not None:
                    # realised stage intervals from the simulated
                    # timeline: service occupied [finish-realised,
                    # finish], the wait is everything since the job
                    # reached its partition
                    started = finish - realised
                    obs.record(
                        decision.query.query_id,
                        "queue.wait",
                        arrived,
                        started,
                        track=decision.target.name,
                    )
                    obs.record(
                        decision.query.query_id,
                        "pool.service",
                        started,
                        finish,
                        track=decision.target.name,
                        pool=decision.target.name,
                    )
                    obs.close(
                        decision.query.query_id,
                        end=finish,
                        status="ok",
                        met_deadline=record.met_deadline,
                    )
                if run_metrics is not None:
                    in_flight[0] -= 1
                    run_metrics.on_stage("service", realised)
                    run_metrics.on_completed(record, in_flight[0])
                if adapt is not None:
                    adapt.on_outcome(record.met_deadline, finish)
                if snapshots is not None:
                    snapshots.tick(finish)

            return _on_complete

        def submit_processing(
            decision: ScheduleDecision, query_class: str
        ) -> None:
            realised = decision.processing.estimated_time * self._noise(rng)
            arrived = engine.now
            servers[decision.target.name].submit(
                Job(
                    query_id=decision.query.query_id,
                    service_time=realised,
                    on_complete=complete_processing(
                        decision, query_class, realised, arrived
                    ),
                )
            )

        rejected = [0]

        def pre_admit(query: Query, query_class: str) -> bool:
            """Arrival-time front half of Figure 10's dispatcher.

            Emits the arrival, consults the rollup tier, and books the
            submitted count.  Returns False when the query is finished
            here (cache hit) and never reaches the scheduler.
            """
            if (
                self._materialised
                and query.needs_translation
                and cfg.translation_service is None
            ):
                # fail at arrival with a clear message rather than
                # deep inside _resolve_text at completion time
                raise TranslationError(
                    f"query {query.query_id} carries text parameters but "
                    "this materialised run has no translation_service "
                    "configured; text-free workloads run fine without one"
                )
            if collector is not None:
                collector.emit(
                    "arrival",
                    engine.now,
                    query.query_id,
                    query_class=query_class,
                    needs_translation=query.needs_translation,
                )
            if rollup is not None:
                hit = rollup.serve(
                    query,
                    query_class,
                    engine.now,
                    deadline=engine.now + cfg.time_constraint,
                )
                if hit is not None:
                    # zero-cost hit: answered at the arrival instant,
                    # never offered to the scheduler (no submitted/
                    # admitted counts, no submission books)
                    cache_hits.append(hit)
                    if collector is not None:
                        collector.emit(
                            "cache-hit",
                            engine.now,
                            query.query_id,
                            target=hit.target,
                            answer=hit.answer,
                        )
                    if snapshots is not None:
                        snapshots.tick(engine.now)
                    return False
            if run_metrics is not None:
                run_metrics.on_submitted()
            if obs is not None:
                obs.open(
                    query.query_id,
                    "sim.query",
                    start=engine.now,
                    query_class=query_class,
                )
            if snapshots is not None:
                snapshots.tick(engine.now)
            return True

        def admit(
            query: Query,
            query_class: str,
            decision: "ScheduleDecision | AdmissionRejected",
        ) -> None:
            """Decision-time back half: book one scheduling outcome.

            ``decision`` is a :class:`ScheduleDecision` or the
            :class:`~repro.errors.AdmissionRejected` the scheduler
            produced for this query (batch passes return rejections as
            values rather than raising).
            """
            if isinstance(decision, AdmissionRejected):
                rejected[0] += 1
                if run_metrics is not None:
                    run_metrics.on_rejected()
                if collector is not None:
                    collector.emit(
                        "rejected",
                        engine.now,
                        query.query_id,
                        reason=str(decision),
                    )
                if obs is not None:
                    obs.close(query.query_id, end=engine.now, status="rejected")
                return
            if run_metrics is not None:
                in_flight[0] += 1
                run_metrics.on_admitted(in_flight[0])
            if decision.translation is not None:
                est_trans = decision.translation.estimated_time
                realised_trans = est_trans * self._noise(rng)
                trans_arrived = engine.now

                def _translated(finish: float, job: Job) -> None:
                    feedback.on_completion(
                        trans_q,
                        realised_trans,
                        est_trans,
                        query_id=query.query_id,
                    )
                    if obs is not None:
                        started = finish - realised_trans
                        obs.record(
                            query.query_id,
                            "queue.wait",
                            trans_arrived,
                            started,
                            track=trans_q.name,
                        )
                        obs.record(
                            query.query_id,
                            "pool.service",
                            started,
                            finish,
                            track=trans_q.name,
                            pool=trans_q.name,
                        )
                    if run_metrics is not None:
                        run_metrics.on_stage("translation", realised_trans)
                    submit_processing(decision, query_class)

                servers[trans_q.name].submit(
                    Job(
                        query_id=query.query_id,
                        service_time=realised_trans,
                        on_complete=_translated,
                    )
                )
            else:
                submit_processing(decision, query_class)

        def on_arrival(query: Query, query_class: str) -> Callable[[], None]:
            def _arrive() -> None:
                if not pre_admit(query, query_class):
                    return
                try:
                    decision = scheduler.schedule(query, engine.now)
                except AdmissionRejected as exc:
                    admit(query, query_class, exc)
                    return
                admit(query, query_class, decision)

            return _arrive

        # batched admission: arrivals buffer until batch_size of them
        # passed pre-admission, then one schedule_batch pass decides the
        # whole buffer at the batch-completing arrival's instant
        buffer: list[tuple[Query, str]] = []

        def flush() -> None:
            if not buffer:
                return
            batch = list(buffer)
            buffer.clear()
            decisions = scheduler.schedule_batch(
                [query for query, _ in batch], engine.now
            )
            for (query, query_class), decision in zip(batch, decisions):
                admit(query, query_class, decision)

        def on_arrival_batched(
            query: Query, query_class: str
        ) -> Callable[[], None]:
            def _arrive() -> None:
                if not pre_admit(query, query_class):
                    return
                buffer.append((query, query_class))
                if len(buffer) >= batch_size:
                    flush()

            return _arrive

        make_arrival = on_arrival if batch_size is None else on_arrival_batched
        last_time: float | None = None
        for timed in stream:
            engine.schedule_at(
                timed.time, make_arrival(timed.query, timed.query_class)
            )
            last_time = timed.time
        if batch_size is not None and last_time is not None:
            # trailing partial batch: the heap's FIFO tie-break fires
            # this after the final arrival at the same instant
            engine.schedule_at(last_time, flush)

        engine.run(max_events=max_events)

        if obs is not None:
            # a truncated run (max_events) strands in-flight queries;
            # their roots close flagged rather than dangling open
            obs.close_all(end=engine.now, status="abandoned")

        if snapshots is not None:
            snapshots.write(engine.now)

        horizon = engine.now
        utilisations = {
            name: server.utilisation(horizon) for name, server in servers.items()
        }
        timelines = {name: tuple(server.history) for name, server in servers.items()}
        return SystemReport.from_records(
            records,
            utilisations=utilisations,
            horizon=horizon,
            timelines=timelines,
            rejected=rejected[0],
            submissions={name: q.submissions for name, q in queues.items()},
            capacities={name: s.capacity for name, s in servers.items()},
            outstanding={name: q.outstanding for name, q in queues.items()},
            exact_estimates=cfg.noise_sigma == 0.0 and cfg.noise_bias == 1.0,
            feedback_stats=feedback.all_stats,
            cache_hits=cache_hits,
        )
