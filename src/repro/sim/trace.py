"""ASCII Gantt rendering of a simulated run's partition timelines.

Makes the scheduler's behaviour visible: one row per partition, time on
the horizontal axis, shaded where the partition was serving.  The
characteristic patterns are easy to read — the translation partition
saturating under an all-text workload, slow GPU queues filling before
fast ones (Figure 10's slowest-first rule), the CPU lane packed with
small queries.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.errors import SimulationError
from repro.units import fmt_seconds

__all__ = ["render_gantt"]

#: shading by busy fraction of the cell's time slice
_SHADES = " .:=#"

Timeline = Sequence[tuple[int, float, float]]


def render_gantt(
    timelines: Mapping[str, Timeline],
    horizon: float | None = None,
    width: int = 72,
    capacities: Mapping[str, int] | None = None,
) -> str:
    """Render per-partition service timelines as an ASCII Gantt chart.

    ``timelines`` maps partition name to ``(query_id, start, finish)``
    records (``Server.history``, also carried on
    :class:`~repro.sim.metrics.SystemReport` as ``timelines``).  Each
    output cell covers ``horizon / width`` seconds and is shaded by the
    fraction of that slice the partition spent serving.

    ``capacities`` gives the parallel service units per partition
    (default 1): overlapping service records on a capacity-``c``
    partition (e.g. ``translation_workers=4``) sum to up to ``c`` times
    the slice, so both the shading and the row percentage are
    normalised by the unit count — 100 % means *saturated*, never
    over-counted.
    """
    if not timelines:
        raise SimulationError("render_gantt needs at least one timeline")
    if width < 10:
        raise SimulationError("gantt width must be >= 10")
    if horizon is None:
        horizon = max(
            (finish for tl in timelines.values() for _, _, finish in tl),
            default=0.0,
        )
    if horizon <= 0:
        raise SimulationError("nothing to render: zero horizon")

    cell = horizon / width
    margin = max(len(name) for name in timelines)
    lines = []
    for name, timeline in timelines.items():
        capacity = max(1, (capacities or {}).get(name, 1))
        busy = [0.0] * width
        for _, start, finish in timeline:
            if finish <= start:
                continue
            first = min(int(start / cell), width - 1)
            last = min(int(finish / cell), width - 1)
            for i in range(first, last + 1):
                lo = max(start, i * cell)
                hi = min(finish, (i + 1) * cell)
                busy[i] += max(0.0, hi - lo)
        full = cell * capacity
        row = "".join(
            _SHADES[min(len(_SHADES) - 1, int(round(b / full * (len(_SHADES) - 1))))]
            for b in busy
        )
        util = sum(b for b in busy) / (horizon * capacity)
        lines.append(f"{name:>{margin}} |{row}| {100 * util:3.0f}%")
    lines.append(
        f"{'':>{margin}}  0{'':<{width - 2}}{fmt_seconds(horizon)}"
    )
    lines.append(f"{'':>{margin}}  (shade = busy fraction per {fmt_seconds(cell)} slice)")
    return "\n".join(lines)
